"""Unit tests for graphicality, Havel-Hakimi and power-law fitting."""

import numpy as np
import pytest

from repro.network.degree_sequence import (
    degree_ccdf,
    estimate_power_law_exponent,
    havel_hakimi_graph,
    is_graphical,
    log2_diameter_scale,
    mean_degree,
    theoretical_pa_exponent,
)
from repro.network.topology_example import EXAMPLE_DEGREES


class TestIsGraphical:
    def test_simple_graphical(self):
        assert is_graphical([2, 2, 2])  # triangle
        assert is_graphical([3, 3, 2, 2, 2])
        assert is_graphical(EXAMPLE_DEGREES)

    def test_odd_sum_rejected(self):
        assert not is_graphical([3, 2, 2])

    def test_excessive_degree_rejected(self):
        assert not is_graphical([5, 1, 1, 1])

    def test_negative_rejected(self):
        assert not is_graphical([2, -1, 1])

    def test_all_zero_graphical(self):
        assert is_graphical([0, 0, 0])

    def test_empty_graphical(self):
        assert is_graphical([])


class TestHavelHakimi:
    def test_realises_sequence(self):
        degrees = [3, 3, 2, 2, 2]
        g = havel_hakimi_graph(degrees)
        assert sorted(map(int, g.degrees)) == sorted(degrees)

    def test_realises_paper_sequence(self):
        g = havel_hakimi_graph(EXAMPLE_DEGREES)
        assert sorted(map(int, g.degrees)) == sorted(EXAMPLE_DEGREES)

    def test_rejects_non_graphical(self):
        with pytest.raises(ValueError, match="not graphical"):
            havel_hakimi_graph([5, 1, 1, 1])

    def test_zero_sequence(self):
        g = havel_hakimi_graph([0, 0])
        assert g.num_edges == 0

    def test_result_is_simple(self):
        g = havel_hakimi_graph([4, 4, 4, 4, 4, 4])
        assert int(g.degrees.sum()) == 2 * g.num_edges


class TestPowerLawEstimation:
    def test_recovers_synthetic_exponent(self, rng):
        # Draw from a discrete Pareto with alpha = 2.5.
        alpha = 2.5
        u = rng.random(20000)
        d_min = 2
        degrees = np.floor(d_min * (1 - u) ** (-1 / (alpha - 1))).astype(int)
        estimate = estimate_power_law_exponent(degrees, d_min=d_min)
        assert estimate == pytest.approx(alpha, abs=0.3)

    def test_rejects_tiny_tail(self):
        with pytest.raises(ValueError):
            estimate_power_law_exponent([1, 1, 1], d_min=5)

    def test_all_equal_tail_gives_large_exponent(self):
        # A tail with no spread looks like an extremely steep power law.
        estimate = estimate_power_law_exponent([2, 2, 2], d_min=2)
        assert estimate > 4.0

    def test_rejects_bad_dmin(self):
        with pytest.raises(ValueError):
            estimate_power_law_exponent([2, 3], d_min=0)


class TestCcdfAndHelpers:
    def test_ccdf_starts_at_one(self):
        values, ccdf = degree_ccdf([1, 2, 2, 3])
        assert values[0] == 1
        assert ccdf[0] == pytest.approx(1.0)

    def test_ccdf_monotone_decreasing(self):
        _, ccdf = degree_ccdf([1, 1, 2, 3, 5, 8, 8])
        assert all(a >= b for a, b in zip(ccdf, ccdf[1:]))

    def test_ccdf_rejects_empty(self):
        with pytest.raises(ValueError):
            degree_ccdf([])

    def test_mean_degree(self):
        assert mean_degree([2, 4]) == pytest.approx(3.0)

    def test_mean_degree_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_degree([])

    def test_pa_exponent_constant(self):
        assert theoretical_pa_exponent() == 3.0

    def test_log2_diameter_scale(self):
        assert log2_diameter_scale(1024) == pytest.approx(10.0)
        assert log2_diameter_scale(1) == 0.0
        with pytest.raises(ValueError):
            log2_diameter_scale(0)
