"""Unit tests for the differential push rule (Section 4.1.1)."""

import contextlib

import numpy as np
import pytest

from repro.core.differential import (
    PushCountClampWarning,
    fixed_push_counts,
    messages_per_step,
    push_counts,
    push_ratio,
    resolve_push_counts,
)
from repro.network.graph import Graph


class TestPushRatio:
    def test_regular_graph_ratio_one(self, triangle):
        assert np.allclose(push_ratio(triangle), 1.0)

    def test_star_hub_ratio(self, star5):
        ratio = push_ratio(star5)
        assert ratio[0] == pytest.approx(4.0)  # hub: degree 4, neighbours degree 1
        assert np.allclose(ratio[1:], 0.25)  # leaves: degree 1, neighbour degree 4

    def test_isolated_node_ratio_zero(self):
        g = Graph(3, [(0, 1)])
        assert push_ratio(g)[2] == 0.0


class TestPushCounts:
    def test_paper_example(self, fig2_network):
        assert push_counts(fig2_network).tolist() == [1, 1, 3, 1, 1, 1, 1, 1, 1, 1]

    def test_minimum_one_for_connected(self, pa_graph_small):
        counts = push_counts(pa_graph_small)
        assert int(counts.min()) >= 1

    def test_never_exceeds_degree(self, pa_graph_small):
        counts = push_counts(pa_graph_small)
        assert np.all(counts <= pa_graph_small.degrees)

    def test_star_hub_pushes_to_all(self, star5):
        counts = push_counts(star5)
        assert counts[0] == 4  # ratio 4.0 -> 4 pushes, == degree
        assert np.all(counts[1:] == 1)

    def test_ratio_below_one_maps_to_one(self, star5):
        # Leaves have ratio 0.25 < 1 but must still push once.
        assert np.all(push_counts(star5)[1:] == 1)

    def test_round_half_up(self):
        # Node 0: degree 3, neighbours of degrees 2, 2, 2 -> ratio 1.5 -> k=2.
        g = Graph(6, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 5), (3, 4)])
        assert g.degree(0) == 3
        assert g.average_neighbor_degrees[0] == pytest.approx(2.0)
        assert push_counts(g)[0] == 2

    def test_isolated_node_zero(self):
        g = Graph(3, [(0, 1)])
        assert push_counts(g)[2] == 0


class TestFixedPushCounts:
    def test_uniform_one(self, fig2_network):
        counts = fixed_push_counts(fig2_network, 1)
        assert np.all(counts == 1)

    def test_clamped_to_degree(self, star5):
        counts = fixed_push_counts(star5, 3)
        assert counts[0] == 3
        assert np.all(counts[1:] == 1)  # leaves have degree 1

    def test_isolated_zero(self):
        g = Graph(3, [(0, 1)])
        assert fixed_push_counts(g, 2)[2] == 0

    def test_rejects_k_below_one(self, triangle):
        with pytest.raises(ValueError):
            fixed_push_counts(triangle, 0)


class TestMessagesPerStep:
    def test_counts_all(self):
        assert messages_per_step(np.array([1, 2, 3])) == 6

    def test_respects_active_mask(self):
        counts = np.array([1, 2, 3])
        active = np.array([True, False, True])
        assert messages_per_step(counts, active) == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            messages_per_step(np.array([1, 2]), np.array([True]))


class TestResolveOversizedCounts:
    """Regression: counts above degree — strict raises, non-strict warns + clamps."""

    def test_strict_mode_raises(self, star5):
        oversized = np.array([9, 1, 1, 1, 1])
        with pytest.raises(ValueError, match="degree"):
            resolve_push_counts(star5, oversized, strict=True)

    def test_non_strict_mode_warns_and_clamps_to_degree(self, star5):
        oversized = np.array([9, 2, 1, 1, 1])  # hub deg 4, leaf 1 deg 1
        with pytest.warns(PushCountClampWarning, match="2 push count"):
            counts = resolve_push_counts(star5, oversized, strict=False)
        np.testing.assert_array_equal(counts, [4, 1, 1, 1, 1])

    def test_non_strict_within_degree_is_silent(self, star5, recwarn):
        resolve_push_counts(star5, np.array([4, 1, 1, 1, 1]), strict=False)
        assert not [w for w in recwarn if issubclass(w.category, PushCountClampWarning)]

    def test_message_engine_clamps_oversized_to_push_all(self, star5):
        # k far above the hub's degree must behave exactly like k = degree:
        # the hub pushes to every neighbour, nothing more — and in
        # particular the (k + 1)-way split must not leak mass (the
        # pre-fix engine destroyed (k - degree)/(k + 1) of it per step).
        from repro.core.engine import MessageLevelGossip

        values = np.arange(5.0)
        outcomes = []
        for k_hub in (4, 40):
            guard = pytest.warns(PushCountClampWarning) if k_hub > 4 else contextlib.nullcontext()
            with guard:
                engine = MessageLevelGossip(
                    star5, push_counts=np.array([k_hub, 1, 1, 1, 1]), rng=7
                )
            outcomes.append(engine.run(values, np.ones(5), xi=1e-8))
        clamped, oversized = outcomes
        assert oversized.push_messages == clamped.push_messages
        assert oversized.steps == clamped.steps
        np.testing.assert_allclose(oversized.estimates, clamped.estimates, atol=1e-12)
        np.testing.assert_allclose(oversized.values.sum(), values.sum(), rtol=1e-12)
        np.testing.assert_allclose(oversized.weights.sum(), 5.0, rtol=1e-12)
