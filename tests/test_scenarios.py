"""Scenario layer: specs, registry, runner and CLI."""

import numpy as np
import pytest

from repro.scenarios import (
    AttackSpec,
    ChurnSpec,
    Scenario,
    TopologySpec,
    WorkloadSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
)
from repro.scenarios.__main__ import main as scenarios_main

SEEDED = ("static-powerlaw", "churn-heavy", "collusion-under-churn", "free-riding-500k")
ATTACK_SEEDED = ("slander-under-churn", "sybil-flood-100k", "oscillating-colluders-sharded")


class TestCatalogue:
    def test_seeded_scenarios_registered(self):
        names = available_scenarios()
        for expected in SEEDED + ATTACK_SEEDED:
            assert expected in names

    def test_unknown_scenario_lists_catalogue(self):
        with pytest.raises(KeyError, match="static-powerlaw"):
            get_scenario("bogus")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("static-powerlaw")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(scenario)


class TestSpecValidation:
    def test_bad_topology_kind(self):
        with pytest.raises(ValueError, match="topology kind"):
            TopologySpec(kind="torus")

    def test_bad_workload_kind(self):
        with pytest.raises(ValueError, match="workload kind"):
            WorkloadSpec(kind="bogus")

    def test_bad_churn_probability(self):
        with pytest.raises(ValueError, match="loss_probability"):
            ChurnSpec(loss_probability=1.5)

    def test_bad_attack(self):
        with pytest.raises(ValueError, match="fraction"):
            AttackSpec(fraction=0.0)
        with pytest.raises(ValueError, match="group_size"):
            AttackSpec(group_size=0)

    def test_attack_family_params_validated_at_construction(self):
        # Bad per-family knobs fail when the spec is built, not mid-run.
        with pytest.raises(ValueError, match="period"):
            AttackSpec(kind="on-off", period=0)
        with pytest.raises(ValueError, match="on_epochs"):
            AttackSpec(kind="on-off", period=2, on_epochs=3)
        with pytest.raises(ValueError, match="victim_fraction"):
            AttackSpec(kind="slandering", victim_fraction=1.0)
        with pytest.raises(ValueError, match="sybil_fraction"):
            AttackSpec(kind="sybil", sybil_fraction=0.0)
        with pytest.raises(ValueError, match="newcomer_trust"):
            AttackSpec(kind="whitewashing", newcomer_trust=1.5)

    def test_attack_kind_validated_against_registry(self):
        with pytest.raises(ValueError, match="available"):
            AttackSpec(kind="ddos")
        # Aliases are accepted and build the canonical family.
        from repro.attacks.models import SlanderingModel

        spec = AttackSpec(kind="bad-mouthing", fraction=0.2)
        assert isinstance(spec.build(seed=1), SlanderingModel)

    def test_attack_spec_builds_every_family(self):
        from repro.attacks.models import (
            CollusionModel,
            OnOffModel,
            SybilFloodModel,
            WhitewashingAttackModel,
        )

        assert isinstance(AttackSpec(kind="collusion").build(seed=1), CollusionModel)
        assert isinstance(
            AttackSpec(kind="whitewashing").build(seed=1), WhitewashingAttackModel
        )
        on_off = AttackSpec(kind="on-off", max_victims=5).build(seed=1)
        assert isinstance(on_off, OnOffModel)
        assert on_off.inner is not None and on_off.inner.max_victims == 5
        assert isinstance(AttackSpec(kind="sybil").build(seed=1), SybilFloodModel)

    def test_trust_gclr_requires_attack(self):
        with pytest.raises(ValueError, match="AttackSpec"):
            Scenario(
                name="x",
                description="d",
                topology=TopologySpec(),
                workload=WorkloadSpec(kind="trust-gclr"),
            )


class TestRunScenario:
    def test_static_powerlaw_small(self):
        result = run_scenario("static-powerlaw", small=True)
        assert result.backend == "dense"  # auto at N=200
        assert result.num_nodes == 200
        assert result.converged_fraction == 1.0
        assert result.metrics["max_rel_error"] < 0.01

    def test_churn_heavy_small_stays_accurate(self):
        result = run_scenario("churn-heavy", small=True)
        assert result.metrics["loss_probability"] == 0.3
        # Mass-conserving self-push: churn slows mixing, never breaks it.
        assert result.metrics["max_abs_error"] < 0.01

    def test_collusion_under_churn_small(self):
        result = run_scenario("collusion-under-churn", small=True)
        assert result.metrics["num_colluders"] > 0
        assert result.metrics["rms_gclr"] >= 0.0
        assert result.metrics["rms_unweighted"] >= 0.0

    def test_slander_under_churn_small(self):
        result = run_scenario("slander-under-churn", small=True)
        assert result.metrics["rms_gclr"] > 0.0
        assert result.metrics["num_nodes_dirty"] == result.num_nodes
        assert result.metrics["loss_probability"] == 0.2

    def test_sybil_flood_small_enlarges_dirty_world(self):
        result = run_scenario("sybil-flood-100k", small=True)
        assert result.backend == "sparse"
        # A 10% swarm joined the poisoned run only.
        assert result.metrics["num_nodes_dirty"] == pytest.approx(
            1.1 * result.num_nodes, rel=0.01
        )
        assert result.metrics["rms_gclr"] > 0.0

    def test_oscillating_colluders_off_phase_cancels(self):
        result = run_scenario("oscillating-colluders-sharded", small=True)
        assert result.backend == "sharded"
        assert result.metrics["rms_gclr"] > 0.0
        # Honest phase under identical seeds: the poison vanishes.
        assert result.metrics["rms_gclr_off"] == 0.0

    def test_dynamic_scenario_carries_attack(self):
        from repro.scenarios import DynamicSpec

        scenario = Scenario(
            name="test-whitewash-churn",
            description="whitewashers cycling identities through churn epochs",
            topology=TopologySpec(kind="powerlaw", num_nodes=120, small_num_nodes=120, m=2),
            workload=WorkloadSpec(kind="mean"),
            dynamic=DynamicSpec(epochs=3, join_rate=0.02, leave_rate=0.02),
            attack=AttackSpec(kind="whitewashing", fraction=0.05),
            backend="dense",
            xi=1e-5,
            max_steps=400,
            seed=77,
        )
        result = run_scenario(scenario)
        assert result.metrics["total_attack_events"] > 0
        assert result.metrics["final_mean_abs_error"] < 0.05

    def test_computing_vs_delegating_contains_cross_channel_slander(self):
        result = run_scenario("computing-vs-delegating", small=True)
        assert result.backend == "dense"  # auto at N=200, V=2
        assert result.metrics["num_channels"] == 2.0
        assert result.converged_fraction == 1.0
        # Both channels reach their (post-attack) fixpoints via gossip.
        assert result.metrics["computing_mean_rel_error"] < 0.01
        assert result.metrics["delegating_mean_rel_error"] < 0.01
        # The slandered computing rank moves off the clean truth; the
        # honest delegating rank must stay at gossip-noise level.
        assert result.metrics["slander_shift_poisoned"] > 0.1
        assert result.metrics["slander_shift_contained"] < 1e-3
        assert (
            result.metrics["slander_shift_contained"]
            < result.metrics["slander_shift_poisoned"] / 100
        )

    def test_free_riding_small_detects_free_riders(self):
        result = run_scenario("free-riding-500k", small=True)
        assert result.backend == "sparse"
        assert result.metrics["detection_rate"] > 0.95
        assert result.metrics["false_positive_rate"] < 0.05

    def test_seed_reproducibility_and_override(self):
        a = run_scenario("churn-heavy", small=True, seed=123)
        b = run_scenario("churn-heavy", small=True, seed=123)
        c = run_scenario("churn-heavy", small=True, seed=124)
        assert a.steps == b.steps
        assert a.metrics == b.metrics
        assert a.metrics != c.metrics

    def test_backend_override(self):
        result = run_scenario("churn-heavy", small=True, backend="sparse")
        assert result.backend == "sparse"
        assert result.metrics["max_abs_error"] < 0.01

    def test_result_to_text_renders(self):
        result = run_scenario("static-powerlaw", small=True)
        text = result.to_text()
        assert "static-powerlaw" in text and "backend=dense" in text

    def test_custom_scenario_composes(self):
        scenario = Scenario(
            name="test-er-mean",
            description="mean gossip on an ER graph",
            topology=TopologySpec(kind="erdos-renyi", num_nodes=120, small_num_nodes=120, p=0.06),
            workload=WorkloadSpec(kind="mean"),
            xi=1e-6,
            seed=9,
        )
        result = run_scenario(scenario)
        assert result.num_nodes == 120
        assert result.metrics["max_abs_error"] < 1e-3


class TestCli:
    def test_list(self, capsys):
        assert scenarios_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SEEDED:
            assert name in out

    def test_run_small(self, capsys):
        assert scenarios_main(["run", "static-powerlaw", "--small"]) == 0
        assert "max_rel_error" in capsys.readouterr().out

    def test_run_unknown_fails(self, capsys):
        assert scenarios_main(["run", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_with_overrides(self, capsys):
        assert (
            scenarios_main(
                ["run", "churn-heavy", "--small", "--seed", "5", "--backend", "sparse"]
            )
            == 0
        )
        assert "backend=sparse" in capsys.readouterr().out


def test_free_riding_full_shape_uses_sparse_by_spec():
    scenario = get_scenario("free-riding-500k")
    assert scenario.topology.num_nodes == 500_000
    assert scenario.backend == "sparse"
    assert np.isfinite(scenario.xi)


class TestNetworkSpec:
    def _scenario(self, network, **overrides):
        from repro.scenarios import NetworkSpec  # noqa: F401 (re-export pin)

        base = dict(
            name="net-test",
            description="network-axis validation fixture",
            seed=1,
            topology=TopologySpec("powerlaw", num_nodes=120, small_num_nodes=60),
            workload=WorkloadSpec("mean"),
            network=network,
        )
        base.update(overrides)
        return Scenario(**base)

    def test_reexported_from_package(self):
        from repro.scenarios import NetworkSpec
        from repro.scenarios.spec import NetworkSpec as inner

        assert NetworkSpec is inner

    def test_validation(self):
        from repro.scenarios import NetworkSpec

        with pytest.raises(ValueError, match="network kind"):
            NetworkSpec(kind="mesh")
        with pytest.raises(ValueError, match="loss"):
            NetworkSpec(kind="uniform", loss=1.5)
        with pytest.raises(ValueError, match="region structure"):
            NetworkSpec(kind="uniform", partition_start=2.0, partition_duration=3.0)
        with pytest.raises(ValueError, match="partition_duration"):
            NetworkSpec(kind="regional", partition_start=2.0, partition_duration=0.0)
        with pytest.raises(ValueError, match="partition_groups"):
            NetworkSpec(kind="regional", partition_start=2.0,
                        partition_duration=3.0, partition_groups=1)

    def test_network_excludes_churn_loss(self):
        from repro.scenarios import NetworkSpec

        with pytest.raises(ValueError, match="subsumes the churn loss"):
            self._scenario(
                NetworkSpec(kind="uniform", loss=0.1),
                churn=ChurnSpec(loss_probability=0.1),
            )

    def test_latency_network_requires_mean_workload(self):
        from repro.scenarios import NetworkSpec

        with pytest.raises(ValueError, match="'mean' workload"):
            self._scenario(
                NetworkSpec(kind="uniform", latency_mean=0.5),
                workload=WorkloadSpec("dual-rank"),
            )

    def test_build_link_shapes(self):
        from repro.network.conditions import (
            HomogeneousLink,
            InstantLink,
            RegionalLinkModel,
        )
        from repro.scenarios import NetworkSpec

        assert isinstance(
            NetworkSpec(kind="uniform", loss=0.1).build_link(), InstantLink
        )
        assert isinstance(
            NetworkSpec(kind="uniform", latency_mean=0.5).build_link(),
            HomogeneousLink,
        )
        regional = NetworkSpec(
            kind="regional", latency_mean=0.05, inter_latency_mean=0.5,
            partition_start=3.0, partition_duration=4.0,
        ).build_link()
        assert isinstance(regional, RegionalLinkModel)
        assert regional.partitions[0].end == 7.0

    def test_epoch_partition_round_trip(self):
        from repro.scenarios import NetworkSpec

        spec = NetworkSpec(kind="regional", partition_start=3,
                           partition_duration=4, partition_groups=2)
        schedule = spec.epoch_partition()
        assert (schedule.start_epoch, schedule.heal_epoch) == (3, 7)
        assert NetworkSpec(kind="regional").epoch_partition() is None


class TestNetworkScenarios:
    NAMES = ("wan-vs-lan", "flaky-region", "partition-under-attack")

    def test_registered(self):
        for name in self.NAMES:
            assert name in available_scenarios()
            get_scenario(name)

    def test_wan_vs_lan_small_runs_on_async(self):
        result = run_scenario(get_scenario("wan-vs-lan"), small=True)
        assert result.backend == "async"
        assert result.converged_fraction == 1.0
        assert result.metrics["max_abs_error"] < 1e-2
        assert any("network conditions" in note for note in result.notes)

    def test_flaky_region_small_converges_despite_flake(self):
        result = run_scenario(get_scenario("flaky-region"), small=True)
        assert result.backend == "async"
        assert result.converged_fraction == 1.0
        assert result.metrics["max_abs_error"] < 1e-2

    def test_partition_under_attack_small_heals(self):
        result = run_scenario(get_scenario("partition-under-attack"), small=True)
        assert result.metrics["partition_epochs"] == 4
        assert result.metrics["final_mean_abs_error"] < 1e-2
        assert any("scheduled partition" in note for note in result.notes)
