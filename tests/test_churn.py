"""Unit tests for the mass-conserving packet-loss model."""

import numpy as np
import pytest

from repro.network.churn import PacketLossModel, no_loss


class TestPacketLossModel:
    def test_zero_loss_passthrough(self):
        model = PacketLossModel(0.0, rng=0)
        senders = np.array([0, 1, 2])
        targets = np.array([3, 4, 5])
        out = model.apply(senders, targets)
        assert np.array_equal(out, targets)
        assert model.delivered_count == 3
        assert model.lost_count == 0

    def test_total_loss_redirects_all(self):
        model = PacketLossModel(1.0, rng=0)
        senders = np.array([0, 1, 2])
        targets = np.array([3, 4, 5])
        out = model.apply(senders, targets)
        assert np.array_equal(out, senders)
        assert model.lost_count == 3

    def test_partial_loss_rate(self):
        model = PacketLossModel(0.3, rng=7)
        n = 200_000
        senders = np.zeros(n, dtype=np.int64)
        targets = np.ones(n, dtype=np.int64)
        model.apply(senders, targets)
        rate = model.lost_count / n
        assert rate == pytest.approx(0.3, abs=0.01)

    def test_does_not_mutate_inputs(self):
        model = PacketLossModel(1.0, rng=0)
        targets = np.array([3, 4])
        original = targets.copy()
        model.apply(np.array([0, 1]), targets)
        assert np.array_equal(targets, original)

    def test_shape_mismatch_rejected(self):
        model = PacketLossModel(0.5, rng=0)
        with pytest.raises(ValueError, match="shape"):
            model.apply(np.array([0]), np.array([1, 2]))

    def test_empty_arrays(self):
        model = PacketLossModel(0.5, rng=0)
        out = model.apply(np.array([], dtype=int), np.array([], dtype=int))
        assert out.size == 0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            PacketLossModel(1.5)
        with pytest.raises(ValueError):
            PacketLossModel(-0.1)

    def test_reset_counters(self):
        model = PacketLossModel(1.0, rng=0)
        model.apply(np.array([0]), np.array([1]))
        assert model.lost_count == 1
        model.reset_counters()
        assert model.lost_count == 0
        assert model.delivered_count == 0
        assert model.loss_probability == 1.0

    def test_no_loss_helper(self):
        model = no_loss()
        assert model.loss_probability == 0.0

    def test_deterministic_from_seed(self):
        senders = np.arange(100)
        targets = np.arange(100) + 100
        a = PacketLossModel(0.5, rng=3).apply(senders, targets % 100)
        b = PacketLossModel(0.5, rng=3).apply(senders, targets % 100)
        assert np.array_equal(a, b)
