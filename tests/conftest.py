"""Shared fixtures: small deterministic worlds reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.graph import Graph
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.network.topology_example import example_network
from repro.trust.matrix import TrustMatrix, random_trust_matrix


@pytest.fixture
def triangle() -> Graph:
    """Smallest interesting graph: the 3-cycle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Graph:
    """A 4-node path: 0 - 1 - 2 - 3."""
    return Graph(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def star5() -> Graph:
    """A 5-node star: hub 0 with leaves 1..4 (maximally skewed degrees)."""
    return Graph(5, [(0, i) for i in range(1, 5)])


@pytest.fixture
def fig2_network() -> Graph:
    """The paper's 10-node Figure-2 example network."""
    return example_network()


@pytest.fixture
def pa_graph_small() -> Graph:
    """A 60-node PA graph (m=2), fixed seed."""
    return preferential_attachment_graph(60, m=2, rng=1234)


@pytest.fixture
def pa_graph_medium() -> Graph:
    """A 300-node PA graph (m=2), fixed seed."""
    return preferential_attachment_graph(300, m=2, rng=5678)


@pytest.fixture
def small_trust(pa_graph_small: Graph) -> TrustMatrix:
    """Edge-local trust observations over the small PA graph."""
    return random_trust_matrix(pa_graph_small, rng=99)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh fixed-seed generator per test."""
    return np.random.default_rng(2016)
