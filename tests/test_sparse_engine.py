"""Tests for the sparse CSR gossip engine.

The load-bearing checks: the sparse engine is a drop-in for
``VectorGossipEngine`` (same API, same protocol, same invariants), its
estimates agree with the dense engine to 1e-8 relative tolerance on
power-law graphs, and mass is conserved every round.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConvergenceError
from repro.core.sparse_engine import SparseGossipEngine
from repro.core.vector_engine import VectorGossipEngine
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.network.random_graphs import erdos_renyi_graph


class TestApiParity:
    """Construction-time contract matches the dense engine."""

    def test_push_counts_property_read_only(self, fig2_network):
        engine = SparseGossipEngine(fig2_network, rng=0)
        assert engine.graph is fig2_network
        with pytest.raises(ValueError):
            engine.push_counts[0] = 5

    def test_rejects_bad_push_count_shape(self, fig2_network):
        with pytest.raises(ValueError, match="shape"):
            SparseGossipEngine(fig2_network, push_counts=np.ones(3, dtype=np.int64))

    def test_rejects_push_counts_above_degree(self, fig2_network):
        counts = np.ones(10, dtype=np.int64)
        counts[5] = 9  # node 5 has degree 2
        with pytest.raises(ValueError, match="degree"):
            SparseGossipEngine(fig2_network, push_counts=counts)

    def test_rejects_zero_push_count_for_connected_node(self, fig2_network):
        counts = np.ones(10, dtype=np.int64)
        counts[3] = 0
        with pytest.raises(ValueError, match="at least once"):
            SparseGossipEngine(fig2_network, push_counts=counts)

    def test_rejects_reserved_extra_name(self, fig2_network):
        engine = SparseGossipEngine(fig2_network, rng=0)
        with pytest.raises(ValueError, match="reserved"):
            engine.run(np.ones(10), np.ones(10), extras={"weight": np.ones(10)})

    def test_rejects_weight_shape_mismatch(self, fig2_network):
        engine = SparseGossipEngine(fig2_network, rng=0)
        with pytest.raises(ValueError, match="shape"):
            engine.run(np.ones(10), np.ones((10, 2)))

    def test_rejects_non_graph_topology(self):
        with pytest.raises(TypeError, match="scipy sparse"):
            SparseGossipEngine(np.eye(4))

    def test_accepts_scipy_sparse_adjacency(self, fig2_network):
        adjacency = fig2_network.to_scipy_csr()
        engine = SparseGossipEngine(adjacency, rng=3)
        values = np.arange(10, dtype=float)
        outcome = engine.run(values, np.ones(10), xi=1e-7)
        assert np.allclose(outcome.estimates, values.mean(), atol=1e-4)

    def test_convergence_error_when_budget_exhausted(self, fig2_network):
        engine = SparseGossipEngine(fig2_network, rng=0)
        with pytest.raises(ConvergenceError):
            engine.run(np.arange(10, dtype=float), np.ones(10), xi=1e-12, max_steps=3)


class TestTargetSelection:
    """Each sender pushes to exactly k_i distinct neighbours."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_targets_distinct_and_adjacent(self, fig2_network, seed):
        engine = SparseGossipEngine(fig2_network, rng=seed)
        active = fig2_network.degrees > 0
        senders, targets = engine._choose_targets(active)
        counts = engine.push_counts
        for node in range(10):
            mask = senders == node
            assert int(mask.sum()) == int(counts[node])
            chosen = targets[mask]
            assert len(set(chosen.tolist())) == chosen.size  # distinct
            neighbors = set(fig2_network.neighbors(node).tolist())
            assert set(chosen.tolist()) <= neighbors

    def test_inactive_nodes_send_nothing(self, fig2_network):
        engine = SparseGossipEngine(fig2_network, rng=9)
        active = np.zeros(10, dtype=bool)
        active[2] = True  # the k=3 hub
        senders, targets = engine._choose_targets(active)
        assert set(senders.tolist()) == {2}
        assert senders.size == 3

    def test_degree_banding_bounds_padding(self):
        # A k=2 group mixing degree-2 nodes with one degree-40 hub must
        # not pad every row to the hub's degree: banding keeps each
        # group's width within 2x of its members' degrees.
        hub_degree = 40
        edges = [(0, i) for i in range(1, hub_degree + 1)]
        edges += [(i, i + 1) for i in range(1, hub_degree)]
        graph = Graph(hub_degree + 1, edges)
        counts = np.full(hub_degree + 1, 2, dtype=np.int64)
        engine = SparseGossipEngine(graph, push_counts=counts, rng=0)
        for group in engine._groups:
            width = group.padded_neighbors.shape[1]
            min_degree = int(graph.degrees[group.nodes].min())
            assert width <= 2 * min_degree
        total_padded = sum(g.padded_neighbors.size for g in engine._groups)
        assert total_padded <= 2 * int(graph.degrees.sum())

    def test_hub_subsets_are_uniform(self, star5):
        # Star hub with degree 4 pushing k=2: all 6 pairs should appear.
        engine = SparseGossipEngine(
            star5, push_counts=np.array([2, 1, 1, 1, 1]), rng=11
        )
        active = np.zeros(5, dtype=bool)
        active[0] = True
        seen = set()
        for _ in range(200):
            _, targets = engine._choose_targets(active)
            seen.add(tuple(sorted(targets.tolist())))
        assert len(seen) == 6


class TestCrossEngineAgreement:
    """Sparse and dense engines compute the same aggregate."""

    @pytest.mark.parametrize("n,steps", [(1000, 350), (10000, 450)])
    def test_matches_vector_engine_on_power_law(self, n, steps):
        graph = preferential_attachment_graph(n, m=2, rng=42)
        values = np.random.default_rng(0).random(n)
        weights = np.ones(n)
        dense = VectorGossipEngine(graph, rng=1).run(
            values, weights, xi=1e-12, max_steps=steps, run_to_max=True
        )
        sparse = SparseGossipEngine(graph, rng=2).run(
            values, weights, xi=1e-12, max_steps=steps, run_to_max=True
        )
        # Fully mixed state: both engines must sit on the same fixpoint.
        np.testing.assert_allclose(sparse.estimates, dense.estimates, rtol=1e-8)
        np.testing.assert_allclose(sparse.estimates, values.mean(), rtol=1e-8)

    def test_protocol_mode_parity(self):
        graph = preferential_attachment_graph(500, m=2, rng=7)
        values = np.random.default_rng(5).random(500)
        weights = np.ones(500)
        dense = VectorGossipEngine(graph, rng=1).run(values, weights, xi=1e-7)
        sparse = SparseGossipEngine(graph, rng=2).run(values, weights, xi=1e-7)
        assert np.allclose(sparse.estimates, values.mean(), atol=1e-4)
        assert np.allclose(dense.estimates, values.mean(), atol=1e-4)
        # Same stop protocol on the same topology: comparable step counts.
        assert 0.5 < sparse.steps / dense.steps < 2.0
        assert sparse.converged.all()

    def test_vector_state_matches(self):
        graph = preferential_attachment_graph(300, m=2, rng=8)
        d = 5
        values = np.random.default_rng(6).random((300, d))
        weights = np.ones((300, d))
        dense = VectorGossipEngine(graph, rng=1).run(
            values, weights, xi=1e-12, max_steps=250, run_to_max=True
        )
        sparse = SparseGossipEngine(graph, rng=2).run(
            values, weights, xi=1e-12, max_steps=250, run_to_max=True
        )
        np.testing.assert_allclose(sparse.estimates, dense.estimates, rtol=1e-8)


class TestDeterminismAndInvariants:
    def test_same_seed_bit_identical(self, pa_graph_medium):
        n = pa_graph_medium.num_nodes
        values = np.random.default_rng(3).random(n)
        runs = [
            SparseGossipEngine(pa_graph_medium, rng=77).run(values, np.ones(n), xi=1e-7)
            for _ in range(2)
        ]
        assert runs[0].steps == runs[1].steps
        assert np.array_equal(runs[0].values, runs[1].values)
        assert np.array_equal(runs[0].weights, runs[1].weights)

    def test_mass_conserved_under_loss(self, pa_graph_medium):
        n = pa_graph_medium.num_nodes
        values = np.random.default_rng(4).random(n)
        loss = PacketLossModel(0.3, rng=30)
        out = SparseGossipEngine(pa_graph_medium, loss_model=loss, rng=31).run(
            values, np.ones(n), xi=1e-7
        )
        assert float(out.values.sum()) == pytest.approx(float(values.sum()), rel=1e-9)
        assert float(out.weights.sum()) == pytest.approx(n, rel=1e-9)
        assert np.allclose(out.estimates, values.mean(), atol=5e-3)
        assert loss.lost_count > 0

    def test_extras_ride_along(self, fig2_network):
        engine = SparseGossipEngine(fig2_network, rng=12)
        out = engine.run(
            np.arange(10, dtype=float),
            np.ones(10),
            xi=1e-7,
            extras={"count": np.ones(10)},
        )
        # count starts equal to weight, so count/weight stays exactly 1.
        assert np.allclose(out.extra_estimates("count"), 1.0, atol=1e-9)
        assert float(out.extras["count"].sum()) == pytest.approx(10.0, rel=1e-9)

    def test_history_tracking(self, fig2_network):
        out = SparseGossipEngine(fig2_network, rng=13).run(
            np.arange(10, dtype=float), np.ones(10), xi=1e-5, track_history=True
        )
        assert out.ratio_history is not None
        assert len(out.ratio_history) == out.steps
        assert out.ratio_history[0].shape == (10, 1)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=40),
        p=st.floats(min_value=0.15, max_value=0.6),
        graph_seed=st.integers(min_value=0, max_value=2**31 - 1),
        value_seed=st.integers(min_value=0, max_value=2**31 - 1),
        steps=st.integers(min_value=1, max_value=8),
    )
    def test_mass_conserved_every_round(self, n, p, graph_seed, value_seed, steps):
        """Property: value and weight mass are invariant round by round.

        The engine asserts conservation internally after *every* step
        (raising MassConservationError on drift), so running ``steps``
        rounds exercises the per-round check; the final-sum assertion
        here is the independent external witness.
        """
        graph = erdos_renyi_graph(n, p, rng=graph_seed)
        values = np.random.default_rng(value_seed).random(n)
        weights = np.ones(n)
        out = SparseGossipEngine(graph, rng=graph_seed ^ 0x5EED).run(
            values, weights, xi=1e-9, max_steps=steps, run_to_max=True
        )
        assert out.steps == steps
        assert float(out.values.sum()) == pytest.approx(float(values.sum()), rel=1e-9, abs=1e-9)
        assert float(out.weights.sum()) == pytest.approx(float(weights.sum()), rel=1e-9)
