"""Unit tests for the Zipf catalogue and file placement."""

import numpy as np
import pytest

from repro.simulation.workload import FileCatalog, holders_index


class TestFileCatalog:
    def test_popularity_normalised(self):
        catalog = FileCatalog(50, zipf_exponent=1.0)
        assert float(catalog.popularity.sum()) == pytest.approx(1.0)

    def test_popularity_descending(self):
        catalog = FileCatalog(50, zipf_exponent=1.2)
        pop = catalog.popularity
        assert all(a >= b for a, b in zip(pop, pop[1:]))

    def test_zero_exponent_uniform(self):
        catalog = FileCatalog(10, zipf_exponent=0.0)
        assert np.allclose(catalog.popularity, 0.1)

    def test_sample_respects_skew(self):
        catalog = FileCatalog(100, zipf_exponent=1.5)
        samples = catalog.sample_requests(5000, rng=1)
        top_fraction = float(np.mean(samples < 10))
        assert top_fraction > 0.5

    def test_sample_single(self):
        catalog = FileCatalog(5)
        file_id = catalog.sample_request(rng=2)
        assert 0 <= file_id < 5

    def test_sample_rejects_negative(self):
        with pytest.raises(ValueError):
            FileCatalog(5).sample_requests(-1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FileCatalog(0)
        with pytest.raises(ValueError):
            FileCatalog(10, zipf_exponent=-1.0)


class TestPlacement:
    def test_every_file_held_somewhere(self):
        catalog = FileCatalog(80)
        libraries = catalog.place_files(20, files_per_peer=5.0, rng=3)
        held = set().union(*libraries)
        assert held == set(range(80))

    def test_sharing_fraction_shrinks_library(self):
        catalog = FileCatalog(200)
        sharing = np.array([1.0] * 10 + [0.0] * 10)
        libraries = catalog.place_files(20, files_per_peer=10.0, sharing_fraction=sharing, rng=4)
        full_sizes = [len(lib) for lib in libraries[:10]]
        empty_sizes = [len(lib) for lib in libraries[10:]]
        # Non-sharers hold only orphan-file seeds.
        assert np.mean(full_sizes) > np.mean(empty_sizes)

    def test_library_count_matches_peers(self):
        catalog = FileCatalog(30)
        libraries = catalog.place_files(7, rng=5)
        assert len(libraries) == 7

    def test_rejects_bad_shape(self):
        catalog = FileCatalog(30)
        with pytest.raises(ValueError):
            catalog.place_files(5, sharing_fraction=np.ones(3))

    def test_rejects_zero_peers(self):
        with pytest.raises(ValueError):
            FileCatalog(10).place_files(0)

    def test_deterministic(self):
        catalog = FileCatalog(40)
        a = catalog.place_files(10, rng=6)
        b = catalog.place_files(10, rng=6)
        assert a == b


class TestHoldersIndex:
    def test_inverts_libraries(self):
        libraries = [frozenset({0, 1}), frozenset({1}), frozenset()]
        index = holders_index(libraries)
        assert index[0] == [0]
        assert index[1] == [0, 1]
        assert 2 not in index
