"""Integration-grade tests for the file-sharing simulation."""

import pytest

from repro.network.preferential_attachment import preferential_attachment_graph
from repro.simulation.filesharing import (
    FileSharingSimulation,
    SimulationConfig,
    SimulationReport,
)
from repro.simulation.peer import (
    cooperative_profile,
    free_rider_profile,
    whitewasher_profile,
)


def _world(n=40, horizon=40.0, seed=0, free_rider_every=4, **config_kwargs):
    graph = preferential_attachment_graph(n, m=2, rng=seed)
    profiles = [
        free_rider_profile() if i % free_rider_every == 0 else cooperative_profile()
        for i in range(n)
    ]
    config = SimulationConfig(horizon=horizon, aggregation_interval=10.0, **config_kwargs)
    return graph, profiles, config


class TestBasicRun:
    def test_produces_transactions(self):
        graph, profiles, config = _world()
        sim = FileSharingSimulation(graph, profiles, config, rng=1)
        report = sim.run()
        assert report.transactions > 0
        assert set(report.by_profile) == {"cooperative", "free_rider"}

    def test_aggregation_rounds_match_interval(self):
        graph, profiles, config = _world(horizon=35.0)
        sim = FileSharingSimulation(graph, profiles, config, rng=2)
        report = sim.run()
        assert report.aggregation_rounds == 3  # t = 10, 20, 30

    def test_deterministic_from_seed(self):
        graph, profiles, config = _world()
        a = FileSharingSimulation(graph, profiles, config, rng=7).run()
        b = FileSharingSimulation(graph, profiles, config, rng=7).run()
        assert a.transactions == b.transactions
        assert a.by_profile["cooperative"].downloads == b.by_profile["cooperative"].downloads

    def test_profile_count_validation(self):
        graph, profiles, config = _world()
        with pytest.raises(ValueError, match="one profile per node"):
            FileSharingSimulation(graph, profiles[:-1], config)


class TestReputationEffect:
    def test_free_riders_starve_under_reputation(self):
        graph, profiles, config = _world(n=60, horizon=60.0)
        sim = FileSharingSimulation(graph, profiles, config, rng=3)
        report = sim.run()
        assert report.success_ratio("cooperative", "free_rider") > 1.3

    def test_anarchy_baseline_is_fairer_to_free_riders(self):
        graph, profiles, config = _world(n=60, horizon=60.0)
        with_rep = FileSharingSimulation(graph, profiles, config, rng=4).run()
        without_rep = FileSharingSimulation(
            graph, profiles, config, rng=4, use_reputation=False
        ).run()
        assert (
            with_rep.success_ratio("cooperative", "free_rider")
            > without_rep.success_ratio("cooperative", "free_rider")
        )

    def test_reputation_matrix_available_after_run(self):
        graph, profiles, config = _world()
        sim = FileSharingSimulation(graph, profiles, config, rng=5)
        assert sim.reputation_matrix is None
        sim.run()
        assert sim.reputation_matrix is not None
        assert sim.reputation_matrix.shape == (40, 40)

    def test_trust_matrix_snapshot(self):
        graph, profiles, config = _world()
        sim = FileSharingSimulation(graph, profiles, config, rng=6)
        sim.run()
        trust = sim.trust_matrix()
        assert trust.num_observations > 0
        for _, _, value in trust.items():
            assert 0.0 <= value <= 1.0


class TestWhitewashing:
    def test_whitewash_events_fire(self):
        graph = preferential_attachment_graph(30, m=2, rng=10)
        profiles = [
            whitewasher_profile(whitewash_interval=10.0) if i < 5 else cooperative_profile()
            for i in range(30)
        ]
        config = SimulationConfig(horizon=45.0, aggregation_interval=15.0)
        sim = FileSharingSimulation(graph, profiles, config, rng=11)
        report = sim.run()
        assert report.whitewash_events >= 5 * 4  # resets at t=10,20,30,40 each

    def test_whitewashing_does_not_help_under_zero_policy(self):
        graph = preferential_attachment_graph(40, m=2, rng=12)

        def build(profile_factory):
            profiles = [
                profile_factory() if i < 8 else cooperative_profile() for i in range(40)
            ]
            config = SimulationConfig(horizon=60.0, aggregation_interval=15.0)
            return FileSharingSimulation(graph, profiles, config, rng=13).run()

        plain = build(free_rider_profile)
        washing = build(lambda: whitewasher_profile(whitewash_interval=15.0))
        plain_rate = plain.by_profile["free_rider"].download_success_rate
        washing_rate = washing.by_profile["whitewasher"].download_success_rate
        # Resetting identity must not meaningfully beat staying put.
        assert washing_rate <= plain_rate + 0.1


class TestReport:
    def test_success_ratio_handles_zero_division(self):
        report = SimulationReport(
            by_profile={
                "a": _summary("a", downloads=5, requests=10),
                "b": _summary("b", downloads=0, requests=10),
            },
            aggregation_rounds=0,
            whitewash_events=0,
            transactions=0,
        )
        assert report.success_ratio("a", "b") == float("inf")
        assert report.success_ratio("b", "a") == 0.0

    def test_mean_satisfaction_zero_when_no_downloads(self):
        summary = _summary("x", downloads=0, requests=3)
        assert summary.mean_satisfaction == 0.0
        assert summary.download_success_rate == 0.0


def _summary(name, *, downloads, requests):
    from repro.simulation.filesharing import ProfileSummary

    return ProfileSummary(
        profile_name=name,
        peers=1,
        requests=requests,
        downloads=downloads,
        lookup_failures=0,
        mean_satisfaction=0.0,
        uploads_served=0,
        uploads_declined=0,
    )
