"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.network.graph import Graph, from_adjacency


class TestConstruction:
    def test_single_node(self):
        g = Graph(1, [])
        assert g.num_nodes == 1
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_triangle_basics(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert all(triangle.degree(i) == 2 for i in range(3))

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            Graph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError, match="outside"):
            Graph(3, [(0, 7)])

    def test_edges_accepts_numpy_ints(self):
        g = Graph(3, [(np.int64(0), np.int64(1))])
        assert g.has_edge(0, 1)


class TestAccessors:
    def test_neighbors_sorted(self, fig2_network):
        for node in range(10):
            nbrs = fig2_network.neighbors(node)
            assert list(nbrs) == sorted(nbrs)

    def test_neighbors_readonly(self, triangle):
        with pytest.raises(ValueError):
            triangle.neighbors(0)[0] = 99

    def test_degrees_readonly(self, triangle):
        with pytest.raises(ValueError):
            triangle.degrees[0] = 99

    def test_has_edge_symmetric(self, fig2_network):
        for u in range(10):
            for v in range(10):
                assert fig2_network.has_edge(u, v) == fig2_network.has_edge(v, u)

    def test_edges_iterates_once_each(self, fig2_network):
        edges = list(fig2_network.edges())
        assert len(edges) == fig2_network.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_degree_matches_neighbor_count(self, pa_graph_small):
        for node in range(pa_graph_small.num_nodes):
            assert pa_graph_small.degree(node) == len(pa_graph_small.neighbors(node))

    def test_degree_sum_is_twice_edges(self, pa_graph_small):
        assert int(pa_graph_small.degrees.sum()) == 2 * pa_graph_small.num_edges

    def test_csr_arrays_consistent(self, pa_graph_small):
        g = pa_graph_small
        assert g.indptr.shape == (g.num_nodes + 1,)
        assert g.indices.shape == (int(g.degrees.sum()),)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.indices.shape[0]


class TestAverageNeighborDegree:
    def test_star_hub(self, star5):
        # Hub 0 has 4 leaves of degree 1 each.
        assert star5.average_neighbor_degrees[0] == pytest.approx(1.0)
        # Every leaf's only neighbour is the hub (degree 4).
        for leaf in range(1, 5):
            assert star5.average_neighbor_degrees[leaf] == pytest.approx(4.0)

    def test_regular_graph_equals_degree(self, triangle):
        assert np.allclose(triangle.average_neighbor_degrees, 2.0)

    def test_isolated_node_zero(self):
        g = Graph(3, [(0, 1)])
        assert g.average_neighbor_degrees[2] == 0.0

    def test_matches_bruteforce(self, pa_graph_small):
        g = pa_graph_small
        for node in range(g.num_nodes):
            nbrs = g.neighbors(node)
            expected = float(np.mean([g.degree(int(v)) for v in nbrs]))
            assert g.average_neighbor_degrees[node] == pytest.approx(expected)


class TestStructure:
    def test_connected_triangle(self, triangle):
        assert triangle.is_connected()

    def test_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert not g.is_connected()
        components = g.connected_components()
        assert components == [[0, 1], [2, 3]]

    def test_single_node_connected(self):
        assert Graph(1, []).is_connected()

    def test_components_cover_all_nodes(self, pa_graph_small):
        components = pa_graph_small.connected_components()
        covered = sorted(node for comp in components for node in comp)
        assert covered == list(range(pa_graph_small.num_nodes))

    def test_diameter_path(self, path4):
        assert path4.diameter_estimate() == 3

    def test_diameter_rejects_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="disconnected"):
            g.diameter_estimate()

    def test_degree_histogram(self, star5):
        assert star5.degree_histogram() == {1: 4, 4: 1}


class TestEquality:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self, triangle, path4):
        assert triangle != path4


class TestFromAdjacency:
    def test_roundtrip(self, fig2_network):
        adjacency = [list(map(int, fig2_network.neighbors(u))) for u in range(10)]
        assert from_adjacency(adjacency) == fig2_network

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            from_adjacency([[1], []])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            from_adjacency([[0]])


class TestCsrConstructors:
    """The vectorised CSR fast path builds the same graphs as __init__."""

    def test_from_csr_roundtrip(self, fig2_network):
        rebuilt = Graph.from_csr(10, fig2_network.indptr, fig2_network.indices)
        assert rebuilt == fig2_network
        assert np.array_equal(rebuilt.degrees, fig2_network.degrees)
        assert np.array_equal(
            rebuilt.average_neighbor_degrees, fig2_network.average_neighbor_degrees
        )

    def test_from_csr_copies_inputs(self, triangle):
        indptr = np.array(triangle.indptr)
        indices = np.array(triangle.indices)
        rebuilt = Graph.from_csr(3, indptr, indices)
        indices[0] = 2  # mutating the caller's array must not affect the graph
        assert rebuilt == triangle

    def test_from_csr_rejects_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            Graph.from_csr(3, np.array([0, 1]), np.array([1]))
        with pytest.raises(ValueError, match="indptr"):
            Graph.from_csr(2, np.array([0, 2, 1]), np.array([1, 0]))

    def test_from_csr_rejects_float_arrays(self):
        # Silent truncation would fabricate edges from misaligned input.
        with pytest.raises(ValueError, match="integer"):
            Graph.from_csr(2, np.array([0.0, 1.9, 2.0]), np.array([1, 0]))
        with pytest.raises(ValueError, match="integer"):
            Graph.from_csr(2, np.array([0, 1, 2]), np.array([1.2, 0.7]))

    def test_from_csr_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            Graph.from_csr(2, np.array([0, 1, 2]), np.array([5, 0]))

    def test_from_csr_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph.from_csr(2, np.array([0, 1, 2]), np.array([0, 1]))

    def test_from_csr_rejects_unsorted_row(self):
        # Row 0 lists neighbours (2, 1): sorted order is required.
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Graph.from_csr(3, indptr, indices)

    def test_from_csr_rejects_asymmetric(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(ValueError, match="symmetric"):
            Graph.from_csr(2, indptr, indices)

    def test_to_scipy_csr_values_and_cache(self, triangle):
        adjacency = triangle.to_scipy_csr()
        assert adjacency.shape == (3, 3)
        assert adjacency.nnz == 6  # both directions of each edge
        assert triangle.to_scipy_csr() is adjacency  # cached
        dense = adjacency.toarray()
        assert dense[0, 1] == 1.0 and dense[0, 0] == 0.0
        assert np.array_equal(dense, dense.T)

    def test_from_scipy_sparse_roundtrip(self, fig2_network):
        assert Graph.from_scipy_sparse(fig2_network.to_scipy_csr()) == fig2_network

    def test_from_scipy_sparse_rejects_nonsquare(self):
        import scipy.sparse

        matrix = scipy.sparse.csr_matrix(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            Graph.from_scipy_sparse(matrix)

    def test_from_scipy_sparse_canonicalises_duplicates(self):
        import scipy.sparse

        # COO with a duplicated (0, 1) entry; sum_duplicates must merge it.
        matrix = scipy.sparse.coo_matrix(
            ([1.0, 1.0, 1.0], ([0, 0, 1], [1, 1, 0])), shape=(2, 2)
        )
        graph = Graph.from_scipy_sparse(matrix)
        assert graph.num_edges == 1
        assert graph.has_edge(0, 1)

    def test_from_scipy_sparse_ignores_explicit_zeros(self):
        import scipy.sparse

        # Duplicates that cancel to 0.0 (and stored zeros generally) are
        # not edges: the numerically-zero matrix has no edges at all.
        matrix = scipy.sparse.coo_matrix(
            ([1.0, -1.0, 1.0, -1.0], ([0, 0, 1, 1], [1, 1, 0, 0])), shape=(2, 2)
        )
        graph = Graph.from_scipy_sparse(matrix)
        assert graph.num_edges == 0
        assert not graph.has_edge(0, 1)
