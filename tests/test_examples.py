"""Smoke tests: the example scripts must run and say what they claim.

The heavyweight simulation examples (free_riding, churn_tolerance,
collusion_resistance) are exercised through their underlying modules in
the integration tests; here the fast examples run end to end so a
README copy-paste can never break silently.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "overlay: 500 peers" in out
        assert "accuracy: max |gossip - exact|" in out

    def test_example_network_trace(self, capsys):
        out = run_example("example_network_trace.py", capsys)
        assert "Table 1" in out
        assert "node 3 is the hub" in out

    def test_adaptive_weighting(self, capsys):
        out = run_example("adaptive_weighting.py", capsys)
        assert "liar" in out
        assert "a_i rises" in out

    def test_whitewashing_defence(self, capsys):
        out = run_example("whitewashing_defence.py", capsys)
        assert "whitewasher" in out
        assert "zero initial trust (paper)" in out

    @pytest.mark.parametrize(
        "script",
        ["free_riding.py", "collusion_resistance.py", "churn_tolerance.py"],
    )
    def test_heavy_examples_exist_and_compile(self, script):
        path = EXAMPLES_DIR / script
        source = path.read_text()
        compile(source, str(path), "exec")
        assert '__name__ == "__main__"' in source
