"""Unit tests for the vectorised gossip engine."""

import numpy as np
import pytest

from repro.core.differential import fixed_push_counts
from repro.core.errors import ConvergenceError
from repro.core.state import UNDEFINED_RATIO
from repro.core.vector_engine import VectorGossipEngine
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph


class TestAveraging:
    def test_converges_to_mean(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=1)
        values = np.arange(10, dtype=float)
        out = engine.run(values, np.ones(10), xi=1e-8)
        assert np.allclose(out.estimates, 4.5, atol=1e-3)

    def test_converges_on_pa_graph(self, pa_graph_medium):
        n = pa_graph_medium.num_nodes
        engine = VectorGossipEngine(pa_graph_medium, rng=2)
        values = np.random.default_rng(0).random(n)
        out = engine.run(values, np.ones(n), xi=1e-7)
        assert np.allclose(out.estimates, values.mean(), atol=1e-3)

    def test_sum_estimation_single_weight(self, fig2_network):
        # One node holds weight 1: ratios converge to the SUM of values.
        engine = VectorGossipEngine(fig2_network, rng=3)
        values = np.arange(10, dtype=float)
        weights = np.zeros(10)
        weights[0] = 1.0
        out = engine.run(values, weights, xi=1e-9)
        assert np.allclose(out.estimates, 45.0, atol=1e-3)

    def test_multi_component(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=4)
        values = np.column_stack([np.arange(10.0), np.ones(10)])
        out = engine.run(values, np.ones((10, 2)), xi=1e-8)
        assert np.allclose(out.estimates[:, 0], 4.5, atol=1e-3)
        assert np.allclose(out.estimates[:, 1], 1.0, atol=1e-3)

    def test_extras_ride_along(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=5)
        values = np.arange(10.0)
        counts = np.ones(10)
        out = engine.run(values, np.ones(10), xi=1e-8, extras={"count": counts})
        assert np.allclose(out.extra_estimates("count"), 1.0, atol=1e-3)

    def test_unknown_extra_name_raises(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=5)
        out = engine.run(np.ones(10), np.ones(10), xi=1e-4)
        with pytest.raises(KeyError):
            out.extra_estimates("nope")


class TestMassConservation:
    def test_value_and_weight_mass(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        engine = VectorGossipEngine(pa_graph_small, rng=6)
        values = np.random.default_rng(1).random(n)
        out = engine.run(values, np.ones(n), xi=1e-6)
        assert float(out.values.sum()) == pytest.approx(float(values.sum()), rel=1e-9)
        assert float(out.weights.sum()) == pytest.approx(n, rel=1e-9)

    def test_mass_conserved_under_loss(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        loss = PacketLossModel(0.3, rng=7)
        engine = VectorGossipEngine(pa_graph_small, loss_model=loss, rng=8)
        values = np.random.default_rng(2).random(n)
        out = engine.run(values, np.ones(n), xi=1e-6)
        assert float(out.values.sum()) == pytest.approx(float(values.sum()), rel=1e-9)
        assert loss.lost_count > 0


class TestProtocolBehaviour:
    def test_max_steps_raises(self, pa_graph_small):
        engine = VectorGossipEngine(pa_graph_small, rng=9)
        values = np.random.default_rng(3).random(pa_graph_small.num_nodes)
        with pytest.raises(ConvergenceError):
            engine.run(values, np.ones(pa_graph_small.num_nodes), xi=1e-12, max_steps=3)

    def test_run_to_max_fixed_steps(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=10)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-9, max_steps=25, run_to_max=True)
        assert out.steps == 25

    def test_track_history(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=11)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-5, track_history=True)
        assert out.ratio_history is not None
        assert len(out.ratio_history) == out.steps
        assert out.ratio_history[0].shape == (10, 1)

    def test_zero_weight_component_stays_sentinel(self, fig2_network):
        # A dead column (no weight anywhere) must not block convergence.
        engine = VectorGossipEngine(fig2_network, rng=12)
        values = np.zeros((10, 2))
        values[:, 0] = np.arange(10.0)
        weights = np.zeros((10, 2))
        weights[:, 0] = 1.0
        out = engine.run(values, weights, xi=1e-6)
        assert np.all(out.estimates[:, 1] == UNDEFINED_RATIO)
        assert np.allclose(out.estimates[:, 0], 4.5, atol=1e-2)

    def test_all_nodes_converge_flag(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=13)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-6)
        assert out.converged.all()

    def test_isolated_node_does_not_block(self):
        g = Graph(4, [(0, 1), (1, 2), (0, 2)])
        engine = VectorGossipEngine(g, rng=14)
        out = engine.run(np.array([1.0, 2.0, 3.0, 9.0]), np.ones(4), xi=1e-8)
        # Node 3 keeps its own value; the triangle averages its own.
        assert out.estimates[3, 0] == pytest.approx(9.0)
        assert np.allclose(out.estimates[:3, 0], 2.0, atol=1e-3)


class TestMessageAccounting:
    def test_push_messages_positive(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=15)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-5)
        assert out.push_messages > 0
        assert out.total_messages == out.push_messages + out.protocol_messages

    def test_degree_announcements_counted_for_differential(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=16)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-5)
        assert out.protocol_messages >= int(fig2_network.degrees.sum())

    def test_no_degree_announcements_for_fixed_counts(self, fig2_network):
        engine = VectorGossipEngine(
            fig2_network, push_counts=fixed_push_counts(fig2_network, 1), rng=17
        )
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-5)
        # Only convergence announcements remain.
        assert out.protocol_messages < int(fig2_network.degrees.sum()) + 1

    def test_messages_per_node_per_step(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        engine = VectorGossipEngine(pa_graph_small, rng=18)
        out = engine.run(np.random.default_rng(4).random(n), np.ones(n), xi=1e-4)
        assert 1.0 < out.messages_per_node_per_step < 2.5
        assert out.messages_per_node_per_wallclock_step <= out.messages_per_node_per_step


class TestValidation:
    def test_rejects_wrong_shapes(self, triangle):
        engine = VectorGossipEngine(triangle, rng=0)
        with pytest.raises(ValueError):
            engine.run(np.ones(4), np.ones(3))
        with pytest.raises(ValueError):
            engine.run(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            engine.run(np.ones(3), np.ones(3), extras={"x": np.ones(4)})

    def test_rejects_reserved_extra_name(self, triangle):
        engine = VectorGossipEngine(triangle, rng=0)
        with pytest.raises(ValueError, match="reserved"):
            engine.run(np.ones(3), np.ones(3), extras={"value": np.ones(3)})

    def test_rejects_push_counts_above_degree(self, triangle):
        with pytest.raises(ValueError):
            VectorGossipEngine(triangle, push_counts=np.array([3, 1, 1]))

    def test_rejects_zero_push_counts(self, triangle):
        with pytest.raises(ValueError):
            VectorGossipEngine(triangle, push_counts=np.array([0, 1, 1]))

    def test_inputs_not_mutated(self, fig2_network):
        engine = VectorGossipEngine(fig2_network, rng=19)
        values = np.arange(10.0)
        weights = np.ones(10)
        snapshot = values.copy()
        engine.run(values, weights, xi=1e-4)
        assert np.array_equal(values, snapshot)


class TestDeterminism:
    def test_same_seed_same_outcome(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        values = np.random.default_rng(5).random(n)
        a = VectorGossipEngine(pa_graph_small, rng=42).run(values, np.ones(n), xi=1e-5)
        b = VectorGossipEngine(pa_graph_small, rng=42).run(values, np.ones(n), xi=1e-5)
        assert a.steps == b.steps
        assert np.array_equal(a.estimates, b.estimates)

    def test_different_seeds_different_paths(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        values = np.random.default_rng(5).random(n)
        a = VectorGossipEngine(pa_graph_small, rng=1).run(values, np.ones(n), xi=1e-5)
        b = VectorGossipEngine(pa_graph_small, rng=2).run(values, np.ones(n), xi=1e-5)
        assert not np.array_equal(a.estimates, b.estimates)
