"""Tests for the experiment CLI, runner plumbing and collusion helpers."""

import numpy as np
import pytest

from repro.attacks.collusion import group_colluders
from repro.experiments.__main__ import main
from repro.experiments.collusion_common import (
    build_world,
    measure_collusion,
    sweep_collusion,
)
from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("table1", "table2", "fig3", "fig4", "fig5", "fig6"):
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2
        assert "available" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "node 10" in out

    def test_seed_override(self, capsys):
        assert main(["table1", "--seed", "5"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_full_flag_sets_env(self, monkeypatch, capsys):
        import os

        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert main(["table1", "--full"]) == 0
        assert os.environ.get("REPRO_FULL_SCALE") == "1"
        os.environ.pop("REPRO_FULL_SCALE", None)


class TestRunner:
    def test_result_to_text(self):
        result = ExperimentResult(
            experiment_id="x",
            title="My Title",
            headers=["a"],
            rows=[[1.5]],
            notes=["a note"],
            elapsed_seconds=1.0,
        )
        text = result.to_text()
        assert "My Title" in text
        assert "note: a note" in text
        assert "elapsed" in text

    def test_stopwatch_measures(self):
        with Stopwatch() as watch:
            sum(range(1000))
        assert watch.elapsed >= 0.0

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert full_scale_enabled()
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert not full_scale_enabled()
        monkeypatch.delenv("REPRO_FULL_SCALE")
        assert not full_scale_enabled()


class TestCollusionCommon:
    def test_build_world_dense_by_default(self):
        graph, trust = build_world(30, seed=1)
        assert trust.num_observations == 30 * 29

    def test_build_world_sparse_option(self):
        graph, trust = build_world(30, observations_per_node=2, seed=2)
        assert trust.num_observations < 30 * 29

    def test_measure_collusion_gossip_vs_exact(self):
        graph, trust = build_world(60, seed=3)
        attack = group_colluders(np.arange(12), 4)
        exact = measure_collusion(graph, trust, attack, use_gossip=False)
        gossip = measure_collusion(
            graph, trust, attack, use_gossip=True, xi=1e-6, seed=4
        )
        assert exact[0] == pytest.approx(gossip[0], rel=0.1)

    def test_sweep_shapes(self):
        measurements = sweep_collusion(
            50, fractions=(0.1, 0.3), group_sizes=(2, 5), use_gossip=False, seed=5
        )
        assert len(measurements) == 4
        keys = {(m.group_size, m.fraction) for m in measurements}
        assert keys == {(2, 0.1), (2, 0.3), (5, 0.1), (5, 0.3)}
        for m in measurements:
            assert m.rms_gclr >= 0.0
            assert m.num_colluders == int(round(m.fraction * 50))
