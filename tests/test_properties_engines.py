"""Deeper engine properties: linearity, column independence, async mass.

The push operator is linear and applied identically to every state
column (a node ships all its components to the same targets). Two exact
consequences make powerful tests:

- scaling an initial column scales its whole trajectory (homogeneity);
- the sum of two initial columns evolves to the sum of their
  trajectories (additivity) when run under the same seed.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.async_engine import AsyncGossipEngine
from repro.core.engine import MessageLevelGossip
from repro.core.vector_engine import VectorGossipEngine
from repro.network.preferential_attachment import preferential_attachment_graph

# Heavier hypothesis suite: one full run per CI matrix (see pyproject markers).
pytestmark = pytest.mark.property

SLOW = settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])

world = st.tuples(
    st.integers(min_value=10, max_value=40),
    st.integers(min_value=0, max_value=2**31 - 1),
)


def _graph(n, seed):
    return preferential_attachment_graph(n, m=2, rng=seed)


class TestLinearity:
    @SLOW
    @given(params=world, scale=st.floats(min_value=0.1, max_value=10.0))
    def test_homogeneity_across_columns(self, params, scale):
        """Column 2 = scale * column 1 initially => identical ratios * scale."""
        n, seed = params
        graph = _graph(n, seed)
        base = np.random.default_rng(seed).random(n)
        values = np.column_stack([base, scale * base])
        weights = np.ones((n, 2))
        out = VectorGossipEngine(graph, rng=seed + 1).run(
            values, weights, xi=1e-9, max_steps=40, run_to_max=True
        )
        assert np.allclose(out.values[:, 1], scale * out.values[:, 0], rtol=1e-9)

    @SLOW
    @given(params=world)
    def test_additivity_across_columns(self, params):
        """Column 3 = column 1 + column 2 initially stays their sum."""
        n, seed = params
        graph = _graph(n, seed)
        rng = np.random.default_rng(seed)
        a, b = rng.random(n), rng.random(n)
        values = np.column_stack([a, b, a + b])
        weights = np.ones((n, 3))
        out = VectorGossipEngine(graph, rng=seed + 2).run(
            values, weights, xi=1e-9, max_steps=40, run_to_max=True
        )
        assert np.allclose(
            out.values[:, 2], out.values[:, 0] + out.values[:, 1], rtol=1e-9
        )

    @SLOW
    @given(params=world)
    def test_constant_column_is_fixed_point(self, params):
        """A column equal to its weights keeps ratio exactly 1 everywhere."""
        n, seed = params
        graph = _graph(n, seed)
        out = VectorGossipEngine(graph, rng=seed + 3).run(
            np.ones(n), np.ones(n), xi=1e-9, max_steps=30, run_to_max=True
        )
        assert np.allclose(out.estimates, 1.0, atol=1e-12)


class TestEngineAgreement:
    @SLOW
    @given(params=world)
    def test_message_and_vector_limits_agree(self, params):
        n, seed = params
        graph = _graph(n, seed)
        values = np.random.default_rng(seed).random(n)
        vector = VectorGossipEngine(graph, rng=seed + 4).run(values, np.ones(n), xi=1e-7)
        message = MessageLevelGossip(graph, rng=seed + 5).run(values, np.ones(n), xi=1e-7)
        assert np.allclose(vector.estimates, values.mean(), atol=2e-3)
        assert np.allclose(message.estimates, values.mean(), atol=2e-3)


class TestAsyncProperties:
    @SLOW
    @given(params=world)
    def test_async_mass_conservation(self, params):
        n, seed = params
        graph = _graph(n, seed)
        values = np.random.default_rng(seed).random(n)
        out = AsyncGossipEngine(graph, rng=seed + 6).run(
            values, np.ones(n), xi=1e-4, quiet_window=2.0, max_time=500.0, strict=False
        )
        assert abs(float(out.values.sum()) - float(values.sum())) < 1e-9 * n
        assert abs(float(out.weights.sum()) - n) < 1e-9 * n

    @SLOW
    @given(
        params=world,
        loss=st.floats(min_value=0.0, max_value=0.5),
        latency_mean=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_async_mass_conserved_in_flight_under_loss_and_latency(
        self, params, loss, latency_mean
    ):
        """State + in-flight mass is exact at every event (check_mass
        audits each one), and the flushed final state is exact too."""
        from repro.network.conditions import HomogeneousLink, LatencySpec

        n, seed = params
        graph = _graph(n, seed)
        values = np.random.default_rng(seed).random(n)
        link = HomogeneousLink(loss, latency=LatencySpec("exponential", latency_mean))
        out = AsyncGossipEngine(graph, rng=seed + 7, link=link, link_rng=seed + 8).run(
            values, np.ones(n), xi=1e-4, quiet_window=2.0,
            max_time=300.0, strict=False, check_mass=True,
        )
        assert abs(float(out.values.sum()) - float(values.sum())) < 1e-9 * n
        assert abs(float(out.weights.sum()) - n) < 1e-9 * n

    @SLOW
    @given(params=world)
    def test_async_mass_conserved_across_partition_and_heal(self, params):
        """Partition drops self-redirect, so mass survives cut + heal."""
        from repro.network.conditions import (
            LatencySpec,
            PartitionWindow,
            RegionalLinkModel,
        )

        n, seed = params
        graph = _graph(n, seed)
        values = np.random.default_rng(seed).random(n)
        link = RegionalLinkModel(
            2,
            intra_latency=LatencySpec("exponential", 0.05),
            partitions=(PartitionWindow(start=1.0, duration=5.0),),
        )
        out = AsyncGossipEngine(graph, rng=seed + 9, link=link, link_rng=seed + 10).run(
            values, np.ones(n), xi=1e-4, quiet_window=2.0,
            max_time=300.0, strict=False, check_mass=True,
        )
        assert abs(float(out.values.sum()) - float(values.sum())) < 1e-9 * n
        assert abs(float(out.weights.sum()) - n) < 1e-9 * n

    @SLOW
    @given(params=world)
    def test_async_agrees_with_sparse_fixpoint(self, params):
        """The event-driven engine and the sparse synchronous backend
        settle on the same mean estimate for the same inputs."""
        from repro.core.backend import GossipConfig, run_backend

        n, seed = params
        graph = _graph(n, seed)
        values = np.random.default_rng(seed).random(n)
        sparse = run_backend(
            graph, values, np.ones(n),
            config=GossipConfig(xi=1e-8, rng=seed + 11), backend="sparse",
        )
        async_out = AsyncGossipEngine(graph, rng=seed + 12).run(
            values, np.ones(n), xi=1e-5, quiet_window=4.0, max_time=1000.0
        )
        assert np.allclose(sparse.estimates, values.mean(), atol=2e-3)
        assert np.allclose(async_out.estimates, values.mean(), atol=2e-2)
        assert sparse.estimates.mean() == pytest.approx(
            async_out.estimates.mean(), abs=1e-2
        )
