"""Run every module's doctests as part of the main suite.

Docstring examples are the first code a user copies; they must execute.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue  # argparse entry point; no doctests, imports sys.exit
        names.append(module_info.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


@pytest.mark.parametrize("symbol", [name for name in repro.__all__ if not name.startswith("__")])
def test_public_symbol_has_runnable_example(symbol):
    """Every re-exported symbol documents itself with a doctest example."""
    import inspect

    obj = getattr(repro, symbol)
    doc = inspect.getdoc(obj) or ""
    assert doc, f"repro.{symbol} has no docstring"
    assert ">>>" in doc, f"repro.{symbol} docstring has no runnable example"
