"""Unified backend registry, facade and cross-backend equivalence.

The load-bearing acceptance check lives here: every registered backend
(and the ``"auto"`` choice) must agree to 1e-8 on the shared fixture
topology, and the old per-variant entry points must keep working as
thin shims over the same registry.
"""

import numpy as np
import pytest

from repro.core.backend import (
    AUTO_DENSE_MAX_NODES,
    AUTO_MESSAGE_MAX_NODES,
    BackendCapabilityError,
    GossipConfig,
    available_backends,
    choose_backend_name,
    get_backend,
    register_backend,
    resolve_backend_name,
    run_backend,
)
from repro.core.differential import fixed_push_counts, resolve_push_counts
from repro.core.single_gclr import aggregate_single_gclr
from repro.core.single_global import aggregate_single_global
from repro.core.vector_gclr import aggregate_vector_gclr
from repro.core.vector_global import aggregate_vector_global
from repro.facade import aggregate
from repro.network.graph import Graph
from repro.network.topology_example import example_network

TRUE_MEAN = 4.5  # mean of arange(10) on the fixture topology


@pytest.fixture
def fixture_values():
    return np.arange(10, dtype=np.float64)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        for expected in ("message", "dense", "sparse", "sharded", "async"):
            assert expected in names

    def test_vector_alias_resolves_to_dense(self):
        assert resolve_backend_name("vector") == "dense"
        assert get_backend("vector") is get_backend("dense")

    def test_unknown_backend_raises_value_and_key_error(self):
        with pytest.raises(ValueError, match="engine"):
            get_backend("gpu")
        with pytest.raises(KeyError):
            get_backend("gpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dense", get_backend("dense"))

    def test_custom_backend_plugs_into_facade(self, fixture_values):
        class Recorder:
            name = "recorder-test"

            def __init__(self):
                self.calls = 0

            def run(self, graph, values, weights, *, extras=None, config=None):
                self.calls += 1
                return get_backend("dense").run(
                    graph, values, weights, extras=extras, config=config
                )

        recorder = Recorder()
        register_backend("recorder-test", recorder, overwrite=True)
        out = aggregate(
            example_network(),
            fixture_values,
            GossipConfig(xi=1e-6, rng=3),
            backend="recorder-test",
        )
        assert recorder.calls == 1
        assert np.allclose(out.estimates, TRUE_MEAN, atol=1e-3)


class TestGossipConfig:
    def test_rejects_nonpositive_xi(self):
        with pytest.raises(ValueError, match="xi"):
            GossipConfig(xi=0.0)

    def test_rejects_k_and_push_counts_together(self):
        with pytest.raises(ValueError, match="not both"):
            GossipConfig(k=1, push_counts=np.ones(3, dtype=np.int64))

    def test_rejects_bad_k_loss_patience(self):
        with pytest.raises(ValueError, match="k"):
            GossipConfig(k=0)
        with pytest.raises(ValueError, match="loss_probability"):
            GossipConfig(loss_probability=1.5)
        with pytest.raises(ValueError, match="patience"):
            GossipConfig(patience=0)

    def test_resolved_push_counts(self, fig2_network):
        assert GossipConfig().resolved_push_counts(fig2_network) is None
        k1 = GossipConfig(k=1).resolved_push_counts(fig2_network)
        np.testing.assert_array_equal(k1, fixed_push_counts(fig2_network, 1))

    def test_loss_probability_does_not_perturb_engine_stream(self):
        # The loss model's stream is derived statelessly from the seed,
        # so a churn run and a loss-free run of the same seed draw
        # identical gossip targets — loss effects are isolatable.
        rng_plain, _ = GossipConfig(rng=7).materialize()
        rng_churn, loss = GossipConfig(rng=7, loss_probability=0.5).materialize()
        assert loss is not None
        np.testing.assert_array_equal(rng_plain.random(16), rng_churn.random(16))

    def test_loss_probability_materializes_seeded_model(self):
        config = GossipConfig(loss_probability=0.4, rng=11)
        _, loss = config.materialize()
        assert loss is not None and loss.loss_probability == 0.4
        # Same seed -> same loss draws (the model is re-derivable).
        _, loss2 = GossipConfig(loss_probability=0.4, rng=11).materialize()
        senders = np.arange(50)
        targets = (senders + 1) % 50
        np.testing.assert_array_equal(
            loss.apply(senders, targets), loss2.apply(senders, targets)
        )


class TestResolvePushCounts:
    """The deduplicated per-hub push-count contract (one definition)."""

    def test_default_is_differential_rule(self, fig2_network):
        from repro.core.differential import push_counts

        np.testing.assert_array_equal(
            resolve_push_counts(fig2_network), push_counts(fig2_network)
        )

    def test_strict_rejects_above_degree_and_zero(self, triangle):
        with pytest.raises(ValueError, match="degree"):
            resolve_push_counts(triangle, np.array([3, 1, 1]))
        with pytest.raises(ValueError, match="at least once"):
            resolve_push_counts(triangle, np.array([0, 1, 1]))

    def test_non_strict_clamps_oversized_counts_with_warning(self, triangle):
        from repro.core.differential import PushCountClampWarning

        with pytest.warns(PushCountClampWarning):
            counts = resolve_push_counts(triangle, np.array([5, 1, 1]), strict=False)
        np.testing.assert_array_equal(counts, [2, 1, 1])

    def test_shape_always_checked(self, triangle):
        with pytest.raises(ValueError, match="shape"):
            resolve_push_counts(triangle, np.ones(2, dtype=np.int64), strict=False)

    def test_returns_fresh_array(self, triangle):
        original = np.array([1, 1, 1])
        resolved = resolve_push_counts(triangle, original)
        resolved[0] = 2
        assert original[0] == 1


class TestCrossBackendEquivalence:
    """Acceptance: every backend agrees to 1e-8 on the fixture topology."""

    @pytest.mark.parametrize(
        "backend", ["message", "dense", "sparse", "sharded", "async", "auto"]
    )
    def test_backend_hits_fixpoint_to_1e8(self, fixture_values, backend):
        out = run_backend(
            example_network(),
            fixture_values,
            np.ones(10),
            config=GossipConfig(xi=1e-10, rng=5, max_steps=100_000),
            backend=backend,
        )
        assert np.abs(out.estimates.reshape(-1) - TRUE_MEAN).max() < 1e-8
        assert out.converged.all()
        # Splitting conserves mass on every backend.
        assert float(out.values.sum()) == pytest.approx(float(fixture_values.sum()), rel=1e-9)
        assert float(out.weights.sum()) == pytest.approx(10.0, rel=1e-9)

    def test_backends_agree_pairwise(self, fixture_values):
        estimates = {
            name: run_backend(
                example_network(),
                fixture_values,
                np.ones(10),
                config=GossipConfig(xi=1e-10, rng=7, max_steps=100_000),
                backend=name,
            ).estimates.reshape(-1)
            for name in ("message", "dense", "sparse", "sharded", "async")
        }
        names = sorted(estimates)
        for a in names:
            for b in names:
                np.testing.assert_allclose(
                    estimates[a], estimates[b], atol=1e-8, err_msg=f"{a} vs {b}"
                )


class TestAutoSelection:
    def test_small_graph_uses_message(self):
        assert choose_backend_name(example_network()) == "message"

    def test_medium_graph_uses_dense(self):
        n = AUTO_MESSAGE_MAX_NODES + 10
        ring = Graph(n, [(i, (i + 1) % n) for i in range(n)])
        assert choose_backend_name(ring) == "dense"

    def test_large_graph_uses_sparse(self):
        n = AUTO_DENSE_MAX_NODES + 1
        ring = Graph(n, [(i, (i + 1) % n) for i in range(n)])
        assert choose_backend_name(ring) == "sparse"

    def test_run_to_max_skips_message(self):
        config = GossipConfig(run_to_max=True, max_steps=5)
        assert choose_backend_name(example_network(), config) == "dense"

    def _sharded_scale_ring(self):
        from repro.core.backend import AUTO_SPARSE_MAX_NODES

        n = AUTO_SPARSE_MAX_NODES + 1
        i = np.arange(n, dtype=np.int64)
        a, b = (i - 1) % n, (i + 1) % n
        cols = np.empty(2 * n, dtype=np.int64)
        cols[0::2] = np.minimum(a, b)
        cols[1::2] = np.maximum(a, b)
        return Graph.from_csr(n, 2 * np.arange(n + 1, dtype=np.int64), cols, validate=False)

    def test_loss_model_config_falls_back_to_sparse_at_sharded_scale(self, monkeypatch):
        # Regression (satellite of the adversary-engine PR): the sharded
        # engine cannot split an explicit PacketLossModel generator
        # across shards, so the auto policy must keep such configs on
        # the single-process sparse engine instead of escalating into a
        # BackendCapabilityError...
        import repro.core.backend as backend_mod
        from repro.network.churn import PacketLossModel

        monkeypatch.setattr(backend_mod, "usable_cpu_count", lambda: 4)
        ring = self._sharded_scale_ring()
        assert choose_backend_name(ring) == "sharded"
        lossy = GossipConfig(loss_model=PacketLossModel(0.2, rng=0))
        assert choose_backend_name(ring, lossy) == "sparse"
        # ...while seed-derived loss keeps the escalation (the sharded
        # engine derives per-shard streams from loss_probability).
        seeded = GossipConfig(loss_probability=0.2, rng=0)
        assert choose_backend_name(ring, seeded) == "sharded"


class TestCapabilityErrors:
    def test_message_rejects_run_to_max(self, fixture_values):
        with pytest.raises(BackendCapabilityError, match="run_to_max"):
            run_backend(
                example_network(),
                fixture_values,
                np.ones(10),
                config=GossipConfig(run_to_max=True, max_steps=5),
                backend="message",
            )

    def test_async_rejects_extras_loss_model_and_matrix_state(self, fixture_values):
        from repro.network.conditions import PacketLossModel

        g = example_network()
        with pytest.raises(BackendCapabilityError, match="extra"):
            run_backend(
                g, fixture_values, np.ones(10),
                extras={"count": np.ones(10)}, backend="async",
            )
        # Uniform loss_probability now runs natively (as an InstantLink);
        # only an explicit pre-built loss_model is rejected, because its
        # generator is not the derived link stream.
        with pytest.raises(BackendCapabilityError, match="link model"):
            run_backend(
                g, fixture_values, np.ones(10),
                config=GossipConfig(loss_model=PacketLossModel(0.2, rng=0)),
                backend="async",
            )
        with pytest.raises(BackendCapabilityError, match="scalar"):
            run_backend(g, np.ones((10, 3)), np.ones((10, 3)), backend="async")

    def test_sharded_rejects_explicit_loss_model(self, fixture_values):
        from repro.network.churn import PacketLossModel

        with pytest.raises(BackendCapabilityError, match="loss_probability"):
            run_backend(
                example_network(), fixture_values, np.ones(10),
                config=GossipConfig(loss_model=PacketLossModel(0.2, rng=0)),
                backend="sharded",
            )

    def test_async_rejects_synchronous_stop_knobs(self, fixture_values):
        with pytest.raises(BackendCapabilityError, match="patience"):
            run_backend(
                example_network(), fixture_values, np.ones(10),
                config=GossipConfig(patience=10), backend="async",
            )
        with pytest.raises(BackendCapabilityError, match="warmup"):
            run_backend(
                example_network(), fixture_values, np.ones(10),
                config=GossipConfig(warmup_steps=5), backend="async",
            )


class TestFacade:
    def test_array_input_estimates_mean(self, fixture_values):
        out = aggregate(example_network(), fixture_values, GossipConfig(xi=1e-7, rng=1))
        assert np.allclose(out.estimates, TRUE_MEAN, atol=1e-4)

    def test_vector_global_variant_matches_entry_point(self, pa_graph_small, small_trust):
        targets = [0, 3, 9]
        # The entry point now defaults to backend="auto"; pin dense so
        # both sides run the identical engine trajectory.
        old = aggregate_vector_global(
            pa_graph_small, small_trust, targets=targets, xi=1e-6, rng=17, backend="dense"
        )
        new = aggregate(
            pa_graph_small,
            small_trust,
            GossipConfig(xi=1e-6, rng=17),
            backend="dense",
            variant="vector-global",
            targets=targets,
        )
        np.testing.assert_array_equal(old.outcome.values, new.values)
        np.testing.assert_array_equal(old.outcome.weights, new.weights)

    def test_default_variant_is_vector_global(self, pa_graph_small, small_trust):
        out = aggregate(
            pa_graph_small, small_trust, GossipConfig(xi=1e-5, rng=19), backend="dense"
        )
        assert out.values.shape == (pa_graph_small.num_nodes, pa_graph_small.num_nodes)

    def test_vector_gclr_variant_matches_entry_point(self, pa_graph_small, small_trust):
        targets = [1, 4, 7]
        old = aggregate_vector_gclr(
            pa_graph_small, small_trust, targets=targets, xi=1e-6, rng=23, backend="dense"
        )
        new = aggregate(
            pa_graph_small,
            small_trust,
            GossipConfig(xi=1e-6, rng=23),
            backend="dense",
            variant="vector-gclr",
            targets=targets,
        )
        np.testing.assert_array_equal(old.outcome.values, new.values)
        np.testing.assert_array_equal(old.outcome.extras["count"], new.extras["count"])

    def test_single_variants_match_entry_points(self, pa_graph_small, small_trust):
        old = aggregate_single_global(pa_graph_small, small_trust, 5, xi=1e-6, rng=29)
        new = aggregate(
            pa_graph_small,
            small_trust,
            GossipConfig(xi=1e-6, rng=29),
            backend="dense",
            variant="single-global",
            target=5,
        )
        np.testing.assert_array_equal(old.outcome.values, new.values)
        old_gclr = aggregate_single_gclr(pa_graph_small, small_trust, 5, xi=1e-6, rng=31)
        new_gclr = aggregate(
            pa_graph_small,
            small_trust,
            GossipConfig(xi=1e-6, rng=31),
            backend="dense",
            variant="single-gclr",
            target=5,
        )
        np.testing.assert_array_equal(old_gclr.outcome.values, new_gclr.values)

    def test_variant_validation(self, pa_graph_small, small_trust, fixture_values):
        with pytest.raises(ValueError, match="variant"):
            aggregate(pa_graph_small, small_trust, variant="bogus")
        with pytest.raises(ValueError, match="target"):
            aggregate(pa_graph_small, small_trust, variant="single-global")
        with pytest.raises(ValueError, match="TrustMatrix"):
            aggregate(example_network(), fixture_values, variant="vector-global")
        with pytest.raises(ValueError, match="mean"):
            aggregate(pa_graph_small, small_trust, variant="mean")
        with pytest.raises(ValueError, match="extras"):
            aggregate(
                pa_graph_small,
                small_trust,
                variant="vector-gclr",
                targets=[0],
                extras={"x": np.ones(pa_graph_small.num_nodes)},
            )

    def test_size_mismatch_rejected(self, fixture_values):
        with pytest.raises(ValueError, match="row per node"):
            aggregate(example_network(), fixture_values[:5])

    def test_duplicate_targets_rejected(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="distinct"):
            aggregate(pa_graph_small, small_trust, variant="vector-global", targets=[1, 1])
        with pytest.raises(ValueError, match="outside"):
            aggregate(pa_graph_small, small_trust, variant="vector-gclr", targets=[999])

    def test_isolated_designated_node_rejected(self, small_trust):
        # Node 59 isolated in a 60-node graph matching the trust matrix.
        lonely = Graph(60, [(i, i + 1) for i in range(58)])
        with pytest.raises(ValueError, match="isolated"):
            aggregate(
                lonely, small_trust, variant="vector-gclr", targets=[0], designated_node=59
            )


class TestVariantEntryPointsOnOtherBackends:
    """The old names now accept any registered backend."""

    def test_vector_gclr_on_sparse(self, pa_graph_small, small_trust):
        result = aggregate_vector_gclr(
            pa_graph_small, small_trust, targets=[0, 3, 9], xi=1e-6, rng=7, backend="sparse"
        )
        assert result.max_absolute_error < 0.01

    def test_single_global_engine_alias_still_works(self, pa_graph_small, small_trust):
        result = aggregate_single_global(
            pa_graph_small, small_trust, 2, xi=1e-6, rng=7, engine="vector"
        )
        assert result.max_relative_error < 0.01

    def test_single_global_on_sparse_backend(self, pa_graph_small, small_trust):
        result = aggregate_single_global(
            pa_graph_small, small_trust, 2, xi=1e-6, rng=7, backend="sparse"
        )
        assert result.max_relative_error < 0.01


class TestConfigAwareLayers:
    """Layers that consume the whole GossipConfig, not just engine knobs."""

    def test_collusion_impact_honours_push_rule(self, pa_graph_small, small_trust):
        from repro.attacks.collusion import group_colluders, select_colluders
        from repro.attacks.evaluate import collusion_impact

        attack = group_colluders(select_colluders(60, 0.2, rng=1), 3)
        differential = collusion_impact(
            pa_graph_small, small_trust, attack,
            targets=[0, 5, 9], config=GossipConfig(xi=1e-5, rng=4),
        )
        normal_push = collusion_impact(
            pa_graph_small, small_trust, attack,
            targets=[0, 5, 9], config=GossipConfig(xi=1e-5, rng=4, k=1),
        )
        # k=1 must actually flow through: fewer pushes per step.
        assert normal_push.clean_outcome.push_messages != differential.clean_outcome.push_messages
        # Both estimate the same fixpoint, so impacts stay comparable.
        assert normal_push.rms_gclr == pytest.approx(differential.rms_gclr, abs=0.05)

    def test_collusion_impact_churn_noise_cancels(self, pa_graph_small, small_trust):
        from repro.attacks.collusion import group_colluders, select_colluders
        from repro.attacks.evaluate import collusion_impact
        from repro.network.churn import PacketLossModel

        attack = group_colluders(select_colluders(60, 0.2, rng=2), 3)
        impact = collusion_impact(
            pa_graph_small, small_trust, attack,
            targets=[0, 5, 9],
            config=GossipConfig(xi=1e-5, rng=4, loss_probability=0.2),
        )
        assert np.isfinite(impact.rms_gclr)
        with pytest.raises(ValueError, match="loss_probability"):
            collusion_impact(
                pa_graph_small, small_trust, attack,
                config=GossipConfig(xi=1e-5, rng=4, loss_model=PacketLossModel(0.2, rng=0)),
            )

    def test_round_manager_reads_config_defaults(self, pa_graph_small, small_trust):
        from repro.core.rounds import GossipRoundManager
        from repro.core.weights import WeightParams

        params = WeightParams(a=3.0, b=0.6)
        manager = GossipRoundManager(
            pa_graph_small,
            config=GossipConfig(xi=1e-4, rng=5, params=params, delta=0.2),
        )
        assert manager._delta == 0.2
        assert manager._params is params
        assert manager._xi == 1e-4
        record = manager.run_round(small_trust, targets=[0, 1])
        assert record.total_opinions > 0


class TestCsrRoundTripWithIsolatedNodes:
    """Graph.to_scipy_csr / from_csr keep isolated nodes intact."""

    @pytest.fixture
    def graph_with_isolates(self):
        # Nodes 3 and 5 are isolated (degree 0).
        return Graph(6, [(0, 1), (1, 2), (0, 2), (2, 4)])

    def test_scipy_round_trip(self, graph_with_isolates):
        rebuilt = Graph.from_scipy_sparse(graph_with_isolates.to_scipy_csr())
        assert rebuilt == graph_with_isolates
        assert rebuilt.degree(3) == 0 and rebuilt.degree(5) == 0

    def test_raw_csr_round_trip(self, graph_with_isolates):
        rebuilt = Graph.from_csr(
            graph_with_isolates.num_nodes,
            graph_with_isolates.indptr,
            graph_with_isolates.indices,
        )
        assert rebuilt == graph_with_isolates
        np.testing.assert_array_equal(rebuilt.degrees, graph_with_isolates.degrees)

    def test_gossip_skips_isolates_on_all_backends(self, graph_with_isolates):
        values = np.arange(6, dtype=np.float64)
        for backend in ("message", "dense", "sparse", "sharded"):
            out = run_backend(
                graph_with_isolates,
                values,
                np.ones(6),
                config=GossipConfig(xi=1e-8, rng=3),
                backend=backend,
            )
            connected = [0, 1, 2, 4]
            expected = values[connected].mean()
            assert np.allclose(out.estimates.reshape(-1)[connected], expected, atol=1e-5)
            # Isolated nodes keep their own value (they never gossip).
            assert out.estimates.reshape(-1)[3] == pytest.approx(3.0)
            assert out.estimates.reshape(-1)[5] == pytest.approx(5.0)


class TestNetworkAxis:
    """The ``network=`` axis: validation, capability errors, byte-identity."""

    def test_network_must_be_a_link_model(self):
        with pytest.raises(ValueError, match="LinkModel"):
            GossipConfig(network=0.3)

    def test_network_excludes_legacy_loss_knobs(self, fixture_values):
        from repro.network.conditions import InstantLink, PacketLossModel

        with pytest.raises(ValueError, match="not both"):
            GossipConfig(network=InstantLink(0.1), loss_probability=0.2)
        with pytest.raises(ValueError, match="not both"):
            GossipConfig(network=InstantLink(0.1), loss_model=PacketLossModel(0.2, rng=0))

    @pytest.mark.parametrize("backend", ["message", "dense", "sparse", "sharded"])
    def test_sync_backends_reject_latency_models(self, fixture_values, backend):
        from repro.network.conditions import HomogeneousLink, LatencySpec

        config = GossipConfig(
            rng=1, network=HomogeneousLink(latency=LatencySpec("exponential", 0.5))
        )
        with pytest.raises(BackendCapabilityError, match="step-synchronous"):
            run_backend(
                example_network(), fixture_values, np.ones(10),
                config=config, backend=backend,
            )

    def test_sync_backends_reject_per_edge_loss(self, fixture_values):
        from repro.network.conditions import RegionalLinkModel

        config = GossipConfig(
            rng=1, network=RegionalLinkModel(2, intra_loss=0.0, inter_loss=0.3)
        )
        with pytest.raises(BackendCapabilityError, match="per-edge"):
            run_backend(
                example_network(), fixture_values, np.ones(10),
                config=config, backend="dense",
            )

    @pytest.mark.parametrize("backend", ["dense", "sparse", "sharded"])
    def test_loss_only_network_byte_identical_to_loss_probability(
        self, fixture_values, backend
    ):
        from repro.network.conditions import InstantLink

        legacy = run_backend(
            example_network(), fixture_values, np.ones(10),
            config=GossipConfig(xi=1e-8, rng=11, loss_probability=0.3),
            backend=backend,
        )
        linked = run_backend(
            example_network(), fixture_values, np.ones(10),
            config=GossipConfig(xi=1e-8, rng=11, network=InstantLink(0.3)),
            backend=backend,
        )
        assert linked.steps == legacy.steps
        assert np.array_equal(linked.values, legacy.values)
        assert np.array_equal(linked.weights, legacy.weights)

    def test_uniform_regional_loss_resolves_on_sync_backends(self, fixture_values):
        from repro.network.conditions import RegionalLinkModel

        out = run_backend(
            example_network(), fixture_values, np.ones(10),
            config=GossipConfig(
                xi=1e-8, rng=2,
                network=RegionalLinkModel(2, intra_loss=0.2, inter_loss=0.2),
            ),
            backend="dense",
        )
        assert np.allclose(out.estimates, TRUE_MEAN, atol=1e-4)

    def test_auto_steers_latency_models_to_async(self):
        from repro.network.conditions import HomogeneousLink, InstantLink, LatencySpec

        latency = GossipConfig(
            network=HomogeneousLink(latency=LatencySpec("exponential", 0.5))
        )
        assert choose_backend_name(example_network(), latency) == "async"
        # Loss-only models keep the ordinary size-based policy.
        loss_only = GossipConfig(network=InstantLink(0.3))
        assert choose_backend_name(example_network(), loss_only) == "message"

    def test_async_runs_latency_network_end_to_end(self, fixture_values):
        from repro.network.conditions import HomogeneousLink, LatencySpec

        out = run_backend(
            example_network(), fixture_values, np.ones(10),
            config=GossipConfig(
                xi=1e-5, rng=4,
                network=HomogeneousLink(0.05, latency=LatencySpec("exponential", 0.2)),
            ),
            backend="auto",
        )
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-9)
        assert np.allclose(out.estimates, TRUE_MEAN, atol=5e-2)

    def test_async_loss_probability_matches_instant_link(self, fixture_values):
        from repro.network.conditions import InstantLink

        legacy = run_backend(
            example_network(), fixture_values, np.ones(10),
            config=GossipConfig(xi=1e-5, rng=6, loss_probability=0.2),
            backend="async",
        )
        linked = run_backend(
            example_network(), fixture_values, np.ones(10),
            config=GossipConfig(xi=1e-5, rng=6, network=InstantLink(0.2)),
            backend="async",
        )
        assert np.array_equal(linked.values, legacy.values)
        assert np.array_equal(linked.weights, legacy.weights)
