"""Diff small experiment runs against the committed golden fixtures.

A failure here means the numerics of an experiment pipeline moved. If
the change is intentional, regenerate and commit the fixtures so the
diff is visible at review time::

    PYTHONPATH=src python -m tests.regen_golden
"""

import json
import math

import pytest

from tests.regen_golden import GOLDEN_SPECS, golden_path, golden_payload

REGEN_HINT = (
    "golden fixture drift — if this numeric change is intentional, run "
    "`PYTHONPATH=src python -m tests.regen_golden` and commit the updated fixtures"
)


def load_fixture(experiment_id):
    path = golden_path(experiment_id)
    if not path.exists():
        pytest.fail(f"missing golden fixture {path}; run `PYTHONPATH=src python -m tests.regen_golden`")
    with path.open() as handle:
        return json.load(handle)


def assert_cell_equal(actual, expected, *, where):
    if isinstance(expected, float) or isinstance(actual, float):
        assert math.isclose(float(actual), float(expected), rel_tol=1e-9, abs_tol=1e-12), (
            f"{where}: {actual!r} != golden {expected!r}; {REGEN_HINT}"
        )
    else:
        assert actual == expected, f"{where}: {actual!r} != golden {expected!r}; {REGEN_HINT}"


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_SPECS))
def test_experiment_matches_golden_fixture(experiment_id):
    fixture = load_fixture(experiment_id)
    fresh = golden_payload(experiment_id)

    assert fresh["spec"] == fixture["spec"], (
        f"{experiment_id}: the pinned spec changed; {REGEN_HINT}"
    )
    assert fresh["headers"] == fixture["headers"], (
        f"{experiment_id}: table headers changed; {REGEN_HINT}"
    )
    assert len(fresh["rows"]) == len(fixture["rows"]), (
        f"{experiment_id}: row count changed; {REGEN_HINT}"
    )
    for row_index, (actual_row, expected_row) in enumerate(zip(fresh["rows"], fixture["rows"])):
        assert len(actual_row) == len(expected_row), (
            f"{experiment_id} row {row_index}: cell count changed; {REGEN_HINT}"
        )
        for col, (actual, expected) in enumerate(zip(actual_row, expected_row)):
            header = fixture["headers"][col] if col < len(fixture["headers"]) else col
            assert_cell_equal(
                actual, expected, where=f"{experiment_id} row {row_index} [{header}]"
            )
