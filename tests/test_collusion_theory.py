"""Unit tests for the collusion closed forms (eqs. 8-17)."""

import pytest

from repro.analysis.collusion_theory import (
    breakeven_excess_weight,
    damping_ratio,
    expected_error_unweighted,
    expected_error_weighted,
    worst_case_inflation,
)


class TestUnweightedError:
    def test_eq12_components(self):
        # dR_old = -GC/N^2 + sum_C t / N
        value = expected_error_unweighted(100, 20, 5, colluder_trust_sum=3.0)
        assert value == pytest.approx(-(5 * 20) / 100**2 + 3.0 / 100)

    def test_pure_inflation_when_no_withheld_trust(self):
        value = expected_error_unweighted(100, 20, 5, colluder_trust_sum=0.0)
        assert value == pytest.approx(-worst_case_inflation(100, 20, 5))

    def test_grows_with_group_size(self):
        small = expected_error_unweighted(100, 20, 2, 0.0)
        large = expected_error_unweighted(100, 20, 10, 0.0)
        assert abs(large) > abs(small)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_error_unweighted(0, 0, 1, 0.0)
        with pytest.raises(ValueError):
            expected_error_unweighted(10, 20, 1, 0.0)  # C > N
        with pytest.raises(ValueError):
            expected_error_unweighted(10, 5, 0, 0.0)  # G < 1


class TestDamping:
    def test_eq17_ratio(self):
        assert damping_ratio(100, 100.0) == pytest.approx(0.5)

    def test_no_excess_no_damping(self):
        assert damping_ratio(50, 0.0) == 1.0

    def test_weighted_is_damped_unweighted(self):
        old = expected_error_unweighted(200, 60, 5, 10.0)
        new = expected_error_weighted(200, 60, 5, 10.0, total_excess_weight=100.0)
        assert new == pytest.approx(damping_ratio(200, 100.0) * old)

    def test_validation(self):
        with pytest.raises(ValueError):
            damping_ratio(0, 1.0)
        with pytest.raises(ValueError):
            damping_ratio(10, -5.0)


class TestBreakeven:
    def test_halving_requires_n_excess(self):
        # damping = 0.5 <=> excess = N.
        assert breakeven_excess_weight(100, 0.5) == pytest.approx(100.0)

    def test_roundtrip(self):
        n, reduction = 300, 0.25
        excess = breakeven_excess_weight(n, reduction)
        assert damping_ratio(n, excess) == pytest.approx(1.0 - reduction)

    def test_validation(self):
        with pytest.raises(ValueError):
            breakeven_excess_weight(100, 0.0)
        with pytest.raises(ValueError):
            breakeven_excess_weight(100, 1.0)
        with pytest.raises(ValueError):
            breakeven_excess_weight(0, 0.5)
