"""Property-based cross-backend invariants (hypothesis).

The backend registry promises that every engine executes the same
update rule: identical configs must converge to identical fixpoints on
*any* topology, not just the fixtures the example-based suite pins.
This suite drives randomly grown graphs and randomly drawn
:class:`~repro.core.backend.GossipConfig` knobs through every capable
backend and asserts three invariants:

- **agreement**: all synchronous backends land within 1e-8 of one
  another (and of the analytic fixpoint);
- **mass conservation**: the global sums of gossip value and weight
  are exact invariants of every step, even under packet loss (the
  self-push repair of Section 5.3);
- **permutation equivariance**: relabelling the nodes relabels the
  outputs — nothing in any engine may depend on node identity.

Failures shrink: hypothesis minimises the graph size, seed and config
towards the smallest world that still violates the invariant (run
``pytest tests/test_properties_backends.py`` and read the "Falsifying
example" block).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backend import GossipConfig, available_backends, run_backend
from repro.core.differential import push_counts
from repro.network.graph import Graph
from repro.network.preferential_attachment import preferential_attachment_graph

pytestmark = pytest.mark.property

#: Synchronous backends every draw is run through ("async" gossips on
#: exponential clocks with its own stop rule, so it is compared against
#: the fixpoint separately rather than trajectory-for-trajectory).
#: "sharded" runs inline (workers=1) at these sizes — the identical
#: shard schedule the multi-process path executes, byte for byte.
SYNC_BACKENDS = ("message", "dense", "sparse", "sharded")

SUITE = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# One random world: (nodes, attachment m, graph seed, value seed).
world = st.tuples(
    st.integers(min_value=8, max_value=24),
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=2**31 - 1),
)

# Random shared config knobs: uniform k (or None = differential rule)
# and the engine seed.
config_knobs = st.tuples(
    st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    st.integers(min_value=0, max_value=2**31 - 1),
)


def build_world(params):
    n, m, graph_seed, value_seed = params
    graph = preferential_attachment_graph(n, m=m, rng=graph_seed)
    values = np.random.default_rng(value_seed).random(n)
    return graph, values


class TestCrossBackendAgreement:
    def test_all_builtin_backends_registered(self):
        assert set(SYNC_BACKENDS) <= set(available_backends())

    @SUITE
    @given(params=world, knobs=config_knobs)
    def test_sync_backends_agree_to_1e8(self, params, knobs):
        """Any graph × any config: every backend hits the same fixpoint.

        The 1e-8 bar is the differential rule's (``k=None``): its
        degree-scaled push counts keep every node fed, so the xi-movement
        stop tracks true convergence. A *fixed* ``k`` (the normal-push
        ablation knob) reintroduces reception starvation — a node that
        receives nothing for ``patience`` steps sees zero movement and
        stops while mixing is still finishing (hypothesis found a k=1
        world where one dense-engine node ended ~2e-7 off) — so the
        uniform-k cases are held to a correspondingly realistic 1e-6.
        """
        graph, values = build_world(params)
        k, seed = knobs
        atol = 1e-8 if k is None else 1e-6
        truth = float(values.mean())
        estimates = {}
        for name in SYNC_BACKENDS:
            config = GossipConfig(xi=1e-10, k=k, rng=seed)
            out = run_backend(graph, values, np.ones_like(values), config=config, backend=name)
            estimate = out.estimates.reshape(-1)
            np.testing.assert_allclose(
                estimate, truth, atol=atol, err_msg=f"{name} missed the fixpoint"
            )
            estimates[name] = estimate
        for name in SYNC_BACKENDS[1:]:
            np.testing.assert_allclose(
                estimates[name],
                estimates[SYNC_BACKENDS[0]],
                atol=atol,
                err_msg=f"{name} disagrees with {SYNC_BACKENDS[0]}",
            )

    @SUITE
    @given(params=world, seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_async_backend_hits_the_same_fixpoint(self, params, seed):
        graph, values = build_world(params)
        out = run_backend(
            graph,
            values,
            np.ones_like(values),
            config=GossipConfig(xi=1e-10, rng=seed),
            backend="async",
        )
        np.testing.assert_allclose(out.estimates.reshape(-1), values.mean(), atol=1e-8)


class TestMassConservation:
    @SUITE
    @given(
        params=world,
        knobs=config_knobs,
        loss=st.floats(min_value=0.0, max_value=0.6),
        backend=st.sampled_from(("dense", "sparse", "sharded")),
    )
    def test_totals_invariant_under_packet_loss(self, params, knobs, loss, backend):
        """Lost pushes self-redirect, so the global sums never move."""
        graph, values = build_world(params)
        k, seed = knobs
        weights = np.ones_like(values)
        config = GossipConfig(
            xi=1e-10, k=k, rng=seed, loss_probability=loss, max_steps=12, run_to_max=True
        )
        out = run_backend(graph, values, weights, config=config, backend=backend)
        np.testing.assert_allclose(out.values.sum(), values.sum(), rtol=1e-12)
        np.testing.assert_allclose(out.weights.sum(), weights.sum(), rtol=1e-12)

    @SUITE
    @given(params=world, loss=st.floats(min_value=0.0, max_value=0.5))
    def test_message_engine_conserves_mass_to_convergence(self, params, loss):
        graph, values = build_world(params)
        config = GossipConfig(xi=1e-6, rng=3, loss_probability=loss)
        out = run_backend(graph, values, np.ones_like(values), config=config, backend="message")
        np.testing.assert_allclose(out.values.sum(), values.sum(), rtol=1e-12)
        np.testing.assert_allclose(out.weights.sum(), float(len(values)), rtol=1e-12)


def permute_world(graph: Graph, values: np.ndarray, perm: np.ndarray):
    """Relabel node ``i`` as ``perm[i]`` in both topology and state."""
    edges = [(int(perm[u]), int(perm[v])) for u, v in graph.edges()]
    permuted_values = np.empty_like(values)
    permuted_values[perm] = values
    return Graph(graph.num_nodes, edges), permuted_values


class TestPermutationEquivariance:
    @SUITE
    @given(
        params=world,
        perm_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_push_counts_are_equivariant(self, params, perm_seed):
        """The differential rule k_i sees structure, not node ids — exactly."""
        graph, _ = build_world(params)
        perm = np.random.default_rng(perm_seed).permutation(graph.num_nodes)
        permuted_graph, _ = permute_world(graph, np.zeros(graph.num_nodes), perm)
        k = push_counts(graph)
        k_permuted = push_counts(permuted_graph)
        assert np.array_equal(k_permuted[perm], k)
        assert np.array_equal(
            permuted_graph.average_neighbor_degrees[perm], graph.average_neighbor_degrees
        )

    @SUITE
    @given(
        params=world,
        perm_seed=st.integers(min_value=0, max_value=2**31 - 1),
        backend=st.sampled_from(SYNC_BACKENDS),
    )
    def test_converged_estimates_are_equivariant(self, params, perm_seed, backend):
        """Relabelled world converges to the relabelled reputations."""
        graph, values = build_world(params)
        perm = np.random.default_rng(perm_seed).permutation(graph.num_nodes)
        permuted_graph, permuted_values = permute_world(graph, values, perm)
        config = GossipConfig(xi=1e-10, rng=11)
        out = run_backend(
            graph, values, np.ones_like(values), config=config, backend=backend
        )
        out_permuted = run_backend(
            permuted_graph,
            permuted_values,
            np.ones_like(values),
            config=config,
            backend=backend,
        )
        np.testing.assert_allclose(
            out_permuted.estimates.reshape(-1)[perm],
            out.estimates.reshape(-1),
            atol=1e-8,
        )
