"""Tests for the parallel sweep runner and its seeding discipline.

The contract under test: fanning a sweep out over worker processes
changes wall-clock behaviour only — results are byte-identical to a
serial run with the same master seed.
"""

import numpy as np
import pytest

from repro.experiments.__main__ import main
from repro.experiments.parallel import (
    default_processes,
    iter_experiments,
    run_experiments,
    run_sweep,
)
from repro.utils.rng import spawn_seed_sequences


def _draw(point, seed):
    """Module-level worker (pool workers are pickled by qualified name)."""
    rng = np.random.default_rng(seed)
    return point, rng.random(4)


def _scale(point, seed):
    return point * 3


def _explode_on_two(point, seed):
    if point == 2:
        raise RuntimeError(f"worker failed on point {point}")
    return point


class TestSpawnSeedSequences:
    def test_deterministic_by_index(self):
        a = spawn_seed_sequences(123, 5)
        b = spawn_seed_sequences(123, 5)
        for left, right in zip(a, b):
            assert left.generate_state(2).tolist() == right.generate_state(2).tolist()

    def test_children_are_independent(self):
        children = spawn_seed_sequences(0, 3)
        states = {tuple(child.generate_state(2).tolist()) for child in children}
        assert len(states) == 3

    def test_count_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            spawn_seed_sequences(0, -1)
        assert spawn_seed_sequences(0, 0) == []

    def test_rejects_generator(self):
        with pytest.raises(TypeError, match="Generator"):
            spawn_seed_sequences(np.random.default_rng(0), 2)

    def test_does_not_mutate_seed_sequence_root(self):
        # .spawn() would advance the root's spawn counter; reusing the
        # same root must keep yielding the same children.
        root = np.random.SeedSequence(7)
        first = spawn_seed_sequences(root, 2)
        second = spawn_seed_sequences(root, 2)
        for left, right in zip(first, second):
            assert left.generate_state(2).tolist() == right.generate_state(2).tolist()
        assert root.n_children_spawned == 0
        # And the children match a fresh spawn from the same seed.
        fresh = np.random.SeedSequence(7).spawn(2)
        for child, expected in zip(first, fresh):
            assert child.generate_state(2).tolist() == expected.generate_state(2).tolist()

    def test_propagates_root_pool_size(self):
        root = np.random.SeedSequence(7, pool_size=8)
        child = spawn_seed_sequences(root, 1)[0]
        expected = np.random.SeedSequence(7, pool_size=8).spawn(1)[0]
        assert child.pool_size == 8
        assert child.generate_state(2).tolist() == expected.generate_state(2).tolist()


class TestRunSweep:
    def test_preserves_point_order(self):
        assert run_sweep(_scale, [3, 1, 2], master_seed=0) == [9, 3, 6]

    def test_serial_and_parallel_byte_identical(self):
        points = list(range(6))
        serial = run_sweep(_draw, points, master_seed=99, processes=1)
        parallel = run_sweep(_draw, points, master_seed=99, processes=2)
        assert len(serial) == len(parallel) == 6
        for (sp, sv), (pp, pv) in zip(serial, parallel):
            assert sp == pp
            assert sv.tobytes() == pv.tobytes()  # bit-for-bit, not just close

    def test_master_seed_changes_streams(self):
        a = run_sweep(_draw, [0], master_seed=1)
        b = run_sweep(_draw, [0], master_seed=2)
        assert a[0][1].tobytes() != b[0][1].tobytes()

    def test_process_count_validation(self):
        with pytest.raises(ValueError, match="processes"):
            run_sweep(_scale, [1], processes=0)
        assert default_processes() >= 1

    def test_empty_sweep(self):
        assert run_sweep(_scale, [], master_seed=0, processes=4) == []

    def test_worker_exception_propagates_from_pool(self):
        with pytest.raises(RuntimeError, match="point 2"):
            run_sweep(_explode_on_two, [1, 2, 3, 4], master_seed=0, processes=2)


class TestRunExperiments:
    def test_serial_and_parallel_identical(self):
        ids = ["table1", "table2"]
        serial = run_experiments(ids, processes=1, seed=5)
        parallel = run_experiments(ids, processes=2, seed=5)
        assert [r.experiment_id for r in serial] == [r.experiment_id for r in parallel]
        for left, right in zip(serial, parallel):
            assert left.headers == right.headers
            assert left.rows == right.rows

    def test_unknown_id_fails_fast(self):
        with pytest.raises(KeyError, match="bogus"):
            run_experiments(["table1", "bogus"], processes=2)

    def test_iter_experiments_streams_before_failure(self, monkeypatch):
        # Completed results must reach the consumer before a later
        # experiment's exception surfaces (long --full sweeps).
        from repro.experiments import registry

        def boom(**kwargs):
            raise RuntimeError("sweep exploded")

        monkeypatch.setitem(registry.EXPERIMENTS, "boom", boom)
        stream = iter_experiments(["table1", "boom"], processes=1)
        first = next(stream)
        assert first.experiment_id == "table1"
        with pytest.raises(RuntimeError, match="sweep exploded"):
            next(stream)


class TestCliParallel:
    def test_parallel_flag_runs_experiments(self, capsys):
        assert main(["table1", "--parallel", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_parallel_matches_serial_output(self, capsys):
        def table_lines(text):
            # Drop wall-clock lines: "elapsed: 0.02s" varies run to run.
            return [line for line in text.splitlines() if "elapsed:" not in line]

        assert main(["table1", "--seed", "3"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["table1", "--seed", "3", "--parallel", "2"]) == 0
        assert table_lines(capsys.readouterr().out) == table_lines(serial_out)

    def test_rejects_negative_parallel(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--parallel", "-2"])
