"""Unit tests for the PA generator — the paper's only evaluation topology."""

import numpy as np
import pytest

from repro.network.degree_sequence import estimate_power_law_exponent
from repro.network.preferential_attachment import (
    degree_proportional_sample,
    expected_num_edges,
    preferential_attachment_graph,
)


class TestGeneration:
    def test_edge_count_matches_formula(self):
        for n, m in [(10, 2), (50, 3), (200, 2)]:
            g = preferential_attachment_graph(n, m=m, rng=0)
            assert g.num_edges == expected_num_edges(n, m)

    def test_always_connected(self):
        for seed in range(5):
            g = preferential_attachment_graph(100, m=2, rng=seed)
            assert g.is_connected()

    def test_min_degree_is_m(self):
        g = preferential_attachment_graph(200, m=3, rng=1)
        assert int(g.degrees.min()) >= 3

    def test_reproducible_from_seed(self):
        a = preferential_attachment_graph(80, m=2, rng=42)
        b = preferential_attachment_graph(80, m=2, rng=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = preferential_attachment_graph(80, m=2, rng=1)
        b = preferential_attachment_graph(80, m=2, rng=2)
        assert a != b

    def test_m1_gives_tree_plus_seed(self):
        g = preferential_attachment_graph(50, m=1, rng=3)
        # seed clique on 2 nodes is a single edge; each join adds one edge.
        assert g.num_edges == 49
        assert g.is_connected()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(5, m=0)
        with pytest.raises(ValueError):
            preferential_attachment_graph(2, m=2)

    def test_simple_graph_no_duplicates(self):
        # Graph constructor would raise on duplicates; surviving construction
        # plus the degree identity is the witness.
        g = preferential_attachment_graph(300, m=4, rng=9)
        assert int(g.degrees.sum()) == 2 * g.num_edges


class TestPowerLawShape:
    def test_heavy_tail_exists(self):
        g = preferential_attachment_graph(2000, m=2, rng=7)
        # A power-law graph must have hubs far above the mean degree (4).
        assert int(g.degrees.max()) > 25

    def test_exponent_in_plausible_band(self):
        g = preferential_attachment_graph(5000, m=2, rng=11)
        alpha = estimate_power_law_exponent(g.degrees, d_min=4)
        # PA's asymptotic exponent is 3; finite-size MLE lands nearby.
        assert 2.0 < alpha < 4.0

    def test_most_nodes_low_degree(self):
        g = preferential_attachment_graph(2000, m=2, rng=13)
        frac_low = float(np.mean(g.degrees <= 4))
        assert frac_low > 0.5


class TestDegreeProportionalSample:
    def test_prefers_hubs(self):
        g = preferential_attachment_graph(500, m=2, rng=17)
        sample = degree_proportional_sample(g, 4000, rng=18)
        hub = int(np.argmax(g.degrees))
        hub_rate = float(np.mean(sample == hub))
        uniform_rate = 1.0 / g.num_nodes
        assert hub_rate > 3 * uniform_rate

    def test_size_zero(self, pa_graph_small):
        assert degree_proportional_sample(pa_graph_small, 0, rng=1).size == 0

    def test_rejects_negative_size(self, pa_graph_small):
        with pytest.raises(ValueError):
            degree_proportional_sample(pa_graph_small, -1)


class TestExpectedNumEdges:
    def test_formula(self):
        # seed K3 has 3 edges, then 7 joins x 2 edges.
        assert expected_num_edges(10, 2) == 3 + 14

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            expected_num_edges(2, 2)
