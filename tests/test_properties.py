"""Property-based tests (hypothesis) on the core invariants.

These randomise over topologies, initial states and parameters; each
property is something the paper's correctness rests on:

- push-sum mass conservation (Proposition A.1);
- ratio convergence to the global quotient;
- the differential rule's bounds (1 <= k_i <= deg_i);
- weighting-law guarantees (w >= 1, monotonicity);
- graphicality/realisation duality;
- metric identities (eq. 18 under scaling).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import average_rms_error
from repro.attacks.collusion import apply_collusion, group_colluders
from repro.core.differential import push_counts
from repro.core.state import UNDEFINED_RATIO, ratios
from repro.core.vector_engine import VectorGossipEngine
from repro.core.weights import WeightParams, collusion_damping_factor
from repro.network.churn import PacketLossModel
from repro.network.degree_sequence import havel_hakimi_graph, is_graphical
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.trust.matrix import TrustMatrix

# Heavier hypothesis suite: one full run per CI matrix (see pyproject markers).
pytestmark = pytest.mark.property

# Modest example counts: each example can run a full gossip round.
FAST = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
SLOW = settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])

graph_params = st.tuples(
    st.integers(min_value=8, max_value=60),  # nodes
    st.integers(min_value=2, max_value=4),  # m
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


class TestMassConservation:
    @SLOW
    @given(params=graph_params, loss=st.floats(min_value=0.0, max_value=0.9))
    def test_push_sum_mass_invariant(self, params, loss):
        n, m, seed = params
        if n <= m:
            n = m + 2
        graph = preferential_attachment_graph(n, m=m, rng=seed)
        values = np.random.default_rng(seed).random(n)
        loss_model = PacketLossModel(loss, rng=seed + 1)
        engine = VectorGossipEngine(graph, loss_model=loss_model, rng=seed + 2)
        out = engine.run(values, np.ones(n), xi=1e-3, max_steps=2000)
        assert abs(float(out.values.sum()) - float(values.sum())) < 1e-8 * max(1, n)
        assert abs(float(out.weights.sum()) - n) < 1e-8 * n

    @SLOW
    @given(params=graph_params)
    def test_estimates_converge_to_global_quotient(self, params):
        n, m, seed = params
        if n <= m:
            n = m + 2
        graph = preferential_attachment_graph(n, m=m, rng=seed)
        values = np.random.default_rng(seed).random(n)
        engine = VectorGossipEngine(graph, rng=seed + 1)
        out = engine.run(values, np.ones(n), xi=1e-8, max_steps=5000)
        assert np.allclose(out.estimates, values.mean(), atol=1e-3)


class TestDifferentialRule:
    @FAST
    @given(params=graph_params)
    def test_push_counts_bounds(self, params):
        n, m, seed = params
        if n <= m:
            n = m + 2
        graph = preferential_attachment_graph(n, m=m, rng=seed)
        counts = push_counts(graph)
        assert np.all(counts >= 1)
        assert np.all(counts <= graph.degrees)

    @FAST
    @given(params=graph_params)
    def test_mean_k_stays_small(self, params):
        # The paper's message-overhead claim rests on mean k ~ 1.1-1.2.
        n, m, seed = params
        if n <= m:
            n = m + 2
        graph = preferential_attachment_graph(n, m=m, rng=seed)
        assert float(push_counts(graph).mean()) < 2.5


class TestWeightLaw:
    @FAST
    @given(
        a=st.floats(min_value=1.0, max_value=50.0),
        b=st.floats(min_value=0.0, max_value=5.0),
        t1=st.floats(min_value=0.0, max_value=1.0),
        t2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_weight_at_least_one_and_monotone(self, a, b, t1, t2):
        params = WeightParams(a=a, b=b)
        w1, w2 = params.weight(t1), params.weight(t2)
        assert w1 >= 1.0 and w2 >= 1.0
        if t1 <= t2:
            assert w1 <= w2 * (1 + 1e-12)

    @FAST
    @given(
        n=st.integers(min_value=1, max_value=10_000),
        excess=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_damping_factor_in_unit_interval(self, n, excess):
        factor = collusion_damping_factor(n, excess)
        assert 0.0 < factor <= 1.0


class TestGraphicality:
    @FAST
    @given(
        degrees=st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=12)
    )
    def test_havel_hakimi_realises_iff_graphical(self, degrees):
        if is_graphical(degrees):
            graph = havel_hakimi_graph(degrees)
            assert sorted(map(int, graph.degrees)) == sorted(degrees)
        else:
            try:
                havel_hakimi_graph(degrees)
            except ValueError:
                pass
            else:  # pragma: no cover - would be a real bug
                raise AssertionError("non-graphical sequence was realised")

    @FAST
    @given(params=graph_params)
    def test_generated_degree_sequences_are_graphical(self, params):
        n, m, seed = params
        if n <= m:
            n = m + 2
        graph = preferential_attachment_graph(n, m=m, rng=seed)
        assert is_graphical(list(map(int, graph.degrees)))


class TestRatios:
    @FAST
    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=20
        )
    )
    def test_ratio_sentinel_only_on_zero_weight(self, values):
        arr = np.asarray(values)
        weights = np.where(np.abs(arr) > 0.5, arr, 0.0)
        out = ratios(arr, weights)
        for value, weight, ratio in zip(arr, weights, out):
            if weight == 0.0:
                assert ratio == UNDEFINED_RATIO
            else:
                assert ratio == value / weight


class TestMetricIdentities:
    @FAST
    @given(
        scale=st.floats(min_value=0.1, max_value=10.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_rms_scale_invariance(self, scale, seed):
        # eq. 18 uses relative errors: scaling both matrices changes nothing.
        rng = np.random.default_rng(seed)
        observed = rng.random((5, 6)) + 0.1
        reference = rng.random((5, 6))
        base = average_rms_error(observed, reference)
        scaled = average_rms_error(observed * scale, reference * scale)
        assert abs(base - scaled) < 1e-9

    @FAST
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_rms_zero_iff_equal(self, seed):
        rng = np.random.default_rng(seed)
        observed = rng.random((4, 4)) + 0.1
        assert average_rms_error(observed, observed.copy()) == 0.0


class TestCollusionModel:
    @FAST
    @given(
        n=st.integers(min_value=6, max_value=30),
        group_size=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_poisoned_rows_follow_the_attack_spec(self, n, group_size, seed):
        rng = np.random.default_rng(seed)
        trust = TrustMatrix(n)
        for _ in range(n):
            observer, target = rng.integers(n, size=2)
            if observer != target:
                trust.set(int(observer), int(target), float(rng.random()))
        colluders = rng.choice(n, size=min(4, n // 2), replace=False)
        attack = group_colluders(np.sort(colluders), group_size)
        poisoned = apply_collusion(trust, attack)
        for colluder in attack.colluders:
            group = set(attack.group_of(colluder))
            for target in range(n):
                if target == colluder:
                    continue
                expected = 1.0 if target in group else 0.0
                assert poisoned.get(colluder, target) == expected
