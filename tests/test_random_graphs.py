"""Unit tests for the non-PA overlay generators (ablation controls)."""

import numpy as np
import pytest

from repro.core.differential import push_counts
from repro.network.random_graphs import erdos_renyi_graph, random_regular_graph


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        n, p = 200, 0.05
        g = erdos_renyi_graph(n, p, rng=1)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 4 * np.sqrt(expected)

    def test_p_zero_empty(self):
        assert erdos_renyi_graph(50, 0.0, rng=2).num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi_graph(20, 1.0, rng=3)
        assert g.num_edges == 20 * 19 // 2

    def test_deterministic(self):
        assert erdos_renyi_graph(60, 0.1, rng=7) == erdos_renyi_graph(60, 0.1, rng=7)

    def test_light_tail_vs_pa(self):
        from repro.network.preferential_attachment import preferential_attachment_graph

        n = 1000
        er = erdos_renyi_graph(n, 4.0 / n, rng=4)
        pa = preferential_attachment_graph(n, m=2, rng=4)
        # Same mean degree (~4) but PA's max degree dwarfs ER's.
        assert int(pa.degrees.max()) > 2 * int(er.degrees.max())

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0, 0.5)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)


class TestRandomRegular:
    def test_all_degrees_equal(self):
        g = random_regular_graph(60, 4, rng=5)
        assert set(map(int, g.degrees)) == {4}

    def test_differential_counts_collapse_to_one(self):
        # On a regular graph the differential rule IS normal push.
        g = random_regular_graph(80, 6, rng=6)
        assert np.all(push_counts(g) == 1)

    def test_deterministic(self):
        a = random_regular_graph(40, 4, rng=8)
        b = random_regular_graph(40, 4, rng=8)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            random_regular_graph(10, 0)
        with pytest.raises(ValueError):
            random_regular_graph(10, 10)
        with pytest.raises(ValueError):
            random_regular_graph(9, 3)  # odd stub count

    def test_gossip_converges_on_regular(self):
        from repro.core.vector_engine import VectorGossipEngine

        g = random_regular_graph(50, 4, rng=9)
        values = np.random.default_rng(0).random(50)
        out = VectorGossipEngine(g, rng=10).run(values, np.ones(50), xi=1e-7)
        assert np.allclose(out.estimates, values.mean(), atol=1e-3)
