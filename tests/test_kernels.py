"""Kernel registry, fused/unfused parity, and the float32 drift bound.

The fused kernels exist purely for speed: every observable quantity —
steps, state, message counts, convergence flags — must match the
historical unfused step byte-for-byte at float64 (the two paths draw
byte-identical targets from one shared :class:`PushPlan`). float32 is
allowed bounded drift: mass conserved to the dtype tolerance and the
fixpoint within 1e-4 of the float64 reference, property-tested across
every backend that implements it; float64-only backends must raise the
typed :class:`UnsupportedDtypeError`, never silently upcast.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels_mod
from repro import GossipConfig, aggregate
from repro.core.backend import run_backend
from repro.core.errors import UnsupportedDtypeError
from repro.core.kernels import (
    KernelSpec,
    KernelUnavailableError,
    available_kernels,
    registered_kernels,
    select_kernel,
)
from repro.core.kernels.numba_kernel import NUMBA_AVAILABLE
from repro.core.sparse_engine import SparseGossipEngine
from repro.core.state import mass_rtol_for
from repro.network.churn import PacketLossModel
from repro.network.preferential_attachment import (
    preferential_attachment_graph,
    preferential_attachment_graph_fast,
)


class TestRegistry:
    def test_auto_selects_best_available(self):
        spec = select_kernel()
        assert spec.name == ("numba" if NUMBA_AVAILABLE else "fused")
        assert spec.available
        assert select_kernel("auto").name == spec.name

    def test_fused_and_unfused_always_available(self):
        names = available_kernels()
        assert "fused" in names
        assert "unfused" in names

    def test_unknown_kernel_raises_typed_error(self):
        with pytest.raises(KernelUnavailableError, match="unknown push kernel"):
            select_kernel("simd")

    def test_unavailable_kernel_raises_typed_error(self, monkeypatch):
        spec = kernels_mod._REGISTRY["numba"]
        monkeypatch.setitem(
            kernels_mod._REGISTRY,
            "numba",
            KernelSpec(
                name="numba",
                description=spec.description,
                factory=spec.factory,
                is_available=lambda: False,
            ),
        )
        with pytest.raises(KernelUnavailableError, match="not available"):
            select_kernel("numba")

    def test_unfused_is_never_auto_selected(self, monkeypatch):
        # With every auto-eligible kernel unavailable, selection fails
        # loudly rather than falling back to the reference step.
        for name in ("numba", "fused"):
            spec = kernels_mod._REGISTRY[name]
            monkeypatch.setitem(
                kernels_mod._REGISTRY,
                name,
                KernelSpec(
                    name=name,
                    description=spec.description,
                    factory=spec.factory,
                    is_available=lambda: False,
                ),
            )
        with pytest.raises(KernelUnavailableError, match="no push kernel"):
            select_kernel()

    def test_registered_specs_describe_themselves(self):
        by_name = {spec.name: spec for spec in registered_kernels()}
        assert set(by_name) >= {"numba", "fused", "unfused"}
        assert all(spec.description for spec in by_name.values())

    def test_engine_reports_resolved_kernel(self, pa_graph_small):
        engine = SparseGossipEngine(pa_graph_small, rng=0)
        assert engine.kernel_name == select_kernel().name
        assert SparseGossipEngine(pa_graph_small, rng=0, kernel="unfused").kernel_name == (
            "unfused"
        )

    def test_engine_rejects_unavailable_kernel_at_construction(self, pa_graph_small):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed; no unavailable kernel to request")
        with pytest.raises(KernelUnavailableError):
            SparseGossipEngine(pa_graph_small, rng=0, kernel="numba")


class TestSamplingParity:
    """Fused and unfused paths draw byte-identical targets."""

    def test_full_active_matches_subset_sampling(self):
        graph = preferential_attachment_graph(400, m=3, rng=9)
        engine = SparseGossipEngine(graph, rng=0)
        plan = engine._plan
        all_active = np.ones(graph.num_nodes, dtype=bool)
        targets_out = np.empty(plan.max_pushes, dtype=np.int64)
        for seed in (0, 1, 2):
            s_fast, t_fast = plan.sample_full_active(
                np.random.default_rng(seed), targets_out
            )
            s_ref, t_ref = plan.sample_subset(np.random.default_rng(seed), all_active)
            np.testing.assert_array_equal(s_fast, s_ref)
            np.testing.assert_array_equal(t_fast, t_ref)


def _run(engine, values, weights, **kw):
    return engine.run(values, weights, **kw)


class TestKernelParity:
    """Fused float64 outcomes are byte-identical to the unfused reference."""

    KERNELS = ["fused"] + (["numba"] if NUMBA_AVAILABLE else [])

    def _graph(self):
        return preferential_attachment_graph_fast(3000, 4, rng=11)

    def _compare(self, kernel, make_kwargs, run_kwargs):
        graph = self._graph()
        n = graph.num_nodes
        values = np.random.default_rng(5).random(n)
        weights = np.ones(n)
        outs = []
        for name in ("unfused", kernel):
            engine = SparseGossipEngine(graph, rng=77, kernel=name, **make_kwargs())
            outs.append(engine.run(values, weights, **run_kwargs()))
        ref, out = outs
        assert out.steps == ref.steps
        assert out.push_messages == ref.push_messages
        assert out.active_node_steps == ref.active_node_steps
        np.testing.assert_array_equal(out.values, ref.values)
        np.testing.assert_array_equal(out.weights, ref.weights)
        np.testing.assert_array_equal(out.converged, ref.converged)
        for key in ref.extras:
            np.testing.assert_array_equal(out.extras[key], ref.extras[key])

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_convergence_run_parity(self, kernel):
        self._compare(kernel, dict, lambda: {"xi": 1e-5})

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_run_to_max_parity(self, kernel):
        self._compare(kernel, dict, lambda: {"max_steps": 25, "run_to_max": True})

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_loss_model_parity(self, kernel):
        self._compare(
            kernel,
            lambda: {"loss_model": PacketLossModel(0.2, rng=100)},
            lambda: {"xi": 1e-5},
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_extras_and_vector_state_parity(self, kernel):
        graph = self._graph()
        n = graph.num_nodes
        rng = np.random.default_rng(6)
        values = rng.random((n, 2))
        weights = np.ones((n, 2))
        extras = {"count": rng.random((n, 2))}
        outs = []
        for name in ("unfused", kernel):
            engine = SparseGossipEngine(graph, rng=31, kernel=name)
            outs.append(engine.run(values, weights, xi=1e-5, extras=extras))
        ref, out = outs
        assert out.steps == ref.steps
        np.testing.assert_array_equal(out.values, ref.values)
        np.testing.assert_array_equal(out.extras["count"], ref.extras["count"])


class TestFloat32:
    def test_sparse_float32_state_dtype_and_accuracy(self):
        graph = preferential_attachment_graph_fast(3000, 4, rng=11)
        n = graph.num_nodes
        values = np.random.default_rng(5).random(n)
        weights = np.ones(n)
        ref = SparseGossipEngine(graph, rng=77).run(values, weights, xi=1e-5)
        out = SparseGossipEngine(graph, rng=77, dtype=np.float32).run(
            values, weights, xi=1e-5
        )
        assert out.values.dtype == np.float32
        est_ref = ref.values[:, 0] / ref.weights[:, 0]
        est = out.values[:, 0].astype(np.float64) / out.weights[:, 0].astype(np.float64)
        assert float(np.abs(est - est_ref).max()) < 1e-4

    def test_message_backend_raises_typed_error(self, pa_graph_small):
        values = np.ones(pa_graph_small.num_nodes)
        with pytest.raises(UnsupportedDtypeError, match="float64"):
            run_backend(
                pa_graph_small,
                values,
                np.ones_like(values),
                config=GossipConfig(dtype="float32", rng=1),
                backend="message",
            )

    def test_async_backend_raises_typed_error(self, pa_graph_small):
        values = np.ones(pa_graph_small.num_nodes)
        with pytest.raises(UnsupportedDtypeError):
            run_backend(
                pa_graph_small,
                values,
                np.ones_like(values),
                config=GossipConfig(dtype="float32", rng=1),
                backend="async",
            )

    def test_unsupported_dtype_rejected_at_config_construction(self):
        with pytest.raises(UnsupportedDtypeError, match="not supported"):
            GossipConfig(dtype="int32")
        with pytest.raises(UnsupportedDtypeError):
            GossipConfig(dtype="float16")


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=24, max_value=96),
    backend=st.sampled_from(["dense", "sparse", "sharded"]),
)
def test_float32_drift_bound_property(seed, n, backend):
    """Property row: float32 gossip conserves mass and lands within 1e-4.

    For every backend implementing float32, a full round at float32 must
    (a) keep each component's mass within the float32 tolerance of its
    initial total and (b) reach a fixpoint within 1e-4 of the float64
    reference run of the same backend and seed.
    """
    graph = preferential_attachment_graph(n, m=2, rng=seed)
    values = np.random.default_rng(seed).random(n)
    common = dict(xi=1e-6, rng=seed + 1, patience=2)
    ref = aggregate(graph, values, GossipConfig(**common), backend=backend)
    out = aggregate(graph, values, GossipConfig(dtype="float32", **common), backend=backend)
    assert out.values.dtype == np.float32

    rtol = mass_rtol_for(np.float32) * max(1.0, np.sqrt(n))
    for component, initial in (
        (out.values, values.sum()),
        (out.weights, float(n)),
    ):
        total = float(component.astype(np.float64).sum())
        assert abs(total - initial) <= rtol * max(abs(initial), 1.0)

    est_ref = ref.values[:, 0] / ref.weights[:, 0]
    est = out.values[:, 0].astype(np.float64) / out.weights[:, 0].astype(np.float64)
    assert float(np.abs(est - est_ref).max()) < 1e-4


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="optional 'kernels' extra not installed")
class TestNumbaKernel:
    def test_auto_selection_prefers_numba(self):
        assert select_kernel().name == "numba"

    def test_config_kernel_numba_runs(self, pa_graph_medium):
        n = pa_graph_medium.num_nodes
        out = aggregate(
            pa_graph_medium,
            np.linspace(0.0, 1.0, n),
            GossipConfig(rng=3, kernel="numba", xi=1e-6),
            backend="sparse",
        )
        assert bool(np.allclose(out.estimates, 0.5, atol=1e-3))
