"""Unit tests for variant 3 (simultaneous global aggregation)."""

import numpy as np
import pytest

from repro.core.vector_global import aggregate_vector_global, initial_state_vector_global
from repro.trust.matrix import TrustMatrix


class TestInitialState:
    def test_columns_match_targets(self, small_trust):
        values, weights = initial_state_vector_global(small_trust, [3, 7], "observers")
        assert values.shape == (60, 2)
        for col, target in enumerate((3, 7)):
            for observer, value in small_trust.column(target).items():
                assert values[observer, col] == value
                assert weights[observer, col] == 1.0

    def test_all_convention(self, small_trust):
        _, weights = initial_state_vector_global(small_trust, [3], "all")
        assert np.all(weights == 1.0)


class TestAggregation:
    def test_accuracy_per_column(self, pa_graph_small, small_trust):
        targets = [0, 5, 9, 20]
        result = aggregate_vector_global(
            pa_graph_small, small_trust, targets=targets, xi=1e-6, rng=1
        )
        assert result.estimates.shape == (60, 4)
        assert result.max_relative_error < 0.05
        for col, target in enumerate(targets):
            assert result.true_values[col] == pytest.approx(
                small_trust.column_mean_over_observers(target)
            )

    def test_matches_single_target_runs(self, pa_graph_small, small_trust):
        # Column dynamics are independent: vector run's per-column limit
        # equals the single-target truth.
        result = aggregate_vector_global(
            pa_graph_small, small_trust, targets=[5], xi=1e-7, rng=2
        )
        assert np.allclose(
            result.estimates[:, 0],
            small_trust.column_mean_over_observers(5),
            rtol=0.02,
        )

    def test_default_targets_all_nodes(self, pa_graph_small, small_trust):
        result = aggregate_vector_global(pa_graph_small, small_trust, xi=1e-4, rng=3)
        assert result.estimates.shape == (60, 60)

    def test_rejects_duplicate_targets(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="distinct"):
            aggregate_vector_global(pa_graph_small, small_trust, targets=[1, 1])

    def test_rejects_empty_targets(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="non-empty"):
            aggregate_vector_global(pa_graph_small, small_trust, targets=[])

    def test_rejects_out_of_range_targets(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="targets"):
            aggregate_vector_global(pa_graph_small, small_trust, targets=[99])

    def test_rejects_size_mismatch(self, pa_graph_small):
        with pytest.raises(ValueError, match="nodes"):
            aggregate_vector_global(pa_graph_small, TrustMatrix(9))

    def test_all_convention(self, pa_graph_small, small_trust):
        result = aggregate_vector_global(
            pa_graph_small, small_trust, targets=[5], xi=1e-9, rng=4, convention="all"
        )
        assert result.true_values[0] == pytest.approx(
            small_trust.column_mean_over_all(5)
        )
        assert result.max_relative_error < 0.05

    def test_eq7_convergence_uses_summed_threshold(self, pa_graph_small, small_trust):
        # More columns loosen the per-node threshold (d * xi); the run
        # should still converge to the right answers.
        result = aggregate_vector_global(
            pa_graph_small, small_trust, targets=list(range(20)), xi=1e-6, rng=5
        )
        assert result.max_relative_error < 0.1
