"""Unit tests for the asynchronous (event-driven) gossip engine."""

import numpy as np
import pytest

from repro.core.async_engine import AsyncGossipEngine
from repro.core.errors import ConvergenceError
from repro.network.graph import Graph
from repro.network.topology_example import example_network


class TestAsyncGossip:
    def test_converges_to_mean(self):
        engine = AsyncGossipEngine(example_network(), rng=1)
        values = np.arange(10.0)
        out = engine.run(values, np.ones(10), xi=1e-6)
        assert out.converged
        assert np.allclose(out.estimates, 4.5, atol=1e-2)

    def test_mass_conserved(self):
        engine = AsyncGossipEngine(example_network(), rng=2)
        values = np.arange(10.0)
        out = engine.run(values, np.ones(10), xi=1e-5)
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-9)
        assert float(out.weights.sum()) == pytest.approx(10.0, rel=1e-9)

    def test_works_on_pa_graph(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        values = np.random.default_rng(0).random(n)
        engine = AsyncGossipEngine(pa_graph_small, rng=3)
        out = engine.run(values, np.ones(n), xi=1e-6, quiet_window=4.0)
        assert np.allclose(out.estimates, values.mean(), atol=5e-2)

    def test_hubs_tick_faster(self, star5):
        # The hub's rate is its differential count (4); leaves tick at 1.
        engine = AsyncGossipEngine(star5, rng=4)
        out = engine.run(np.arange(5.0), np.ones(5), xi=1e-5)
        assert out.total_pushes > 0
        assert out.converged

    def test_time_budget_strict_raises(self):
        engine = AsyncGossipEngine(example_network(), rng=5)
        with pytest.raises(ConvergenceError):
            engine.run(np.arange(10.0), np.ones(10), xi=1e-12, max_time=2.0)

    def test_time_budget_lenient_returns_partial(self):
        engine = AsyncGossipEngine(example_network(), rng=6)
        out = engine.run(
            np.arange(10.0), np.ones(10), xi=1e-12, max_time=2.0, strict=False
        )
        assert not out.converged
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-9)

    def test_isolated_node_untouched(self):
        g = Graph(3, [(0, 1)])
        engine = AsyncGossipEngine(g, rng=7)
        out = engine.run(np.array([2.0, 4.0, 9.0]), np.ones(3), xi=1e-6)
        assert out.estimates[2] == pytest.approx(9.0)
        assert np.allclose(out.estimates[:2], 3.0, atol=1e-2)

    def test_deterministic_from_seed(self):
        values = np.arange(10.0)
        a = AsyncGossipEngine(example_network(), rng=42).run(values, np.ones(10), xi=1e-5)
        b = AsyncGossipEngine(example_network(), rng=42).run(values, np.ones(10), xi=1e-5)
        assert a.total_pushes == b.total_pushes
        assert np.array_equal(a.values, b.values)

    def test_validation(self):
        engine = AsyncGossipEngine(example_network(), rng=8)
        with pytest.raises(ValueError):
            engine.run(np.ones(10), np.ones(10), xi=0.0)
        with pytest.raises(ValueError):
            AsyncGossipEngine(example_network(), push_counts=np.ones(3))

    def test_agrees_with_sync_engine_limit(self, pa_graph_small):
        from repro.core.vector_engine import VectorGossipEngine

        n = pa_graph_small.num_nodes
        values = np.random.default_rng(1).random(n)
        sync = VectorGossipEngine(pa_graph_small, rng=9).run(values, np.ones(n), xi=1e-7)
        async_out = AsyncGossipEngine(pa_graph_small, rng=10).run(
            values, np.ones(n), xi=1e-6, quiet_window=4.0
        )
        assert np.allclose(
            sync.estimates.mean(), async_out.estimates.mean(), atol=1e-2
        )
