"""Unit tests for the asynchronous (event-driven) gossip engine."""

import hashlib

import numpy as np
import pytest

from repro.core.async_engine import AsyncGossipEngine
from repro.core.errors import ConvergenceError
from repro.network.conditions import (
    HomogeneousLink,
    InstantLink,
    LatencySpec,
    PartitionWindow,
    RegionalLinkModel,
)
from repro.network.graph import Graph
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.network.random_graphs import regional_graph
from repro.network.topology_example import example_network


class TestAsyncGossip:
    def test_converges_to_mean(self):
        engine = AsyncGossipEngine(example_network(), rng=1)
        values = np.arange(10.0)
        out = engine.run(values, np.ones(10), xi=1e-6)
        assert out.converged
        assert np.allclose(out.estimates, 4.5, atol=1e-2)

    def test_mass_conserved(self):
        engine = AsyncGossipEngine(example_network(), rng=2)
        values = np.arange(10.0)
        out = engine.run(values, np.ones(10), xi=1e-5)
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-9)
        assert float(out.weights.sum()) == pytest.approx(10.0, rel=1e-9)

    def test_works_on_pa_graph(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        values = np.random.default_rng(0).random(n)
        engine = AsyncGossipEngine(pa_graph_small, rng=3)
        out = engine.run(values, np.ones(n), xi=1e-6, quiet_window=4.0)
        assert np.allclose(out.estimates, values.mean(), atol=5e-2)

    def test_hubs_tick_faster(self, star5):
        # The hub's rate is its differential count (4); leaves tick at 1.
        engine = AsyncGossipEngine(star5, rng=4)
        out = engine.run(np.arange(5.0), np.ones(5), xi=1e-5)
        assert out.total_pushes > 0
        assert out.converged

    def test_time_budget_strict_raises(self):
        engine = AsyncGossipEngine(example_network(), rng=5)
        with pytest.raises(ConvergenceError):
            engine.run(np.arange(10.0), np.ones(10), xi=1e-12, max_time=2.0)

    def test_time_budget_lenient_returns_partial(self):
        engine = AsyncGossipEngine(example_network(), rng=6)
        out = engine.run(
            np.arange(10.0), np.ones(10), xi=1e-12, max_time=2.0, strict=False
        )
        assert not out.converged
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-9)

    def test_isolated_node_untouched(self):
        g = Graph(3, [(0, 1)])
        engine = AsyncGossipEngine(g, rng=7)
        out = engine.run(np.array([2.0, 4.0, 9.0]), np.ones(3), xi=1e-6)
        assert out.estimates[2] == pytest.approx(9.0)
        assert np.allclose(out.estimates[:2], 3.0, atol=1e-2)

    def test_deterministic_from_seed(self):
        values = np.arange(10.0)
        a = AsyncGossipEngine(example_network(), rng=42).run(values, np.ones(10), xi=1e-5)
        b = AsyncGossipEngine(example_network(), rng=42).run(values, np.ones(10), xi=1e-5)
        assert a.total_pushes == b.total_pushes
        assert np.array_equal(a.values, b.values)

    def test_validation(self):
        engine = AsyncGossipEngine(example_network(), rng=8)
        with pytest.raises(ValueError):
            engine.run(np.ones(10), np.ones(10), xi=0.0)
        with pytest.raises(ValueError):
            AsyncGossipEngine(example_network(), push_counts=np.ones(3))

    def test_agrees_with_sync_engine_limit(self, pa_graph_small):
        from repro.core.vector_engine import VectorGossipEngine

        n = pa_graph_small.num_nodes
        values = np.random.default_rng(1).random(n)
        sync = VectorGossipEngine(pa_graph_small, rng=9).run(values, np.ones(n), xi=1e-7)
        async_out = AsyncGossipEngine(pa_graph_small, rng=10).run(
            values, np.ones(n), xi=1e-6, quiet_window=4.0
        )
        assert np.allclose(
            sync.estimates.mean(), async_out.estimates.mean(), atol=1e-2
        )


def _fingerprint(out):
    return hashlib.sha256(out.values.tobytes() + out.weights.tobytes()).hexdigest()


class TestAsyncByteIdentity:
    """Pins the exact trajectory of the pre-refactor engine.

    The link-model refactor must not move a single byte on the trivial
    path: no link (or an ``InstantLink(0.0)``) consumes zero link
    randomness and delivers inline, so seeds, push counts, simulated
    time, and the final float64 state are all pinned to the values the
    engine produced before network conditions existed.
    """

    def test_example_network_trajectory_pinned(self):
        out = AsyncGossipEngine(example_network(), rng=42).run(
            np.arange(10.0), np.ones(10), xi=1e-5
        )
        assert out.total_pushes == 516
        assert round(out.simulated_time, 9) == 44.684169232
        assert _fingerprint(out) == (
            "29e6b22f5e14187dff9231ebf2bcda19e515111812e30739278707e0a351d1ed"
        )

    def test_pa_graph_trajectory_pinned(self):
        graph = preferential_attachment_graph(60, m=2, rng=7)
        values = np.random.default_rng(3).random(60)
        out = AsyncGossipEngine(graph, rng=11).run(
            values, np.ones(60), xi=1e-6, quiet_window=4.0
        )
        assert out.total_pushes == 8767
        assert round(out.simulated_time, 9) == 124.14387665
        assert _fingerprint(out) == (
            "9cdfbdd459b56f75308fd99eddd139696c8b45e7cf564f64cb02361cc4e3cb82"
        )

    def test_trivial_link_is_byte_identical_to_no_link(self):
        values = np.arange(10.0)
        bare = AsyncGossipEngine(example_network(), rng=42).run(
            values, np.ones(10), xi=1e-5
        )
        linked = AsyncGossipEngine(
            example_network(), rng=42, link=InstantLink(0.0), link_rng=123
        ).run(values, np.ones(10), xi=1e-5)
        assert linked.total_pushes == bare.total_pushes
        assert linked.simulated_time == bare.simulated_time
        assert np.array_equal(linked.values, bare.values)
        assert np.array_equal(linked.weights, bare.weights)


class TestAsyncLinkModels:
    def test_loss_counts_drops_and_conserves_mass(self):
        engine = AsyncGossipEngine(
            example_network(), rng=1, link=InstantLink(0.3), link_rng=2
        )
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-5)
        assert out.converged
        assert out.total_drops > 0
        assert out.partition_drops == 0
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-12)
        assert float(out.weights.sum()) == pytest.approx(10.0, rel=1e-12)

    def test_latency_keeps_mass_in_flight(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        values = np.random.default_rng(5).random(n)
        link = HomogeneousLink(0.0, latency=LatencySpec("exponential", 0.3))
        engine = AsyncGossipEngine(pa_graph_small, rng=6, link=link, link_rng=7)
        out = engine.run(values, np.ones(n), xi=1e-5, quiet_window=4.0, check_mass=True)
        assert out.converged
        assert out.max_in_flight > 0
        assert float(out.values.sum()) == pytest.approx(values.sum(), rel=1e-12)
        assert np.allclose(out.estimates, values.mean(), atol=5e-2)

    def test_partition_blocks_convergence_until_heal(self):
        graph = regional_graph(80, 2, intra_probability=0.2, inter_probability=0.05, rng=3)
        link = RegionalLinkModel(
            2,
            intra_latency=LatencySpec("exponential", 0.05),
            partitions=(PartitionWindow(start=2.0, duration=30.0),),
        )
        values = np.random.default_rng(4).random(80)
        engine = AsyncGossipEngine(graph, rng=8, link=link, link_rng=9)
        out = engine.run(
            values, np.ones(80), xi=1e-5, quiet_window=3.0,
            max_time=2000.0, check_mass=True,
        )
        assert out.converged
        assert out.partition_drops > 0
        # Quiet accrued while the islands were cut off must not count:
        # the run ends at least one quiet window after the heal at t=32,
        # and the post-heal remix brings every node to the global mean.
        assert out.simulated_time >= 32.0 + 3.0
        assert np.allclose(out.estimates, values.mean(), atol=1e-3)
        assert float(out.values.sum()) == pytest.approx(values.sum(), rel=1e-12)
