"""Unit tests for the whitewashing attack model."""

import pytest

from repro.attacks.whitewashing import WhitewashingModel
from repro.trust.matrix import TrustMatrix


class TestWhitewashing:
    def test_erases_opinions_about_node(self):
        t = TrustMatrix(4)
        t.set(0, 2, 0.1)  # node 2 has earned a bad name
        t.set(1, 2, 0.05)
        model = WhitewashingModel()
        model.whitewash(t, 2)
        assert not t.has(0, 2)
        assert not t.has(1, 2)
        assert t.observers_of(2) == frozenset()

    def test_outgoing_opinions_survive(self):
        t = TrustMatrix(4)
        t.set(2, 0, 0.9)
        WhitewashingModel().whitewash(t, 2)
        assert t.get(2, 0) == 0.9

    def test_zero_policy_means_stranger(self):
        # Paper's defence: newcomer trust 0 -> no entries at all.
        t = TrustMatrix(3)
        t.set(0, 1, 0.2)
        WhitewashingModel(newcomer_trust=0.0).whitewash(t, 1)
        assert not t.has(0, 1)
        assert t.get(0, 1) == 0.0

    def test_naive_policy_grants_benefit_of_doubt(self):
        t = TrustMatrix(3)
        t.set(0, 1, 0.05)
        WhitewashingModel(newcomer_trust=0.5).whitewash(t, 1)
        assert t.get(0, 1) == 0.5  # the whitewasher profited!

    def test_zero_policy_removes_whitewashing_gain(self):
        # The core claim: under the 0 policy, a reset never raises trust.
        t = TrustMatrix(3)
        t.set(0, 1, 0.05)
        before = t.get(0, 1)
        WhitewashingModel(newcomer_trust=0.0).whitewash(t, 1)
        assert t.get(0, 1) <= before

    def test_repeated_resets_with_benefit_of_doubt_are_stable(self):
        # Bookkeeping audit: under repeated resets the observer set must
        # stay exactly the original observers — the re-granted entries
        # make those observers "former observers" again on the next
        # reset, and nothing may compound or leak across resets.
        t = TrustMatrix(5)
        t.set(0, 2, 0.1)
        t.set(3, 2, 0.9)
        model = WhitewashingModel(newcomer_trust=0.4)
        for round_number in range(1, 4):
            model.whitewash(t, 2)
            assert t.observers_of(2) == frozenset({0, 3})
            assert t.get(0, 2) == 0.4 and t.get(3, 2) == 0.4
            assert model.reset_counts[2] == round_number
        assert model.total_resets() == 3

    def test_repeated_resets_with_zero_policy_stay_empty(self):
        # After the first zero-policy reset there are no observers left;
        # later resets must keep counting without resurrecting entries.
        t = TrustMatrix(4)
        t.set(0, 1, 0.3)
        model = WhitewashingModel(newcomer_trust=0.0)
        model.whitewash(t, 1)
        model.whitewash(t, 1)
        assert t.observers_of(1) == frozenset()
        assert model.reset_counts[1] == 2

    def test_benefit_of_doubt_never_manufactures_observer_rows(self):
        # Node 3 never opined about node 1; the re-grant branch must not
        # invent an entry (or a row) for it.
        t = TrustMatrix(4)
        t.set(0, 1, 0.2)
        t.set(1, 0, 0.7)  # the washer's own outgoing opinion
        WhitewashingModel(newcomer_trust=0.6).whitewash(t, 1)
        assert t.observers_of(1) == frozenset({0})
        assert not t.has(2, 1) and not t.has(3, 1)
        assert t.row(2) == {} and t.row(3) == {}
        # Outgoing knowledge survives the identity change.
        assert t.get(1, 0) == 0.7

    def test_reset_counting(self):
        t = TrustMatrix(3)
        model = WhitewashingModel()
        model.whitewash(t, 1)
        model.whitewash(t, 1)
        model.whitewash(t, 2)
        assert model.total_resets() == 3
        assert model.reset_counts[1] == 2
        assert model.serial_whitewashers(threshold=2) == [1]

    def test_serial_threshold_validation(self):
        with pytest.raises(ValueError):
            WhitewashingModel().serial_whitewashers(threshold=0)

    def test_rejects_bad_newcomer_trust(self):
        with pytest.raises(ValueError):
            WhitewashingModel(newcomer_trust=1.5)
