"""Algorithm registry, adapters, Absolute Trust, and tournament tests.

Pins the contracts ISSUE 10 introduced:

- registry round-trips, alias resolution and the typed unknown-name
  error (mirroring the backend registry's conventions);
- the diff-gossip adapter is **byte-identical** to a direct
  ``repro.aggregate`` call at a fixed seed;
- the Absolute Trust fixpoint solves its defining equation and is
  seed-independent (the fixpoint is unique);
- every baseline entry point routes ``rng`` through ``as_generator``
  (``None`` / int / ``Generator`` / ``SeedSequence`` all accepted);
- ``attack_impact(algorithm=...)`` measures any registered algorithm
  while the classic path stays unchanged;
- the scenario algorithm axis and the tournament leaderboard are
  deterministic from their seed.
"""

import numpy as np
import pytest

from repro.algorithms import (
    AlgorithmOutcome,
    PreparedAlgorithm,
    UnknownAlgorithmError,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    resolve_algorithm_name,
)
from repro.core.backend import GossipConfig
from repro.facade import aggregate
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.trust.matrix import TrustMatrix, complete_trust_matrix

CANONICAL = (
    "absolute-trust",
    "diff-gossip",
    "eigentrust",
    "flooding",
    "gossip-trust",
    "push-pull",
    "push-sum",
)


@pytest.fixture(scope="module")
def world():
    graph = preferential_attachment_graph(60, m=2, rng=5)
    trust = complete_trust_matrix(60, rng=6)
    return graph, trust


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert set(CANONICAL) <= set(available_algorithms())

    def test_available_sorted_canonical(self):
        names = available_algorithms()
        assert list(names) == sorted(names)
        assert "dgt" not in names  # aliases are not canonical names

    def test_aliases_resolve_to_same_object(self):
        assert get_algorithm("dgt") is get_algorithm("diff-gossip")
        assert get_algorithm("differential-gossip") is get_algorithm("diff-gossip")
        assert get_algorithm("normal-push") is get_algorithm("push-sum")
        assert get_algorithm("flood") is get_algorithm("flooding")
        assert get_algorithm("absolutetrust") is get_algorithm("absolute-trust")

    def test_resolve_returns_canonical(self):
        assert resolve_algorithm_name("dgt") == "diff-gossip"
        assert resolve_algorithm_name("push-pull") == "push-pull"

    def test_unknown_name_typed_error(self):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            get_algorithm("nope")
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ValueError)
        # the error names the catalogue
        assert "diff-gossip" in str(excinfo.value)

    def test_register_round_trip(self):
        sentinel = get_algorithm("flooding")
        register_algorithm("test-rt", sentinel, aliases=("test-rt-alias",), overwrite=True)
        assert get_algorithm("test-rt") is sentinel
        assert get_algorithm("test-rt-alias") is sentinel
        assert "test-rt" in available_algorithms()

    def test_duplicate_name_rejected_before_mutation(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("diff-gossip", get_algorithm("flooding"))
        with pytest.raises(ValueError, match="alias"):
            register_algorithm("fresh-name", get_algorithm("flooding"), aliases=("dgt",))
        # the failed alias registration must not have claimed the name
        with pytest.raises(UnknownAlgorithmError):
            get_algorithm("fresh-name")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_algorithm("", get_algorithm("flooding"))


# -- diff-gossip byte-identity ----------------------------------------------


class TestDiffGossipByteIdentity:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_adapter_matches_direct_facade_call(self, world, backend):
        graph, trust = world
        targets = [0, 3, 7, 11]
        direct = aggregate(
            graph, trust, GossipConfig(xi=1e-4, rng=7), backend=backend,
            variant="vector-global", targets=targets,
        )
        outcome = (
            get_algorithm("diff-gossip")
            .prepare(graph, trust, GossipConfig(xi=1e-4), targets=targets, backend=backend)
            .run(rng=7)
        )
        raw = outcome.raw
        assert np.array_equal(direct.values, raw.values)
        assert np.array_equal(direct.weights, raw.weights)
        assert direct.steps == raw.steps == outcome.rounds
        assert direct.total_messages == raw.total_messages == outcome.messages

    def test_prepared_config_seed_replays(self, world):
        graph, trust = world
        prepared = get_algorithm("diff-gossip").prepare(
            graph, trust, GossipConfig(xi=1e-4, rng=7), targets=[0, 3], backend="dense"
        )
        # rng=None keeps the prepared config's seed — identical replay
        a = prepared.run()
        b = prepared.run()
        assert np.array_equal(a.estimates, b.estimates)
        assert a.rounds == b.rounds and a.messages == b.messages


# -- absolute trust ----------------------------------------------------------


class TestAbsoluteTrust:
    def test_fixpoint_solves_defining_equation(self, world):
        from repro.baselines.absolute_trust import absolute_trust_fixpoint

        _, trust = world
        result = absolute_trust_fixpoint(trust, tolerance=1e-12)
        assert result.converged
        t = result.values
        dense = trust.to_dense()
        mask = trust.observation_mask()
        # t_j = sum_{i in R_j} T_ij t_i / sum_{i in R_j} t_i — the dense
        # restatement of the arXiv:1601.01419 fixpoint.
        weights = np.where(mask, t[:, None], 0.0)
        denom = weights.sum(axis=0)
        numer = (weights * dense).sum(axis=0)
        expected = np.where(denom > 0, numer / np.where(denom == 0, 1.0, denom), 0.0)
        np.testing.assert_allclose(t, expected, atol=1e-9)

    def test_seed_independent_fixpoint(self, world):
        from repro.baselines.absolute_trust import absolute_trust_fixpoint

        _, trust = world
        reference = absolute_trust_fixpoint(trust).values
        for rng in (1, 2, np.random.default_rng(3), np.random.SeedSequence(4)):
            seeded = absolute_trust_fixpoint(trust, rng=rng)
            assert seeded.converged
            np.testing.assert_allclose(seeded.values, reference, atol=1e-7)

    def test_unobserved_peer_pinned_to_zero(self):
        from repro.baselines.absolute_trust import absolute_trust_fixpoint

        trust = TrustMatrix(4)
        trust.set(0, 1, 0.8)
        trust.set(1, 0, 0.6)
        trust.set(0, 2, 0.5)
        # node 3 was never observed: the newcomer convention pins it at 0
        result = absolute_trust_fixpoint(trust)
        assert result.values[3] == 0.0
        assert result.converged

    def test_thin_shim_returns_values(self, world):
        from repro.baselines.absolute_trust import absolute_trust, absolute_trust_fixpoint

        _, trust = world
        np.testing.assert_array_equal(
            absolute_trust(trust), absolute_trust_fixpoint(trust).values
        )


# -- adapter surface ---------------------------------------------------------


class TestAdapters:
    @pytest.mark.parametrize("name", CANONICAL)
    def test_deterministic_and_well_formed(self, world, name):
        graph, trust = world
        targets = [0, 3, 7, 11]
        config = GossipConfig(xi=1e-4)
        algorithm = get_algorithm(name)
        a = algorithm.prepare(graph, trust, config, targets=targets).run(rng=11)
        b = algorithm.prepare(graph, trust, config, targets=targets).run(rng=11)
        assert isinstance(a, AlgorithmOutcome)
        assert a.algorithm == name
        assert a.estimates.shape == a.truth.shape == (len(targets),)
        assert a.rounds >= 1 or name == "flooding"
        assert a.messages > 0
        assert a.wall_clock_seconds >= 0.0
        assert a.messages_per_node == pytest.approx(a.messages / a.num_nodes)
        # same seed, same row — the tournament's determinism contract
        np.testing.assert_array_equal(a.estimates, b.estimates)
        assert (a.rounds, a.messages, a.converged) == (b.rounds, b.messages, b.converged)

    def test_flooding_exact_and_rng_ignored(self, world):
        graph, trust = world
        algorithm = get_algorithm("flooding")
        a = algorithm.prepare(graph, trust, targets=[1, 2]).run(rng=1)
        b = algorithm.prepare(graph, trust, targets=[1, 2]).run(rng=999)
        assert a.rms_error == 0.0  # flooding computes the exact observer mean
        np.testing.assert_array_equal(a.estimates, b.estimates)
        assert a.messages == b.messages

    def test_prepare_rejects_out_of_range_target(self, world):
        graph, trust = world
        with pytest.raises(ValueError, match="target"):
            get_algorithm("flooding").prepare(graph, trust, targets=[60])

    def test_default_targets_are_all_nodes(self, world):
        graph, trust = world
        outcome = get_algorithm("absolute-trust").prepare(graph, trust).run(rng=3)
        assert outcome.estimates.shape == (graph.num_nodes,)

    def test_protocol_runtime_checkable(self):
        from repro.algorithms.base import AggregationAlgorithm

        for name in CANONICAL:
            assert isinstance(get_algorithm(name), AggregationAlgorithm)

    def test_prepared_algorithm_type(self, world):
        graph, trust = world
        prepared = get_algorithm("push-pull").prepare(graph, trust, targets=[0])
        assert isinstance(prepared, PreparedAlgorithm)
        assert prepared.algorithm == "push-pull"


# -- rng signature regression (satellite 1) ----------------------------------


RNG_FORMS = [
    None,
    17,
    np.random.default_rng(17),
    np.random.SeedSequence(17),
]


class TestRngSignatures:
    @pytest.mark.parametrize("rng", RNG_FORMS, ids=["none", "int", "generator", "seedseq"])
    def test_push_pull_average_accepts_rnglike(self, world, rng):
        from repro.baselines.push_pull import push_pull_average

        graph, _ = world
        values = np.linspace(0.0, 1.0, graph.num_nodes)
        outcome = push_pull_average(graph, values, xi=1e-3, rng=rng)
        assert outcome.values.shape[0] == graph.num_nodes

    @pytest.mark.parametrize("rng", RNG_FORMS, ids=["none", "int", "generator", "seedseq"])
    def test_gossip_trust_global_accepts_rnglike(self, world, rng):
        from repro.baselines.gossip_trust import gossip_trust_global

        _, trust = world
        values = gossip_trust_global(trust, rng=rng)
        assert values.shape == (trust.num_nodes,)

    @pytest.mark.parametrize("rng", RNG_FORMS, ids=["none", "int", "generator", "seedseq"])
    def test_normal_push_engine_accepts_rnglike(self, world, rng):
        from repro.baselines.push_sum import normal_push_engine

        graph, _ = world
        engine = normal_push_engine(graph, rng=rng)
        values = np.ones(graph.num_nodes)
        outcome = engine.run(values, np.ones(graph.num_nodes), xi=1e-2)
        assert outcome.values.shape[0] == graph.num_nodes

    @pytest.mark.parametrize("rng", RNG_FORMS, ids=["none", "int", "generator", "seedseq"])
    def test_fixpoint_baselines_accept_rnglike(self, world, rng):
        from repro.baselines.absolute_trust import absolute_trust_fixpoint
        from repro.baselines.eigentrust import eigentrust_fixpoint
        from repro.baselines.gossip_trust import gossip_trust_fixpoint

        _, trust = world
        for solver in (absolute_trust_fixpoint, eigentrust_fixpoint, gossip_trust_fixpoint):
            result = solver(trust, rng=rng)
            assert result.values.shape == (trust.num_nodes,)

    def test_int_seed_determinism(self, world):
        from repro.baselines.push_pull import push_pull_average

        graph, _ = world
        values = np.linspace(0.0, 1.0, graph.num_nodes)
        a = push_pull_average(graph, values, xi=1e-3, rng=17)
        b = push_pull_average(graph, values, xi=1e-3, rng=17)
        assert np.array_equal(a.values, b.values)
        assert a.steps == b.steps

    def test_push_pull_vector_columns(self, world):
        from repro.baselines.push_pull import push_pull_average

        graph, _ = world
        n = graph.num_nodes
        columns = np.stack([np.linspace(0, 1, n), np.full(n, 3.0)], axis=1)
        outcome = push_pull_average(graph, columns, xi=1e-4, rng=2)
        assert outcome.values.shape == (n, 2)
        np.testing.assert_allclose(outcome.estimates.mean(axis=0), [0.5, 3.0], atol=1e-3)

    def test_push_pull_rejects_bad_shape(self, world):
        from repro.baselines.push_pull import push_pull_average

        graph, _ = world
        with pytest.raises(ValueError):
            push_pull_average(graph, np.ones((graph.num_nodes, 2, 2)))
        with pytest.raises(ValueError):
            push_pull_average(graph, np.ones(graph.num_nodes + 1))


# -- attack_impact(algorithm=) ----------------------------------------------


class TestAttackImpactAlgorithm:
    @pytest.fixture(scope="class")
    def attack_world(self):
        from repro.attacks.models import make_attack

        graph = preferential_attachment_graph(60, m=2, rng=5)
        trust = complete_trust_matrix(60, rng=6)
        model = make_attack("collusion", fraction=0.3, group_size=5, seed=2)
        return graph, trust, model

    def test_algorithm_path_reports_name_and_outcomes(self, attack_world):
        from repro.attacks.evaluate import attack_impact

        graph, trust, model = attack_world
        impact = attack_impact(
            graph, trust, model, config=GossipConfig(xi=1e-4, rng=9),
            algorithm="absolute-trust",
        )
        assert impact.algorithm == "absolute-trust"
        assert impact.clean_algo_outcome is not None
        assert impact.dirty_algo_outcome is not None
        assert impact.clean_outcome is None  # gossip-outcome fields unused
        assert impact.rms_gclr >= 0.0
        assert impact.backend is None  # not a backend-routed algorithm

    def test_algorithm_path_deterministic(self, attack_world):
        from repro.attacks.evaluate import attack_impact

        graph, trust, model = attack_world
        config = GossipConfig(xi=1e-4, rng=9)
        a = attack_impact(graph, trust, model, config=config, algorithm="diff-gossip")
        b = attack_impact(graph, trust, model, config=config, algorithm="diff-gossip")
        assert a.rms_gclr == b.rms_gclr
        assert a.backend == b.backend  # resolved once against the dirty world

    def test_algorithm_instance_accepted(self, attack_world):
        from repro.attacks.evaluate import attack_impact

        graph, trust, model = attack_world
        config = GossipConfig(xi=1e-4, rng=9)
        by_name = attack_impact(graph, trust, model, config=config, algorithm="flooding")
        by_instance = attack_impact(
            graph, trust, model, config=config, algorithm=get_algorithm("flooding")
        )
        assert by_name.rms_gclr == by_instance.rms_gclr

    def test_classic_path_untouched(self, attack_world):
        from repro.attacks.evaluate import attack_impact

        graph, trust, model = attack_world
        impact = attack_impact(graph, trust, model, config=GossipConfig(xi=1e-4, rng=9))
        assert impact.algorithm is None
        assert impact.clean_algo_outcome is None
        assert impact.clean_outcome is not None

    def test_series_shares_clean_run(self, attack_world):
        from repro.attacks.evaluate import attack_impact_series
        from repro.attacks.models import make_attack

        graph, trust, _ = attack_world
        model = make_attack("on-off", fraction=0.2, period=2, seed=3)
        series = attack_impact_series(
            graph, trust, model, epochs=4,
            config=GossipConfig(xi=1e-4, rng=9), algorithm="eigentrust",
        )
        assert len(series) == 4
        first_clean = series[0].clean_algo_outcome
        assert all(s.clean_algo_outcome is first_clean for s in series)
        # the off-phase epochs collapse to zero shift under shared seeds
        assert series[1].rms_gclr == pytest.approx(0.0, abs=1e-12)

    def test_sybil_restricts_to_honest_rows(self, attack_world):
        from repro.attacks.evaluate import attack_impact
        from repro.attacks.models import make_attack

        graph, trust, _ = attack_world
        model = make_attack("sybil", num_sybils=6, seed=4)
        impact = attack_impact(
            graph, trust, model, config=GossipConfig(xi=1e-4, rng=9),
            algorithm="diff-gossip",
        )
        assert impact.num_nodes_dirty == 66
        assert np.isfinite(impact.rms_gclr)


# -- scenario algorithm axis --------------------------------------------------


class TestAlgorithmSpec:
    def test_unknown_kind_rejected_at_construction(self):
        from repro.scenarios.spec import AlgorithmSpec

        with pytest.raises(UnknownAlgorithmError):
            AlgorithmSpec(kind="nope")

    def test_alias_resolves_to_canonical(self):
        from repro.scenarios.spec import AlgorithmSpec

        spec = AlgorithmSpec(kind="dgt")
        assert spec.canonical == "diff-gossip"
        assert spec.build() is get_algorithm("diff-gossip")

    def test_algorithm_requires_trust_global_workload(self):
        from repro.scenarios.spec import (
            AlgorithmSpec,
            Scenario,
            TopologySpec,
            WorkloadSpec,
        )

        with pytest.raises(ValueError, match="algorithm axis"):
            Scenario(
                name="bad",
                description="x",
                topology=TopologySpec(kind="example"),
                workload=WorkloadSpec(kind="mean"),
                algorithm=AlgorithmSpec(kind="flooding"),
            )

    def test_pinned_scenario_runs_deterministically(self):
        from repro.scenarios import run_scenario

        a = run_scenario("absolute-trust-powerlaw", small=True)
        b = run_scenario("absolute-trust-powerlaw", small=True)
        assert a.metrics == b.metrics
        assert (a.steps, a.push_messages) == (b.steps, b.push_messages)
        assert a.backend == "n/a"  # not a backend-routed algorithm
        assert "accuracy_rms" in a.metrics
        assert a.converged_fraction == 1.0


# -- tournament ---------------------------------------------------------------


class TestTournament:
    @pytest.fixture(scope="class")
    def tiny_record(self):
        from repro.experiments.tournament import build_leaderboard

        return build_leaderboard(
            seed=7,
            small=True,
            algorithms=("diff-gossip", "absolute-trust", "flooding"),
            scenarios=("collusion-under-churn",),
            attacks={"collusion": dict(fraction=0.3, group_size=5)},
            backends=("dense",),
        )

    def test_schema(self, tiny_record):
        assert tiny_record["benchmark"] == "tournament"
        assert len(tiny_record["cells"]) == 3  # 1 backend-routed + 2 exact
        for cell in tiny_record["cells"]:
            for key in (
                "scenario", "algorithm", "backend", "accuracy_rms",
                "accuracy_max_abs", "rounds", "messages", "messages_per_node",
                "wall_clock_seconds", "converged", "attacks",
            ):
                assert key in cell
            for family_cell in cell["attacks"].values():
                assert {"shift_rms", "shift_unweighted", "amplification"} <= set(family_cell)
        assert [row["algorithm"] for row in tiny_record["leaderboard"]]

    def test_deterministic_leaderboard(self, tiny_record):
        import json

        from repro.experiments.tournament import build_leaderboard, strip_timing

        again = build_leaderboard(
            seed=7,
            small=True,
            algorithms=("diff-gossip", "absolute-trust", "flooding"),
            scenarios=("collusion-under-churn",),
            attacks={"collusion": dict(fraction=0.3, group_size=5)},
            backends=("dense",),
        )
        assert json.dumps(strip_timing(tiny_record), sort_keys=True) == json.dumps(
            strip_timing(again), sort_keys=True
        )

    def test_strip_timing_removes_wall_clock_only(self, tiny_record):
        from repro.experiments.tournament import strip_timing

        stripped = strip_timing(tiny_record)
        assert all("wall_clock_seconds" not in c for c in stripped["cells"])
        assert all("total_wall_clock_seconds" not in r for r in stripped["leaderboard"])
        # everything else survives
        assert len(stripped["cells"]) == len(tiny_record["cells"])
        assert stripped["cells"][0]["messages"] == tiny_record["cells"][0]["messages"]

    def test_adversary_shared_across_algorithms(self, tiny_record):
        # every algorithm faced the same poisoned matrix: the unweighted
        # comparator (algorithm-independent) must be identical per cell
        unweighted = {
            cell["attacks"]["collusion"]["shift_unweighted"]
            for cell in tiny_record["cells"]
        }
        assert len(unweighted) == 1

    def test_committed_artifact_matches_regeneration(self):
        """BENCH_tournament.json regenerates bit-identically (timing aside)."""
        import json
        from pathlib import Path

        from repro.experiments.tournament import build_leaderboard, strip_timing

        path = Path(__file__).parent.parent / "BENCH_tournament.json"
        committed = json.loads(path.read_text())
        regenerated = build_leaderboard(
            seed=committed["seed"],
            small=committed["small"],
            xi=committed["xi"],
            num_targets=committed["num_targets"],
        )
        assert json.dumps(strip_timing(committed), sort_keys=True) == json.dumps(
            strip_timing(regenerated), sort_keys=True
        )
