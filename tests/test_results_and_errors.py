"""Unit tests for result records and the error hierarchy."""

import numpy as np
import pytest

from repro.core.errors import ConvergenceError, GossipError, MassConservationError
from repro.core.results import GossipOutcome
from repro.core.state import UNDEFINED_RATIO


def make_outcome(**overrides):
    defaults = dict(
        values=np.array([[2.0], [4.0]]),
        weights=np.array([[1.0], [2.0]]),
        extras={"count": np.array([[1.0], [1.0]])},
        steps=10,
        push_messages=30,
        protocol_messages=12,
        active_node_steps=18,
        converged=np.array([True, True]),
    )
    defaults.update(overrides)
    return GossipOutcome(**defaults)


class TestGossipOutcome:
    def test_estimates(self):
        outcome = make_outcome()
        assert np.allclose(outcome.estimates, [[2.0], [2.0]])

    def test_estimates_sentinel(self):
        outcome = make_outcome(weights=np.array([[0.0], [2.0]]))
        assert outcome.estimates[0, 0] == UNDEFINED_RATIO

    def test_extra_estimates(self):
        outcome = make_outcome()
        assert np.allclose(outcome.extra_estimates("count"), [[1.0], [0.5]])

    def test_extra_estimates_unknown(self):
        with pytest.raises(KeyError, match="count"):
            make_outcome().extra_estimates("bogus")

    def test_message_totals(self):
        outcome = make_outcome()
        assert outcome.total_messages == 42
        assert outcome.messages_per_node_per_step == pytest.approx(42 / 18)
        assert outcome.messages_per_node_per_wallclock_step == pytest.approx(42 / 20)

    def test_zero_steps_metrics(self):
        outcome = make_outcome(steps=0, active_node_steps=0)
        assert outcome.messages_per_node_per_step == 0.0
        assert outcome.messages_per_node_per_wallclock_step == 0.0

    def test_shape_properties(self):
        outcome = make_outcome()
        assert outcome.num_nodes == 2
        assert outcome.num_components == 1


class TestErrorHierarchy:
    def test_convergence_error_payload(self):
        error = ConvergenceError(steps=17, unconverged=3)
        assert error.steps == 17
        assert error.unconverged == 3
        assert "17" in str(error)
        assert "3 nodes" in str(error)

    def test_hierarchy(self):
        assert issubclass(ConvergenceError, GossipError)
        assert issubclass(MassConservationError, GossipError)
        assert issubclass(GossipError, RuntimeError)

    def test_catchable_as_gossip_error(self):
        with pytest.raises(GossipError):
            raise ConvergenceError(1, 1)
