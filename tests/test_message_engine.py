"""Unit tests for the protocol-faithful message-level engine."""

import numpy as np
import pytest

from repro.core.engine import GossipNode, MessageLevelGossip, PushMessage
from repro.core.errors import ConvergenceError
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph


class TestGossipNode:
    def _node(self, value=2.0, weight=1.0, k=1):
        return GossipNode(
            0,
            np.array([1, 2]),
            k,
            np.array([value]),
            np.array([weight]),
            {},
        )

    def test_make_shares_splits_evenly(self):
        node = self._node(value=3.0, weight=1.5, k=2)
        self_share, out_share = node.make_shares()
        assert self_share.value[0] == pytest.approx(1.0)
        assert out_share.weight[0] == pytest.approx(0.5)
        # Local state emptied; self-share returns via the mailbox.
        assert node.value[0] == 0.0

    def test_absorb_inbox_sums(self):
        node = self._node(value=0.0, weight=0.0)
        node.inbox.append(PushMessage(0, np.array([1.0]), np.array([0.5])))
        node.inbox.append(PushMessage(5, np.array([2.0]), np.array([0.5])))
        heard = node.absorb_inbox()
        assert heard  # sender 5 != self
        assert node.value[0] == 3.0
        assert node.weight[0] == 1.0

    def test_absorb_only_self_not_external(self):
        node = self._node()
        node.inbox.append(PushMessage(0, np.array([1.0]), np.array([1.0])))
        assert not node.absorb_inbox()

    def test_convergence_requires_patience(self):
        node = self._node()
        live = np.array([True])
        assert not node.check_convergence(0.1, True, live, patience=2)
        assert node.check_convergence(0.1, True, live, patience=2)
        assert node.converged

    def test_zero_weight_cannot_converge(self):
        node = self._node(value=0.0, weight=0.0)
        assert not node.check_convergence(0.1, True, np.array([True]), patience=1)

    def test_stop_needs_all_neighbors(self):
        node = self._node()
        node.converged = True
        node.refresh_stopped()
        assert not node.stopped
        node.note_neighbor_converged(1)
        node.note_neighbor_converged(2)
        node.refresh_stopped()
        assert node.stopped


class TestMessageLevelGossip:
    def test_average_on_example_network(self, fig2_network):
        engine = MessageLevelGossip(fig2_network, rng=1)
        values = np.arange(10.0)
        out = engine.run(values, np.ones(10), xi=1e-8)
        assert np.allclose(out.estimates, 4.5, atol=1e-3)

    def test_mass_conserved(self, fig2_network):
        engine = MessageLevelGossip(fig2_network, rng=2)
        values = np.arange(10.0)
        out = engine.run(values, np.ones(10), xi=1e-6)
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-9)
        assert float(out.weights.sum()) == pytest.approx(10.0, rel=1e-9)

    def test_extras_supported(self, fig2_network):
        engine = MessageLevelGossip(fig2_network, rng=3)
        out = engine.run(
            np.arange(10.0), np.ones(10), xi=1e-7, extras={"count": np.ones(10)}
        )
        assert np.allclose(out.extra_estimates("count"), 1.0, atol=1e-2)

    def test_history_tracks_each_step(self, fig2_network):
        engine = MessageLevelGossip(fig2_network, rng=4)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-4, track_history=True)
        assert len(out.ratio_history) == out.steps

    def test_max_steps_raises(self, fig2_network):
        engine = MessageLevelGossip(fig2_network, rng=5)
        with pytest.raises(ConvergenceError):
            engine.run(np.arange(10.0), np.ones(10), xi=1e-12, max_steps=2)

    def test_packet_loss_still_converges(self, fig2_network):
        loss = PacketLossModel(0.2, rng=6)
        engine = MessageLevelGossip(fig2_network, loss_model=loss, rng=7)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-7)
        assert np.allclose(out.estimates, 4.5, atol=1e-2)
        assert float(out.values.sum()) == pytest.approx(45.0, rel=1e-9)

    def test_message_accounting(self, fig2_network):
        engine = MessageLevelGossip(fig2_network, rng=8)
        out = engine.run(np.arange(10.0), np.ones(10), xi=1e-5)
        assert out.push_messages > 0
        assert out.protocol_messages >= int(fig2_network.degrees.sum())
        assert out.active_node_steps > 0

    def test_isolated_node(self):
        g = Graph(3, [(0, 1)])
        engine = MessageLevelGossip(g, rng=9)
        out = engine.run(np.array([1.0, 3.0, 7.0]), np.ones(3), xi=1e-8)
        assert out.estimates[2, 0] == pytest.approx(7.0)
        assert np.allclose(out.estimates[:2, 0], 2.0, atol=1e-3)

    def test_shape_validation(self, triangle):
        engine = MessageLevelGossip(triangle, rng=0)
        with pytest.raises(ValueError):
            engine.run(np.ones(4), np.ones(3))
        with pytest.raises(ValueError):
            engine.run(np.ones(3), np.ones(3), extras={"x": np.ones(4)})

    def test_rejects_wrong_push_counts_shape(self, triangle):
        with pytest.raises(ValueError):
            MessageLevelGossip(triangle, push_counts=np.array([1, 1]))
