"""Unit tests for the multi-round gossip manager."""

import pytest

from repro.core.rounds import GossipRoundManager
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.trust.matrix import random_trust_matrix


@pytest.fixture
def world():
    graph = preferential_attachment_graph(40, m=2, rng=0)
    trust = random_trust_matrix(graph, rng=1)
    return graph, trust


class TestDeltaRepush:
    def test_first_round_pushes_everything(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, rng=2)
        record = manager.run_round(trust, targets=[0, 1])
        assert record.changed_opinions == record.total_opinions
        assert record.churn_fraction == 1.0

    def test_unchanged_opinions_not_repushed(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, rng=3)
        manager.run_round(trust, targets=[0])
        record = manager.run_round(trust, targets=[0])  # identical snapshot
        assert record.changed_opinions == 0

    def test_only_material_changes_repush(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, delta=0.05, rng=4)
        manager.run_round(trust, targets=[0])
        # One small move (below delta), one large move (above delta).
        items = list(trust.items())
        (obs_a, tgt_a, val_a), (obs_b, tgt_b, val_b) = items[0], items[1]
        trust.set(obs_a, tgt_a, min(1.0, val_a + 0.01))
        trust.set(obs_b, tgt_b, min(1.0, val_b + 0.5) if val_b < 0.5 else max(0.0, val_b - 0.5))
        record = manager.run_round(trust, targets=[0])
        assert record.changed_opinions == 1

    def test_pending_announcements_preview(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, rng=5)
        assert manager.pending_announcements(trust) == trust.num_observations
        manager.run_round(trust, targets=[0])
        assert manager.pending_announcements(trust) == 0


class TestAdaptiveGap:
    def test_quiet_network_long_gap(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, base_gap=25.0, max_gap=100.0, rng=6)
        manager.run_round(trust, targets=[0])
        record = manager.run_round(trust, targets=[0])  # zero churn
        assert record.next_gap == 100.0  # clamped at max

    def test_churning_network_short_gap(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, base_gap=25.0, min_gap=5.0, rng=7)
        record = manager.run_round(trust, targets=[0])  # 100% churn
        assert record.next_gap == 5.0  # clamped at min

    def test_constant_mode(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, adaptive=False, base_gap=25.0, rng=8)
        record = manager.run_round(trust, targets=[0])
        assert record.next_gap == 25.0

    def test_clock_advances_by_gap(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, adaptive=False, base_gap=25.0, rng=9)
        manager.run_round(trust, targets=[0])
        assert manager.clock == 25.0
        manager.run_round(trust, targets=[0])
        assert manager.clock == 50.0

    def test_history_recorded(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, rng=10)
        manager.run_round(trust, targets=[0])
        manager.run_round(trust, targets=[0])
        assert len(manager.history) == 2
        assert manager.history[0].started_at == 0.0


class TestValidation:
    def test_bad_parameters(self, world):
        graph, _ = world
        with pytest.raises(ValueError):
            GossipRoundManager(graph, delta=-1.0)
        with pytest.raises(ValueError):
            GossipRoundManager(graph, base_gap=0.0)
        with pytest.raises(ValueError):
            GossipRoundManager(graph, min_gap=50.0, base_gap=25.0, max_gap=100.0)

    def test_round_results_are_aggregations(self, world):
        graph, trust = world
        manager = GossipRoundManager(graph, rng=11)
        record = manager.run_round(trust, targets=[3, 7])
        assert record.result.reputations.shape == (40, 2)
        assert record.result.max_absolute_error < 0.05
