"""Service-layer contract tests.

Covers the four serving guarantees ``docs/service.md`` documents:
explicit backpressure at ingest, immutable versioned snapshots,
lock-free monotonic reads under a live fold loop, and byte-identical
deterministic replay regardless of batch size.
"""

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.service import (
    BackpressureError,
    ReportQueue,
    ReputationService,
    ReputationSnapshot,
    ServiceLoop,
    TrustReport,
    UnknownPeerError,
    canonical_json,
    read_trace,
    replay_trace,
)
from repro.service.httpd import make_server, start_background

DATA_DIR = Path(__file__).parent / "data"
TRACE_PATH = DATA_DIR / "service_trace.jsonl"
GOLDEN_REPLAY = DATA_DIR / "golden" / "service_replay.json"


# -- queue ------------------------------------------------------------------


def test_queue_sheds_at_watermark_then_resumes():
    queue = ReportQueue(high_watermark=3)
    for i in range(3):
        queue.put(TrustReport(0, i + 1, 0.5))
    with pytest.raises(BackpressureError) as excinfo:
        queue.put(TrustReport(0, 9, 0.5))
    assert excinfo.value.pending == 3
    assert excinfo.value.high_watermark == 3
    assert queue.rejected_total == 1

    drained = queue.drain(2)
    assert [r.target for r in drained] == [1, 2]  # FIFO
    queue.put(TrustReport(0, 9, 0.5))  # below the mark again -> accepted
    assert queue.pending == 2
    assert queue.accepted_total == 4


def test_queue_put_many_is_prefix_greedy():
    queue = ReportQueue(high_watermark=4)
    batch = [TrustReport(0, t, 0.5) for t in range(1, 7)]
    assert queue.put_many(batch) == 4
    assert queue.pending == 4
    assert queue.rejected_total == 2
    # The accepted reports are exactly the batch prefix, in order.
    assert [r.target for r in queue.drain(10)] == [1, 2, 3, 4]


# -- snapshot immutability ---------------------------------------------------


def _example_snapshot():
    return ReputationSnapshot(
        version=1,
        epoch=1,
        created_at=1,
        peer_ids=np.array([0, 1, 4]),
        reputations=np.array([0.2, 0.9, 0.5]),
        network_estimate=0.5,
        staleness=0,
        reports_folded=3,
    )


def test_snapshot_arrays_are_read_only():
    snap = _example_snapshot()
    with pytest.raises(ValueError):
        snap.reputations[0] = 1.0
    with pytest.raises(ValueError):
        snap.peer_ids[0] = 7


def test_snapshot_dataclass_is_frozen():
    snap = _example_snapshot()
    with pytest.raises(dataclasses.FrozenInstanceError):
        snap.version = 2


def test_snapshot_constructor_copies_its_inputs():
    reps = np.array([0.2, 0.9, 0.5])
    snap = ReputationSnapshot(
        version=1, epoch=1, created_at=1,
        peer_ids=np.array([0, 1, 4]), reputations=reps,
        network_estimate=0.5, staleness=0, reports_folded=3,
    )
    reps[0] = 123.0  # mutating the caller's array must not leak in
    assert snap.get(0) == 0.2


# -- service semantics -------------------------------------------------------


def test_staleness_is_pending_at_publication():
    service = ReputationService(40, seed=3, batch_size=30, high_watermark=1_000)
    service.submit_batch([TrustReport(0, 1 + (i % 30), 0.5) for i in range(100)])
    record = service.tick()
    assert record.reports_folded == 30
    assert record.staleness == 70
    assert service.snapshot().staleness == 70


def test_versions_increment_by_one_per_tick():
    service = ReputationService(40, seed=3)
    assert service.snapshot().version == 0
    versions = [service.tick().version for _ in range(4)]
    assert versions == [1, 2, 3, 4]


def test_unknown_peer_rejected_with_plain_message():
    service = ReputationService(40, seed=3)
    with pytest.raises(UnknownPeerError) as excinfo:
        service.submit_report(0, 10_000, 0.5)
    assert "10000" in str(excinfo.value)
    assert not str(excinfo.value).startswith("'")  # KeyError repr-quoting defeated


def test_monotonic_versions_under_concurrent_readers():
    service = ReputationService(60, seed=5, batch_size=64)
    loop = ServiceLoop(service)
    errors = []
    stop = threading.Event()

    def reader():
        last = -1
        while not stop.is_set():
            snap = service.snapshot()
            if snap.version < last:
                errors.append((last, snap.version))
                return
            last = snap.version
            # The snapshot an earlier read returned must stay coherent
            # even while the loop swaps new ones in.
            if snap.num_peers and not np.all(np.isfinite(snap.reputations)):
                errors.append(("non-finite", snap.version))
                return

    readers = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
    loop.start()
    for thread in readers:
        thread.start()
    deadline = time.monotonic() + 5.0
    try:
        while service.snapshot().version < 20 and time.monotonic() < deadline:
            service.submit_batch(
                [TrustReport(i % 60, (i + 1) % 60, 0.5) for i in range(32)]
            )
            time.sleep(0.005)
    finally:
        stop.set()
        loop.stop()
        for thread in readers:
            thread.join(timeout=5.0)
    assert not errors
    assert service.snapshot().version >= 20


# -- deterministic replay ----------------------------------------------------


def test_replay_byte_identical_across_batch_sizes():
    reports = read_trace(TRACE_PATH)
    small = canonical_json(replay_trace(reports, seed=7, batch_size=5))
    large = canonical_json(replay_trace(reports, seed=7, batch_size=64))
    assert small == large


def test_replay_matches_committed_golden_record():
    reports = read_trace(TRACE_PATH)
    record = canonical_json(replay_trace(reports, seed=7, batch_size=64))
    assert record == GOLDEN_REPLAY.read_text()


def test_replay_seed_changes_verification_stream():
    # Served opinions are a pure fold of the stream (seed-invariant by
    # design); the seed drives topology growth and the gossip
    # verification round, so those must move with it.
    reports = read_trace(TRACE_PATH)[:50]
    a = replay_trace(reports, seed=7, batch_size=16)
    b = replay_trace(reports, seed=8, batch_size=16)
    assert a["snapshot"]["digest"] == b["snapshot"]["digest"]
    assert a["verify"]["estimates_sha256"] != b["verify"]["estimates_sha256"]


# -- HTTP frontend -----------------------------------------------------------


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_frontend_smoke():
    service = ReputationService(40, seed=5, batch_size=64, high_watermark=8)
    server, loop, _thread = start_background(service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        status, health = _get(base, "/healthz")
        assert status == 200 and health["status"] == "ok"

        status, body = _post(base, "/reports", {"o": 0, "t": 3, "v": 0.9})
        assert status == 202 and body["accepted"] == 1

        status, body = _post(base, "/reports", {"o": 0, "t": 9_999, "v": 0.9})
        assert status == 404

        deadline = time.monotonic() + 5.0
        while service.snapshot().reports_folded < 1 and time.monotonic() < deadline:
            time.sleep(0.01)

        status, info = _get(base, "/snapshot")
        assert status == 200 and info["reports_folded"] >= 1

        status, body = _get(base, "/reputation/3")
        assert status == 200 and body["reputation"] > 0.0

        status, _ = _get(base, "/top?k=3")
        assert status == 200
    finally:
        server.shutdown()
        loop.stop()


def test_http_backpressure_returns_429():
    # No loop draining: the queue fills to its tiny watermark and sheds.
    service = ReputationService(40, seed=5, high_watermark=4)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        batch = [{"o": 0, "t": 1 + (i % 30), "v": 0.5} for i in range(6)]
        status, body = _post(base, "/reports", batch)
        assert status == 429
        assert body["accepted"] == 4 and body["submitted"] == 6
    finally:
        server.shutdown()
