"""Smoke + shape tests for every experiment in the registry.

Each experiment runs at a reduced scale and its *qualitative shape* —
the thing the paper's table/figure shows — is asserted, not exact
numbers.
"""

import numpy as np
import pytest

from repro.experiments import eq17, fig3, fig4, fig5, fig6, table1, table2, theorem52
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import ExperimentResult


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "theorem52",
            "eq17",
            "xi_accuracy",
            "attack_slander",
            "attack_sybil",
            "tournament",
        }

    def test_lookup_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="available"):
            get_experiment("nope")

    def test_lookup_known(self):
        assert get_experiment("table1") is table1.run


class TestTable1:
    def test_converges_to_initial_mean(self):
        result = table1.run(xi=0.005, seed=1)
        assert isinstance(result, ExperimentResult)
        final_row = result.rows[-1]
        assert final_row[0] == "final"
        values = np.array(final_row[1:], dtype=float)
        assert np.allclose(values, 0.44977, atol=0.02)

    def test_k_row_matches_paper(self):
        result = table1.run(seed=2)
        k_row = result.rows[1]
        assert k_row[1:] == [1, 1, 3, 1, 1, 1, 1, 1, 1, 1]

    def test_renders_text(self):
        text = table1.run(seed=3).to_text()
        assert "node 1" in text
        assert "Table 1" in text


class TestTable2:
    def test_metric_in_paper_band(self):
        result = table2.run(sizes=(100, 300), xis=(1e-2, 1e-4), seed=4)
        for row in result.rows:
            for value in row[1:]:
                assert 1.0 < value < 2.0

    def test_decreases_with_tighter_xi(self):
        result = table2.run(sizes=(300,), xis=(1e-2, 1e-5), seed=5)
        row = result.rows[0]
        assert row[1] > row[2]


class TestFig3:
    def test_differential_beats_normal_push_steps(self):
        result = fig3.run(sizes=(500, 1000), xis=(1e-3,), seed=6)
        for row in result.rows:
            n, _, diff_steps, push_steps = row[0], row[1], row[2], row[3]
            if n >= 1000:
                assert diff_steps < push_steps

    def test_steps_grow_sublinearly(self):
        result = fig3.run(sizes=(100, 1000), xis=(1e-3,), seed=7)
        steps_small = result.rows[0][2]
        steps_large = result.rows[1][2]
        assert steps_large < steps_small * 10  # 10x nodes, far less than 10x steps

    def test_tighter_xi_needs_more_steps(self):
        result = fig3.run(sizes=(500,), xis=(1e-2, 1e-5), seed=8)
        assert result.rows[0][2] < result.rows[1][2]


class TestFig4:
    def test_loss_increases_steps_mildly(self):
        result = fig4.run(num_nodes=500, loss_probabilities=(0.0, 0.3), xis=(1e-4,), seed=9)
        clean = result.rows[0][1]
        lossy = result.rows[1][1]
        assert lossy >= clean  # loss never helps
        assert lossy < clean * 4  # but degrades gracefully


class TestFig5:
    def test_rms_grows_with_colluding_fraction(self):
        result = fig5.run(
            num_nodes=120,
            fractions=(0.1, 0.5),
            group_sizes=(5,),
            use_gossip=False,
            seed=10,
        )
        low, high = result.rows[0][1], result.rows[1][1]
        assert high > low

    def test_group_size_effect_small(self):
        result = fig5.run(
            num_nodes=120,
            fractions=(0.3,),
            group_sizes=(2, 10),
            use_gossip=False,
            seed=11,
        )
        row = result.rows[0]
        g2, g10 = row[1], row[3]
        assert g2 == pytest.approx(g10, rel=0.5)  # "small difference"


class TestFig6:
    def test_individual_collusion_bounded(self):
        result = fig6.run(num_nodes=120, fractions=(0.1, 0.3), use_gossip=False, seed=12)
        for row in result.rows:
            assert row[2] < 1.0  # low fractions stay well-controlled

    def test_monotone_in_fraction(self):
        result = fig6.run(num_nodes=120, fractions=(0.1, 0.5), use_gossip=False, seed=13)
        assert result.rows[1][2] > result.rows[0][2]


class TestTheorem52:
    def test_psi_zero_is_n_minus_one(self):
        result = theorem52.run(num_nodes=64, steps=10, seed=14)
        assert result.rows[0][1] == pytest.approx(63.0)
        assert result.rows[0][3] == pytest.approx(63.0)

    def test_geometric_decay(self):
        result = theorem52.run(num_nodes=64, steps=12, seed=15)
        psi = [row[1] for row in result.rows]
        assert psi[-1] < psi[0] / 20


class TestEq17:
    def test_measured_matches_predicted(self):
        result = eq17.run(num_nodes=150, fraction=0.2, group_size=4, seed=16)
        assert len(result.rows) > 0
        for row in result.rows:
            assert row[4] < 1e-6  # |measured - predicted|
