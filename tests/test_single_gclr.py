"""Unit tests for Algorithm 2 (single-node GCLR aggregation)."""

import numpy as np
import pytest

from repro.core.single_gclr import (
    aggregate_single_gclr,
    neighbor_correction_terms,
    pick_designated_node,
    true_single_gclr,
)
from repro.core.weights import WeightParams
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix


class TestNeighborCorrections:
    def test_hand_computed(self):
        # 0 - 1 - 2 path; node 1 trusts 0 at 1.0; 0 opined about target 2.
        g = Graph(3, [(0, 1), (1, 2)])
        t = TrustMatrix(3)
        t.set(1, 0, 1.0)  # estimator 1 fully trusts neighbour 0
        t.set(0, 2, 0.8)  # neighbour 0's feedback about target 2
        params = WeightParams(a=4.0, b=1.0)
        y_hat, w_excess = neighbor_correction_terms(g, t, target=2, params=params)
        assert w_excess[1] == pytest.approx(3.0)  # 4^1 - 1
        assert y_hat[1] == pytest.approx(3.0 * 0.8)
        assert w_excess[0] == 0.0  # node 0 trusts nobody

    def test_non_neighbors_excluded(self):
        g = Graph(3, [(0, 1), (1, 2)])
        t = TrustMatrix(3)
        t.set(0, 2, 0.9)  # node 0 trusts node 2 — but 2 is NOT its neighbour
        y_hat, w_excess = neighbor_correction_terms(g, t, 1, WeightParams())
        assert w_excess[0] == 0.0

    def test_zero_trust_neighbor_no_excess(self):
        g = Graph(2, [(0, 1)])
        t = TrustMatrix(2)
        t.set(0, 1, 0.0)
        _, w_excess = neighbor_correction_terms(g, t, 1, WeightParams())
        assert w_excess[0] == 0.0


class TestTrueGclr:
    def test_weights_one_degenerates_to_global_mean(self, pa_graph_small, small_trust):
        # a=1 makes every weight 1: eq. 5 degenerates to eq. 1.
        params = WeightParams(a=1.0, b=1.0)
        rep = true_single_gclr(pa_graph_small, small_trust, 5, params, "observers")
        expected = small_trust.column_mean_over_observers(5)
        assert np.allclose(rep, expected)

    def test_all_convention_denominator(self, pa_graph_small, small_trust):
        params = WeightParams(a=1.0, b=1.0)
        rep = true_single_gclr(pa_graph_small, small_trust, 5, params, "all")
        assert np.allclose(rep, small_trust.column_mean_over_all(5))

    def test_varies_across_estimators(self, pa_graph_small, small_trust):
        rep = true_single_gclr(pa_graph_small, small_trust, 5, WeightParams(), "observers")
        assert float(rep.std()) > 0.0  # GCLR is per-node by design


class TestDesignatedNode:
    def test_picks_lowest_connected(self):
        g = Graph(3, [(1, 2)])
        assert pick_designated_node(g) == 1

    def test_rejects_edgeless(self):
        with pytest.raises(ValueError):
            pick_designated_node(Graph(3, []))


class TestAggregation:
    def test_gossip_matches_exact(self, pa_graph_small, small_trust):
        result = aggregate_single_gclr(
            pa_graph_small, small_trust, target=5, xi=1e-7, rng=1
        )
        assert result.max_absolute_error < 0.02

    def test_message_engine(self, pa_graph_small, small_trust):
        result = aggregate_single_gclr(
            pa_graph_small, small_trust, target=5, xi=1e-7, rng=2, engine="message"
        )
        assert result.max_absolute_error < 0.02

    def test_sum_and_count_estimates(self, pa_graph_small, small_trust):
        result = aggregate_single_gclr(
            pa_graph_small, small_trust, target=5, xi=1e-8, rng=3
        )
        true_sum = small_trust.column_sum(5)
        true_count = len(small_trust.observers_of(5))
        assert np.allclose(result.global_sum_estimates, true_sum, rtol=0.02)
        assert np.allclose(result.observer_count_estimates, true_count, rtol=0.02)

    def test_all_denominator_convention(self, pa_graph_small, small_trust):
        result = aggregate_single_gclr(
            pa_graph_small,
            small_trust,
            target=5,
            xi=1e-7,
            rng=4,
            denominator_convention="all",
        )
        assert result.max_absolute_error < 0.01

    def test_custom_designated_node(self, pa_graph_small, small_trust):
        result = aggregate_single_gclr(
            pa_graph_small, small_trust, target=5, xi=1e-7, rng=5, designated_node=10
        )
        assert result.max_absolute_error < 0.02

    def test_rejects_isolated_designated(self, small_trust):
        g = Graph(60, [(i, i + 1) for i in range(58)])  # node 59 isolated
        with pytest.raises(ValueError, match="isolated"):
            aggregate_single_gclr(g, small_trust, target=5, designated_node=59)

    def test_rejects_bad_convention(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="denominator_convention"):
            aggregate_single_gclr(
                pa_graph_small, small_trust, 5, denominator_convention="bogus"
            )

    def test_rejects_bad_engine(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="engine"):
            aggregate_single_gclr(pa_graph_small, small_trust, 5, engine="bogus")

    def test_rejects_size_mismatch(self, pa_graph_small):
        with pytest.raises(ValueError, match="nodes"):
            aggregate_single_gclr(pa_graph_small, TrustMatrix(5), 1)
