"""Cross-module integration tests.

These are the load-bearing checks of the reproduction: the two engines
implement one semantics, gossip reaches the closed-form fixpoints, and
the attack/defence stack composes end to end.
"""

import numpy as np
import pytest

from repro.attacks.collusion import apply_collusion, group_colluders, select_colluders
from repro.baselines.gossip_trust import unweighted_global_estimate
from repro.core.engine import MessageLevelGossip
from repro.core.single_gclr import aggregate_single_gclr
from repro.core.vector_engine import VectorGossipEngine
from repro.core.vector_gclr import aggregate_vector_gclr, true_vector_gclr
from repro.core.weights import WeightParams
from repro.analysis.metrics import average_rms_error
from repro.network.churn import PacketLossModel
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.trust.matrix import complete_trust_matrix, random_trust_matrix


class TestEngineEquivalence:
    """The vector and message engines implement the same update rule."""

    def test_same_limit_on_example_network(self, fig2_network):
        values = np.asarray([0.6, 0.3, 0.4, 0.5, 0.3, 0.6, 0.1, 0.6, 0.4, 0.7])
        weights = np.ones(10)
        vector = VectorGossipEngine(fig2_network, rng=1).run(values, weights, xi=1e-9)
        message = MessageLevelGossip(fig2_network, rng=2).run(values, weights, xi=1e-9)
        assert np.allclose(vector.estimates, values.mean(), atol=1e-4)
        assert np.allclose(message.estimates, values.mean(), atol=1e-4)

    def test_comparable_step_counts(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        values = np.random.default_rng(0).random(n)
        weights = np.ones(n)
        vector = VectorGossipEngine(pa_graph_small, rng=3).run(values, weights, xi=1e-5)
        message = MessageLevelGossip(pa_graph_small, rng=4).run(values, weights, xi=1e-5)
        # Same protocol, same topology: step counts agree within 2x.
        assert 0.5 < vector.steps / message.steps < 2.0

    def test_same_mass_accounting(self, pa_graph_small):
        n = pa_graph_small.num_nodes
        values = np.random.default_rng(1).random(n)
        for engine in (
            VectorGossipEngine(pa_graph_small, rng=5),
            MessageLevelGossip(pa_graph_small, rng=6),
        ):
            out = engine.run(values, np.ones(n), xi=1e-6)
            assert float(out.values.sum()) == pytest.approx(float(values.sum()), rel=1e-9)
            assert float(out.weights.sum()) == pytest.approx(n, rel=1e-9)


class TestGossipReachesFixpoints:
    """Gossip estimates converge to the closed-form eq.-6 values."""

    def test_single_gclr_both_engines(self, pa_graph_small, small_trust):
        for engine_name in ("vector", "message"):
            result = aggregate_single_gclr(
                pa_graph_small, small_trust, target=9, xi=1e-8, rng=7, engine=engine_name
            )
            assert result.max_absolute_error < 0.01, engine_name

    def test_vector_gclr_matches_exact(self, pa_graph_small, small_trust):
        params = WeightParams()
        targets = [1, 5, 9]
        result = aggregate_vector_gclr(
            pa_graph_small, small_trust, targets=targets, params=params, xi=1e-8, rng=8
        )
        exact = true_vector_gclr(pa_graph_small, small_trust, targets, params)
        assert np.allclose(result.reputations, exact, atol=0.01)


class TestCollusionPipeline:
    """Attack -> aggregation -> metric, end to end (Figures 5/6 path)."""

    def test_gossip_and_exact_rms_agree(self):
        graph = preferential_attachment_graph(80, m=2, rng=20)
        trust = complete_trust_matrix(80, rng=21)
        colluders = select_colluders(80, 0.3, rng=22)
        attack = group_colluders(colluders, 5)
        poisoned = apply_collusion(trust, attack)
        params = WeightParams()
        targets = list(range(30))

        clean_exact = true_vector_gclr(graph, trust, targets, params, "all")
        dirty_exact = true_vector_gclr(graph, poisoned, targets, params, "all")
        rms_exact = average_rms_error(dirty_exact, clean_exact)

        clean_gossip = aggregate_vector_gclr(
            graph, trust, targets=targets, params=params,
            denominator_convention="all", xi=1e-6, rng=23,
        ).reputations
        dirty_gossip = aggregate_vector_gclr(
            graph, poisoned, targets=targets, params=params,
            denominator_convention="all", xi=1e-6, rng=23,
        ).reputations
        rms_gossip = average_rms_error(dirty_gossip, clean_gossip)

        assert rms_gossip == pytest.approx(rms_exact, rel=0.15)

    def test_collusion_moves_colluder_reputation_up(self):
        trust = complete_trust_matrix(60, rng=25)
        # One clique: intra-group praise with no rival group badmouthing
        # the members (split groups badmouth each other too).
        attack = group_colluders(np.arange(10), 10)
        poisoned = apply_collusion(trust, attack)
        clean = unweighted_global_estimate(trust)
        dirty = unweighted_global_estimate(poisoned)
        colluders = list(attack.colluders)
        honest = [i for i in range(60) if i not in attack.colluders]
        # Colluders gain (praise), honest nodes lose (withheld opinions).
        assert float(np.mean(dirty[colluders] - clean[colluders])) > 0
        assert float(np.mean(dirty[honest] - clean[honest])) < 0


class TestChurnPipeline:
    def test_lossy_gossip_still_accurate(self, pa_graph_medium):
        n = pa_graph_medium.num_nodes
        values = np.random.default_rng(2).random(n)
        loss = PacketLossModel(0.25, rng=30)
        engine = VectorGossipEngine(pa_graph_medium, loss_model=loss, rng=31)
        out = engine.run(values, np.ones(n), xi=1e-7)
        assert np.allclose(out.estimates, values.mean(), atol=5e-3)

    def test_loss_costs_steps(self, pa_graph_medium):
        n = pa_graph_medium.num_nodes
        values = np.random.default_rng(3).random(n)
        clean = VectorGossipEngine(pa_graph_medium, rng=32).run(values, np.ones(n), xi=1e-6)
        lossy_model = PacketLossModel(0.4, rng=33)
        lossy = VectorGossipEngine(pa_graph_medium, loss_model=lossy_model, rng=32).run(
            values, np.ones(n), xi=1e-6
        )
        assert lossy.steps >= clean.steps


class TestSparseVsDenseTrust:
    def test_algorithms_handle_both(self, pa_graph_small):
        sparse = random_trust_matrix(pa_graph_small, rng=40)
        dense = complete_trust_matrix(60, rng=41)
        for trust in (sparse, dense):
            result = aggregate_single_gclr(pa_graph_small, trust, target=5, xi=1e-7, rng=42)
            assert result.max_absolute_error < 0.02
