"""Documentation integrity tests.

Two failure modes this file pins down:

1. **Dead links** — every relative markdown link (and in-page anchor)
   in ``README.md`` and ``docs/`` must resolve.
2. **Registry drift** — the tables in ``docs/architecture.md`` (and the
   algorithm catalogue in ``docs/tournament.md``) must list exactly what
   ``available_backends()`` / ``available_attacks()`` /
   ``available_algorithms()`` / ``available_scenarios()`` expose.
   Registries are snapshotted in a subprocess because the doctest suite
   registers throwaway ``demo`` entries in-process.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

LINK_PATTERN = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s", "-", text)


def _anchors(path: Path) -> set:
    return {
        _slugify(line.lstrip("#"))
        for line in path.read_text().splitlines()
        if line.startswith("#")
    }


def _links(path: Path):
    text = path.read_text()
    # Strip fenced code blocks: shell snippets contain (...) that are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return LINK_PATTERN.findall(text)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_markdown_links_resolve(doc):
    broken = []
    for target in _links(doc):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if not resolved.exists():
            broken.append(f"{target}: file {resolved} does not exist")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
            broken.append(f"{target}: no heading slugs to #{anchor} in {resolved.name}")
    assert not broken, f"broken links in {doc.name}:\n" + "\n".join(broken)


# -- registry drift ----------------------------------------------------------


def _registry_snapshot():
    """Backends/attacks/scenarios from a fresh interpreter (clean registries)."""
    code = (
        "import json\n"
        "from repro import available_backends, available_attacks, available_algorithms\n"
        "from repro.scenarios import available_scenarios\n"
        "print(json.dumps({'backends': sorted(available_backends()),"
        " 'attacks': sorted(available_attacks()),"
        " 'algorithms': sorted(available_algorithms()),"
        " 'scenarios': sorted(available_scenarios())}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    output = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=REPO_ROOT,
    )
    return json.loads(output.stdout)


def _table_first_names(section: str) -> set:
    """Canonical name per table row: the first backticked token of column 1."""
    names = set()
    for line in section.splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        match = re.search(r"`([^`]+)`", first_cell)
        if match and "." not in match.group(1):  # skip module-path tables
            names.add(match.group(1).strip('"'))
    return names


def _section(text: str, heading: str) -> str:
    start = text.index(heading)
    rest = text[start + len(heading):]
    next_heading = re.search(r"^## ", rest, flags=re.MULTILINE)
    return rest[: next_heading.start()] if next_heading else rest


@pytest.fixture(scope="module")
def registries():
    return _registry_snapshot()


@pytest.fixture(scope="module")
def architecture_text():
    return (REPO_ROOT / "docs" / "architecture.md").read_text()


def test_backend_table_matches_registry(registries, architecture_text):
    documented = _table_first_names(_section(architecture_text, "## Gossip backends"))
    assert documented == set(registries["backends"])


def test_attack_table_matches_registry(registries, architecture_text):
    documented = _table_first_names(_section(architecture_text, "## Attack families"))
    assert documented == set(registries["attacks"])


def test_scenario_table_matches_registry(registries, architecture_text):
    documented = _table_first_names(_section(architecture_text, "## Scenario catalogue"))
    assert documented == set(registries["scenarios"])


def test_algorithm_catalogue_matches_registry(registries):
    tournament = (REPO_ROOT / "docs" / "tournament.md").read_text()
    documented = _table_first_names(_section(tournament, "## Algorithm catalogue"))
    assert documented == set(registries["algorithms"])


def test_architecture_algorithm_table_matches_registry(registries, architecture_text):
    documented = _table_first_names(_section(architecture_text, "## Aggregation algorithms"))
    assert documented == set(registries["algorithms"])


def test_readme_backend_table_matches_registry(registries):
    readme = (REPO_ROOT / "README.md").read_text()
    documented = _table_first_names(_section(readme, "## Choosing a backend"))
    assert documented == set(registries["backends"])
