"""Unit tests for the sparse trust matrix."""

import numpy as np
import pytest

from repro.trust.matrix import TrustMatrix, complete_trust_matrix, random_trust_matrix


class TestBasics:
    def test_set_get(self):
        t = TrustMatrix(4)
        t.set(0, 1, 0.7)
        assert t.get(0, 1) == 0.7
        assert t.has(0, 1)

    def test_absent_defaults_to_zero(self):
        t = TrustMatrix(4)
        assert t.get(1, 2) == 0.0
        assert not t.has(1, 2)

    def test_overwrite(self):
        t = TrustMatrix(4)
        t.set(0, 1, 0.2)
        t.set(0, 1, 0.9)
        assert t.get(0, 1) == 0.9
        assert t.num_observations == 1

    def test_self_trust_rejected(self):
        t = TrustMatrix(4)
        with pytest.raises(ValueError, match="self-trust"):
            t.set(2, 2, 0.5)
        with pytest.raises(ValueError, match="self-trust"):
            t.get(2, 2)

    def test_out_of_range_rejected(self):
        t = TrustMatrix(4)
        with pytest.raises(ValueError):
            t.set(0, 9, 0.5)
        with pytest.raises(ValueError):
            t.get(9, 0)

    def test_value_out_of_bounds_rejected(self):
        t = TrustMatrix(4)
        with pytest.raises(ValueError):
            t.set(0, 1, 1.5)
        with pytest.raises(ValueError):
            t.set(0, 1, -0.1)

    def test_explicit_zero_is_an_observation(self):
        # Critical for gossip: a reported 0 carries weight 1.
        t = TrustMatrix(4)
        t.set(0, 1, 0.0)
        assert t.has(0, 1)
        assert 0 in t.observers_of(1)


class TestViews:
    def test_row_and_column(self):
        t = TrustMatrix(4)
        t.set(0, 1, 0.5)
        t.set(0, 2, 0.6)
        t.set(3, 1, 0.7)
        assert t.row(0) == {1: 0.5, 2: 0.6}
        assert t.column(1) == {0: 0.5, 3: 0.7}
        assert t.observers_of(1) == frozenset({0, 3})

    def test_row_is_a_copy(self):
        t = TrustMatrix(3)
        t.set(0, 1, 0.5)
        row = t.row(0)
        row[1] = 0.9
        assert t.get(0, 1) == 0.5

    def test_column_sums_and_means(self):
        t = TrustMatrix(4)
        t.set(0, 3, 0.4)
        t.set(1, 3, 0.8)
        assert t.column_sum(3) == pytest.approx(1.2)
        assert t.column_mean_over_observers(3) == pytest.approx(0.6)
        assert t.column_mean_over_all(3) == pytest.approx(0.3)

    def test_empty_column_means(self):
        t = TrustMatrix(4)
        assert t.column_mean_over_observers(2) == 0.0
        assert t.column_mean_over_all(2) == 0.0

    def test_items_roundtrip(self):
        t = TrustMatrix(5)
        entries = {(0, 1, 0.1), (2, 3, 0.2), (4, 0, 0.3)}
        for observer, target, value in entries:
            t.set(observer, target, value)
        assert set(t.items()) == entries


class TestDiscard:
    def test_discard_removes(self):
        t = TrustMatrix(3)
        t.set(0, 1, 0.5)
        t.discard(0, 1)
        assert not t.has(0, 1)
        assert t.observers_of(1) == frozenset()
        assert t.num_observations == 0

    def test_discard_absent_is_noop(self):
        t = TrustMatrix(3)
        t.discard(0, 1)
        assert t.num_observations == 0


class TestConversions:
    def test_dense_roundtrip(self):
        t = TrustMatrix(4)
        t.set(0, 1, 0.5)
        t.set(2, 3, 0.25)
        dense = t.to_dense()
        assert dense.shape == (4, 4)
        assert dense[0, 1] == 0.5
        back = TrustMatrix.from_dense(dense)
        assert set(back.items()) == set(t.items())

    def test_from_dense_with_mask_keeps_zeros(self):
        dense = np.zeros((3, 3))
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 1] = True
        t = TrustMatrix.from_dense(dense, mask)
        assert t.has(0, 1)
        assert t.get(0, 1) == 0.0

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            TrustMatrix.from_dense(np.zeros((2, 3)))

    def test_observation_mask(self):
        t = TrustMatrix(3)
        t.set(0, 1, 0.0)
        mask = t.observation_mask()
        assert mask[0, 1]
        assert mask.sum() == 1

    def test_copy_is_independent(self):
        t = TrustMatrix(3)
        t.set(0, 1, 0.5)
        clone = t.copy()
        clone.set(0, 1, 0.9)
        assert t.get(0, 1) == 0.5


class TestGenerators:
    def test_random_edge_local(self, pa_graph_small):
        t = random_trust_matrix(pa_graph_small, rng=0)
        # Every edge yields mutual observations.
        assert t.num_observations == 2 * pa_graph_small.num_edges
        for observer, target, value in t.items():
            assert 0.0 <= value <= 1.0

    def test_random_with_edge_probability(self, pa_graph_small):
        t = random_trust_matrix(pa_graph_small, edge_probability=0.0, rng=0)
        assert t.num_observations == 0

    def test_random_extra_pairs(self, pa_graph_small):
        t = random_trust_matrix(pa_graph_small, edge_probability=0.0, extra_pairs=25, rng=0)
        # Overwrites can collapse pairs, so <= 25 but > 0.
        assert 0 < t.num_observations <= 25

    def test_random_reproducible(self, pa_graph_small):
        a = random_trust_matrix(pa_graph_small, rng=5)
        b = random_trust_matrix(pa_graph_small, rng=5)
        assert set(a.items()) == set(b.items())

    def test_complete_matrix(self):
        t = complete_trust_matrix(6, rng=1)
        assert t.num_observations == 6 * 5
        for target in range(6):
            assert len(t.observers_of(target)) == 5

    def test_complete_rejects_tiny(self):
        with pytest.raises(ValueError):
            complete_trust_matrix(1)
