"""Unit tests for variant 4 (simultaneous GCLR — the full DGT system)."""

import numpy as np
import pytest

from repro.core.single_gclr import true_single_gclr
from repro.core.vector_gclr import aggregate_vector_gclr, true_vector_gclr
from repro.core.weights import WeightParams
from repro.trust.matrix import TrustMatrix


class TestTrueVectorGclr:
    def test_columns_match_single_target_truth(self, pa_graph_small, small_trust):
        params = WeightParams()
        targets = [2, 8, 31]
        matrix = true_vector_gclr(pa_graph_small, small_trust, targets, params)
        for col, target in enumerate(targets):
            single = true_single_gclr(pa_graph_small, small_trust, target, params)
            assert np.allclose(matrix[:, col], single)

    def test_all_convention(self, pa_graph_small, small_trust):
        params = WeightParams()
        matrix = true_vector_gclr(pa_graph_small, small_trust, [5], params, "all")
        single = true_single_gclr(pa_graph_small, small_trust, 5, params, "all")
        assert np.allclose(matrix[:, 0], single)


class TestAggregation:
    def test_gossip_accuracy(self, pa_graph_small, small_trust):
        result = aggregate_vector_gclr(
            pa_graph_small, small_trust, targets=[0, 5, 9], xi=1e-7, rng=1
        )
        assert result.max_absolute_error < 0.02
        assert result.reputations.shape == (60, 3)

    def test_reputation_of_accessor(self, pa_graph_small, small_trust):
        result = aggregate_vector_gclr(
            pa_graph_small, small_trust, targets=[0, 5], xi=1e-6, rng=2
        )
        assert result.reputation_of(3, 5) == pytest.approx(
            float(result.reputations[3, 1])
        )
        with pytest.raises(KeyError):
            result.reputation_of(3, 42)

    def test_reputations_differ_across_estimators(self, pa_graph_small, small_trust):
        result = aggregate_vector_gclr(
            pa_graph_small, small_trust, targets=[5], xi=1e-7, rng=3
        )
        assert float(result.reputations[:, 0].std()) > 0.0

    def test_all_convention(self, pa_graph_small, small_trust):
        result = aggregate_vector_gclr(
            pa_graph_small,
            small_trust,
            targets=[5],
            xi=1e-7,
            rng=4,
            denominator_convention="all",
        )
        assert result.max_absolute_error < 0.01

    def test_rejects_bad_inputs(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="distinct"):
            aggregate_vector_gclr(pa_graph_small, small_trust, targets=[1, 1])
        with pytest.raises(ValueError, match="non-empty"):
            aggregate_vector_gclr(pa_graph_small, small_trust, targets=[])
        with pytest.raises(ValueError, match="targets"):
            aggregate_vector_gclr(pa_graph_small, small_trust, targets=[-1])
        with pytest.raises(ValueError, match="denominator_convention"):
            aggregate_vector_gclr(
                pa_graph_small, small_trust, targets=[1], denominator_convention="x"
            )
        with pytest.raises(ValueError, match="nodes"):
            aggregate_vector_gclr(pa_graph_small, TrustMatrix(3), targets=[1])

    def test_deterministic(self, pa_graph_small, small_trust):
        a = aggregate_vector_gclr(pa_graph_small, small_trust, targets=[3], xi=1e-5, rng=7)
        b = aggregate_vector_gclr(pa_graph_small, small_trust, targets=[3], xi=1e-5, rng=7)
        assert np.array_equal(a.reputations, b.reputations)

    def test_weights_one_equals_vector_global(self, pa_graph_small, small_trust):
        # a=1 collapses GCLR to the plain global mean over observers.
        result = aggregate_vector_gclr(
            pa_graph_small,
            small_trust,
            targets=[5],
            params=WeightParams(a=1.0),
            xi=1e-8,
            rng=8,
        )
        expected = small_trust.column_mean_over_observers(5)
        assert np.allclose(result.reputations[:, 0], expected, atol=0.01)
