"""Unit tests for the empirical potential-function instrument."""

import numpy as np
import pytest

from repro.analysis.potential import measure_potential_trajectory
from repro.core.differential import fixed_push_counts
from repro.network.preferential_attachment import preferential_attachment_graph


class TestPotentialTrajectory:
    def test_initial_potential_is_n_minus_one(self, fig2_network):
        trajectory = measure_potential_trajectory(fig2_network, steps=0, rng=1)
        assert trajectory.psi[0] == pytest.approx(9.0)  # N - 1 (eq. 28)

    def test_mass_conservation_audit(self, fig2_network):
        trajectory = measure_potential_trajectory(fig2_network, steps=15, rng=2)
        # Proposition A.1: each origin's contributions sum to 1; weights to N.
        assert np.allclose(trajectory.contribution_sums, 1.0)
        assert trajectory.weight_sum == pytest.approx(10.0)

    def test_potential_decays(self, fig2_network):
        trajectory = measure_potential_trajectory(fig2_network, steps=20, rng=3)
        assert trajectory.psi[-1] < trajectory.psi[0] / 10

    def test_first_step_roughly_halves(self):
        graph = preferential_attachment_graph(200, m=2, rng=4)
        trajectory = measure_potential_trajectory(graph, steps=1, rng=5)
        ratio = trajectory.psi[1] / trajectory.psi[0]
        # p-push with p >= 1 contracts by at least ~1/2 in expectation.
        assert ratio < 0.65

    def test_differential_decays_no_slower_than_plain(self):
        graph = preferential_attachment_graph(150, m=2, rng=6)
        steps = 15
        differential = measure_potential_trajectory(graph, steps, rng=7)
        plain = measure_potential_trajectory(
            graph, steps, push_counts=fixed_push_counts(graph, 1), rng=7
        )
        assert differential.psi[-1] <= plain.psi[-1] * 1.5  # noise margin

    def test_rejects_negative_steps(self, fig2_network):
        with pytest.raises(ValueError):
            measure_potential_trajectory(fig2_network, steps=-1)

    def test_rejects_bad_push_counts_shape(self, fig2_network):
        with pytest.raises(ValueError):
            measure_potential_trajectory(
                fig2_network, steps=1, push_counts=np.array([1, 1])
            )

    def test_isolated_node_keeps_contribution(self):
        from repro.network.graph import Graph

        g = Graph(3, [(0, 1)])
        trajectory = measure_potential_trajectory(g, steps=5, rng=8)
        assert np.allclose(trajectory.contribution_sums, 1.0)
