"""Unit tests for gossip state primitives."""

import numpy as np
import pytest

from repro.core.state import (
    MASS_RTOL,
    UNDEFINED_RATIO,
    GossipPair,
    assert_mass_conserved,
    ratios,
)


class TestGossipPair:
    def test_ratio(self):
        assert GossipPair(3.0, 2.0).ratio() == 1.5

    def test_zero_weight_sentinel(self):
        assert GossipPair(1.0, 0.0).ratio() == UNDEFINED_RATIO

    def test_split_conserves_mass(self):
        pair = GossipPair(6.0, 3.0)
        share = pair.split(3)
        assert share.value * 3 == pytest.approx(6.0)
        assert share.weight * 3 == pytest.approx(3.0)

    def test_split_rejects_zero_shares(self):
        with pytest.raises(ValueError):
            GossipPair(1.0, 1.0).split(0)

    def test_add(self):
        total = GossipPair(1.0, 0.5) + GossipPair(2.0, 1.5)
        assert total.value == 3.0
        assert total.weight == 2.0

    def test_iadd(self):
        pair = GossipPair(1.0, 1.0)
        pair += GossipPair(0.5, 0.25)
        assert pair.value == 1.5
        assert pair.weight == 1.25

    def test_split_preserves_ratio(self):
        pair = GossipPair(4.0, 2.0)
        assert pair.split(5).ratio() == pair.ratio()


class TestRatios:
    def test_elementwise(self):
        out = ratios(np.array([2.0, 3.0]), np.array([1.0, 2.0]))
        assert np.allclose(out, [2.0, 1.5])

    def test_sentinel_on_zero_weight(self):
        out = ratios(np.array([1.0, 2.0]), np.array([0.0, 1.0]))
        assert out[0] == UNDEFINED_RATIO
        assert out[1] == 2.0

    def test_2d(self):
        values = np.array([[1.0, 0.0], [4.0, 2.0]])
        weights = np.array([[2.0, 0.0], [2.0, 1.0]])
        out = ratios(values, weights)
        assert out[0, 0] == 0.5
        assert out[0, 1] == UNDEFINED_RATIO
        assert out[1, 1] == 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            ratios(np.zeros(3), np.zeros(4))

    def test_sentinel_outside_trust_range(self):
        # Trust values live in [0, 1]; the sentinel must be distinguishable.
        assert UNDEFINED_RATIO > 1.0


class TestMassConservation:
    def test_passes_when_conserved(self):
        assert_mass_conserved(6.0, np.array([1.0, 2.0, 3.0]), label="y")

    def test_fails_on_drift(self):
        with pytest.raises(RuntimeError, match="not conserved"):
            assert_mass_conserved(6.0, np.array([1.0, 2.0, 4.0]), label="y")

    def test_tolerates_float_noise(self):
        values = np.full(1000, 1.0 / 3.0)
        assert_mass_conserved(1000 / 3.0, values, label="y")

    def test_zero_total(self):
        assert_mass_conserved(0.0, np.zeros(5), label="g")
        with pytest.raises(RuntimeError):
            assert_mass_conserved(0.0, np.array([MASS_RTOL * 10]), label="g")
