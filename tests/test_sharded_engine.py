"""Sharded engine + partitioner: determinism, halo exchange, scale-out.

The acceptance checks of the sharded backend live here: partitions are
deterministic pure functions of (graph, num_shards); the engine's
outcomes are byte-identical for every worker count at a fixed seed;
fixpoints agree with the single-process engines to the cross-backend
bar; and the sharded-vs-sparse benchmark harness runs end to end (the
million-peer shape itself is property-marked so tier-1 stays fast).
"""

import numpy as np
import pytest

from repro.core.backend import GossipConfig, run_backend
from repro.core.sharded_engine import (
    DEFAULT_NUM_SHARDS,
    SHARDED_INLINE_MAX_NODES,
    ShardedGossipEngine,
    default_worker_count,
)
from repro.network.graph import Graph
from repro.network.partition import edge_balanced_boundaries, partition_graph
from repro.network.preferential_attachment import (
    preferential_attachment_graph,
    preferential_attachment_graph_fast,
)
from repro.network.topology_example import example_network


def ring_graph(n: int) -> Graph:
    """An n-cycle built straight from CSR arrays (no Python edge loop)."""
    i = np.arange(n, dtype=np.int64)
    a, b = (i - 1) % n, (i + 1) % n
    cols = np.empty(2 * n, dtype=np.int64)
    cols[0::2] = np.minimum(a, b)
    cols[1::2] = np.maximum(a, b)
    return Graph.from_csr(n, 2 * np.arange(n + 1, dtype=np.int64), cols, validate=False)


class TestPartition:
    def test_boundaries_cover_every_node_once(self, pa_graph_medium):
        part = partition_graph(pa_graph_medium, 5)
        sizes = [shard.owned_size for shard in part.shards]
        assert sum(sizes) == pa_graph_medium.num_nodes
        assert part.boundaries[0] == 0 and part.boundaries[-1] == pa_graph_medium.num_nodes
        for node in (0, 7, 299):
            shard = part.shards[part.shard_of(node)]
            assert shard.lo <= node < shard.hi

    def test_edge_balance_beats_node_balance_on_skew(self):
        # A hub-heavy PA graph: equal-node splits would load shard 0
        # (early nodes are the hubs) far beyond the rest.
        graph = preferential_attachment_graph(400, m=3, rng=5)
        part = partition_graph(graph, 4)
        indptr = graph.indptr
        edge_loads = [int(indptr[s.hi] - indptr[s.lo]) for s in part.shards]
        target = int(indptr[-1]) / 4
        assert max(edge_loads) <= 1.5 * target

    def test_halo_is_exactly_the_foreign_neighbours(self, fig2_network):
        part = partition_graph(fig2_network, 3)
        for shard in part.shards:
            expected = set()
            for node in range(shard.lo, shard.hi):
                for nb in fig2_network.neighbors(node):
                    if not shard.lo <= nb < shard.hi:
                        expected.add(int(nb))
            assert set(shard.halo.tolist()) == expected
            # halo_slices tile the halo by destination shard.
            assert shard.halo_slices[0] == 0
            assert shard.halo_slices[-1] == shard.halo.shape[0]
            for d, dest in enumerate(part.shards):
                a, b = shard.halo_slices[d], shard.halo_slices[d + 1]
                members = shard.halo[a:b]
                assert np.all((members >= dest.lo) & (members < dest.hi))

    def test_local_columns_round_trip(self, pa_graph_small):
        part = partition_graph(pa_graph_small, 4)
        for shard in part.shards:
            indptr_local, indices_local = shard.local_csr(
                pa_graph_small.indptr, pa_graph_small.indices
            )
            assert indptr_local[0] == 0
            assert indptr_local[-1] == indices_local.shape[0]
            # Every local id maps back to the original global neighbour.
            local_nodes = np.concatenate(
                [np.arange(shard.lo, shard.hi), shard.halo]
            )
            rebuilt = local_nodes[indices_local]
            start, stop = pa_graph_small.indptr[shard.lo], pa_graph_small.indptr[shard.hi]
            np.testing.assert_array_equal(rebuilt, pa_graph_small.indices[start:stop])

    def test_deterministic_in_graph_and_shards(self, pa_graph_medium):
        a = partition_graph(pa_graph_medium, 6)
        b = partition_graph(pa_graph_medium, 6)
        np.testing.assert_array_equal(a.boundaries, b.boundaries)
        for sa, sb in zip(a.shards, b.shards):
            np.testing.assert_array_equal(sa.halo, sb.halo)

    def test_more_shards_than_nodes_clamps(self, triangle):
        part = partition_graph(triangle, 16)
        assert part.num_shards <= 3
        assert sum(s.owned_size for s in part.shards) == 3

    def test_edge_cut_bounds(self, pa_graph_medium):
        part = partition_graph(pa_graph_medium, 4)
        assert 0.0 < part.edge_cut() <= 1.0
        assert partition_graph(pa_graph_medium, 1).edge_cut() == 0.0

    def test_edgeless_graph_splits_by_nodes(self):
        lonely = Graph(8, [])
        boundaries = edge_balanced_boundaries(lonely, 4)
        assert boundaries[0] == 0 and boundaries[-1] == 8
        assert np.all(np.diff(boundaries) >= 0)

    def test_invalid_num_shards_rejected(self, triangle):
        with pytest.raises(ValueError):
            edge_balanced_boundaries(triangle, 0)


class TestShardedEngine:
    def test_reaches_the_fixture_fixpoint(self):
        engine = ShardedGossipEngine(example_network(), rng=7, num_shards=3)
        outcome = engine.run(np.arange(10.0), np.ones(10), xi=1e-10, max_steps=100_000)
        assert np.abs(outcome.estimates.reshape(-1) - 4.5).max() < 1e-8
        assert outcome.converged.all()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_byte_identical_across_worker_counts(self, pa_graph_medium, workers):
        values = np.random.default_rng(3).random(300)
        outcomes = []
        for count in (1, workers):
            config = GossipConfig(xi=1e-8, rng=42, num_shards=4, shard_workers=count)
            outcomes.append(
                run_backend(pa_graph_medium, values, np.ones(300), config=config, backend="sharded")
            )
        inline, multi = outcomes
        np.testing.assert_array_equal(inline.values, multi.values)
        np.testing.assert_array_equal(inline.weights, multi.weights)
        assert inline.steps == multi.steps
        assert inline.push_messages == multi.push_messages
        np.testing.assert_array_equal(inline.converged, multi.converged)

    def test_byte_identical_across_worker_counts_under_loss(self, pa_graph_medium):
        values = np.random.default_rng(5).random(300)
        outcomes = []
        for count in (1, 3):
            config = GossipConfig(
                xi=1e-8, rng=11, num_shards=4, shard_workers=count,
                loss_probability=0.3, max_steps=15, run_to_max=True,
            )
            outcomes.append(
                run_backend(pa_graph_medium, values, np.ones(300), config=config, backend="sharded")
            )
        np.testing.assert_array_equal(outcomes[0].values, outcomes[1].values)
        # The self-push repair conserves mass exactly.
        assert float(outcomes[0].values.sum()) == pytest.approx(float(values.sum()), rel=1e-12)
        assert float(outcomes[0].weights.sum()) == pytest.approx(300.0, rel=1e-12)

    def test_outcome_depends_on_num_shards_not_workers(self, pa_graph_small):
        values = np.arange(60.0)
        base = ShardedGossipEngine(pa_graph_small, rng=9, num_shards=4).run(
            values, np.ones(60), xi=1e-6
        )
        other_shards = ShardedGossipEngine(pa_graph_small, rng=9, num_shards=5).run(
            values, np.ones(60), xi=1e-6
        )
        # Different shard counts draw different streams (documented);
        # both still land on the same fixpoint.
        assert not np.array_equal(base.values, other_shards.values)
        np.testing.assert_allclose(
            base.estimates, other_shards.estimates, atol=1e-4
        )

    def test_repeated_runs_replay_identically(self, pa_graph_small):
        engine = ShardedGossipEngine(pa_graph_small, rng=13, num_shards=3)
        values = np.random.default_rng(1).random(60)
        first = engine.run(values, np.ones(60), xi=1e-6)
        second = engine.run(values, np.ones(60), xi=1e-6)
        np.testing.assert_array_equal(first.values, second.values)
        assert first.steps == second.steps

    def test_multi_component_state_with_extras(self, pa_graph_small):
        values = np.random.default_rng(2).random((60, 3))
        counts = np.ones((60, 3))
        config = GossipConfig(xi=1e-9, rng=21, num_shards=4)
        outcome = run_backend(
            pa_graph_small, values, np.ones_like(values),
            extras={"count": counts}, config=config, backend="sharded",
        )
        np.testing.assert_allclose(
            outcome.estimates, np.broadcast_to(values.mean(axis=0), (60, 3)), atol=1e-6
        )
        assert outcome.extras["count"].shape == (60, 3)
        assert float(outcome.extras["count"].sum()) == pytest.approx(180.0, rel=1e-9)

    def test_isolated_nodes_keep_their_values(self):
        graph = Graph(6, [(0, 1), (1, 2), (0, 2), (2, 4)])
        values = np.arange(6.0)
        outcome = run_backend(
            graph, values, np.ones(6),
            config=GossipConfig(xi=1e-8, rng=3, num_shards=3), backend="sharded",
        )
        connected = [0, 1, 2, 4]
        assert np.allclose(
            outcome.estimates.reshape(-1)[connected], values[connected].mean(), atol=1e-5
        )
        assert outcome.estimates.reshape(-1)[3] == pytest.approx(3.0)
        assert outcome.estimates.reshape(-1)[5] == pytest.approx(5.0)

    def test_rejects_explicit_loss_model(self, pa_graph_small):
        from repro.network.churn import PacketLossModel

        with pytest.raises(ValueError, match="loss_probability"):
            ShardedGossipEngine(pa_graph_small, loss_model=PacketLossModel(0.2, rng=0))

    def test_validation(self, pa_graph_small):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedGossipEngine(pa_graph_small, num_shards=0)
        with pytest.raises(ValueError, match="num_workers"):
            ShardedGossipEngine(pa_graph_small, num_workers=0)
        with pytest.raises(ValueError, match="loss_probability"):
            ShardedGossipEngine(pa_graph_small, loss_probability=1.5)

    def test_default_worker_policy(self):
        assert default_worker_count(1000) == 1
        assert default_worker_count(SHARDED_INLINE_MAX_NODES) == 1
        assert default_worker_count(SHARDED_INLINE_MAX_NODES + 1) >= 1

    def test_default_shard_count_is_size_independent(self, pa_graph_small):
        engine = ShardedGossipEngine(pa_graph_small, rng=1)
        assert engine.num_shards == min(DEFAULT_NUM_SHARDS, 60)


class TestExecutors:
    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_byte_identical_across_executors(self, pa_graph_medium, executor):
        values = np.random.default_rng(3).random(300)
        outcomes = []
        for workers in ("inline", executor):
            config = GossipConfig(xi=1e-8, rng=42, num_shards=4, shard_workers=workers)
            outcomes.append(
                run_backend(pa_graph_medium, values, np.ones(300), config=config, backend="sharded")
            )
        inline, other = outcomes
        np.testing.assert_array_equal(inline.values, other.values)
        np.testing.assert_array_equal(inline.weights, other.weights)
        assert inline.steps == other.steps
        assert inline.push_messages == other.push_messages
        np.testing.assert_array_equal(inline.converged, other.converged)

    def test_threads_executor_byte_identical_under_loss(self, pa_graph_medium):
        values = np.random.default_rng(5).random(300)
        outcomes = []
        for executor in ("inline", "threads"):
            engine = ShardedGossipEngine(
                pa_graph_medium, rng=11, num_shards=4, executor=executor,
                loss_probability=0.25,
            )
            outcomes.append(engine.run(values, np.ones(300), xi=1e-8))
        np.testing.assert_array_equal(outcomes[0].values, outcomes[1].values)
        assert outcomes[0].push_messages == outcomes[1].push_messages

    def test_executor_resolution_and_validation(self, pa_graph_small):
        assert ShardedGossipEngine(pa_graph_small, rng=0).executor == "inline"
        assert (
            ShardedGossipEngine(pa_graph_small, rng=0, num_workers=2).executor
            == "processes"
        )
        assert (
            ShardedGossipEngine(pa_graph_small, rng=0, executor="threads").executor
            == "threads"
        )
        with pytest.raises(ValueError, match="executor"):
            ShardedGossipEngine(pa_graph_small, rng=0, executor="fibers")
        with pytest.raises(ValueError, match="inline"):
            ShardedGossipEngine(pa_graph_small, rng=0, executor="inline", num_workers=2)

    def test_config_accepts_executor_names(self):
        for name in ("inline", "threads", "processes"):
            assert GossipConfig(shard_workers=name).shard_workers == name
        with pytest.raises(ValueError, match="shard_workers"):
            GossipConfig(shard_workers="fibers")

    def test_phase_timings_populated(self, pa_graph_small):
        engine = ShardedGossipEngine(pa_graph_small, rng=2, num_shards=3)
        assert engine.last_phase_timings is None
        outcome = engine.run(np.arange(60.0), np.ones(60), xi=1e-6)
        timings = engine.last_phase_timings
        assert timings["steps"] == outcome.steps
        for key in (
            "sample_seconds",
            "build_contributions_seconds",
            "phase_a_wall_seconds",
            "halo_merge_seconds",
            "convergence_seconds",
        ):
            assert timings[key] >= 0.0
        assert timings["total_seconds"] > 0.0


class TestShardedFloat32:
    def test_float32_runs_and_tracks_float64(self, pa_graph_medium):
        values = np.random.default_rng(9).random(300)
        ref = ShardedGossipEngine(pa_graph_medium, rng=21, num_shards=4).run(
            values, np.ones(300), xi=1e-6
        )
        out = ShardedGossipEngine(
            pa_graph_medium, rng=21, num_shards=4, dtype=np.float32
        ).run(values, np.ones(300), xi=1e-6)
        assert out.values.dtype == np.float32
        est_ref = ref.values[:, 0] / ref.weights[:, 0]
        est = out.values[:, 0].astype(np.float64) / out.weights[:, 0].astype(np.float64)
        assert float(np.abs(est - est_ref).max()) < 1e-4

    def test_float32_through_process_pool(self, pa_graph_medium):
        # Shared-memory sizing is itemsize-aware; a float32 state crossing
        # the worker boundary must agree with the inline float32 run.
        values = np.random.default_rng(9).random(300)
        outcomes = []
        for executor, workers in (("inline", None), ("processes", 2)):
            engine = ShardedGossipEngine(
                pa_graph_medium, rng=21, num_shards=4, dtype=np.float32,
                executor=executor, num_workers=workers,
            )
            outcomes.append(engine.run(values, np.ones(300), xi=1e-6))
        np.testing.assert_array_equal(outcomes[0].values, outcomes[1].values)
        assert outcomes[0].steps == outcomes[1].steps

    def test_unsupported_dtype_rejected(self, pa_graph_small):
        from repro.core.errors import UnsupportedDtypeError

        with pytest.raises(UnsupportedDtypeError):
            ShardedGossipEngine(pa_graph_small, rng=0, dtype=np.int64)


class TestAutoEscalation:
    def test_auto_picks_sharded_beyond_sparse_ceiling(self, monkeypatch):
        import repro.core.backend as backend_mod
        from repro.core.backend import AUTO_SPARSE_MAX_NODES, choose_backend_name

        # Escalation needs real parallelism headroom; pretend we have it.
        monkeypatch.setattr(backend_mod, "usable_cpu_count", lambda: 4)
        big_ring = ring_graph(AUTO_SPARSE_MAX_NODES + 1)
        assert choose_backend_name(big_ring) == "sharded"

    def test_auto_keeps_sparse_below_the_ceiling(self):
        from repro.core.backend import AUTO_DENSE_MAX_NODES, choose_backend_name

        ring = ring_graph(AUTO_DENSE_MAX_NODES + 1)
        assert choose_backend_name(ring) == "sparse"

    def test_auto_stays_sparse_on_a_single_core_host(self, monkeypatch):
        # Regression: on a 1-CPU host the sharded engine's worker pool
        # cannot outrun the single-process sparse engine (~0.4x measured),
        # so node/edge counts alone must not escalate the auto policy.
        import repro.core.backend as backend_mod
        from repro.core.backend import AUTO_SPARSE_MAX_NODES, choose_backend_name

        monkeypatch.setattr(backend_mod, "usable_cpu_count", lambda: 1)
        big_ring = ring_graph(AUTO_SPARSE_MAX_NODES + 1)
        assert choose_backend_name(big_ring) == "sparse"

    def test_auto_keeps_explicit_loss_model_configs_on_sparse(self, monkeypatch):
        # The sharded backend rejects explicit PacketLossModel instances
        # (unsplittable generator state); "auto" must not escalate such
        # configs into a capability error on huge graphs.
        import repro.core.backend as backend_mod
        from repro.core.backend import AUTO_SPARSE_MAX_NODES, choose_backend_name
        from repro.network.churn import PacketLossModel

        monkeypatch.setattr(backend_mod, "usable_cpu_count", lambda: 4)
        big_ring = ring_graph(AUTO_SPARSE_MAX_NODES + 1)
        config = GossipConfig(loss_model=PacketLossModel(0.1, rng=0))
        assert choose_backend_name(big_ring, config) == "sparse"
        assert choose_backend_name(big_ring, GossipConfig(loss_probability=0.1)) == "sharded"


class TestFastPaGenerator:
    def test_connected_and_near_target_edges(self):
        graph = preferential_attachment_graph_fast(5000, m=6, rng=4)
        assert graph.is_connected()
        assert 0.95 * 6 * 5000 < graph.num_edges <= 6 * 5000

    def test_deterministic(self):
        a = preferential_attachment_graph_fast(800, m=3, rng=17)
        b = preferential_attachment_graph_fast(800, m=3, rng=17)
        assert a == b

    def test_heavy_tail(self):
        graph = preferential_attachment_graph_fast(4000, m=4, rng=8)
        degrees = np.asarray(graph.degrees)
        # PA hubs: the max degree dwarfs the median.
        assert degrees.max() > 10 * np.median(degrees)

    def test_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph_fast(3, m=3)
        with pytest.raises(ValueError):
            preferential_attachment_graph_fast(10, m=0)


class TestBenchAndScenario:
    def test_bench_harness_smoke(self, tmp_path):
        from benchmarks.bench_sharded import run_benchmark

        record = run_benchmark(
            4000, m=4, steps=8, short_steps=2, pairs=1, workers=2, shards=4, seed=7
        )
        assert record["benchmark"] == "sharded_vs_sparse"
        assert record["engines"]["sparse"]["steps_per_second"] > 0
        assert record["engines"]["sharded_procs_w2"]["steps_per_second"] > 0
        # Executor contenders ship the per-phase breakdown.
        phases = record["engines"]["sharded_threads"]["phase_seconds"]
        assert phases["steps"] == 8
        assert phases["halo_merge_seconds"] >= 0.0
        assert isinstance(record["speedup_vs_sparse"], float)
        assert isinstance(record["threads_vs_inline"], float)

    def test_kernel_bench_smoke(self):
        from benchmarks.bench_sharded import run_kernel_benchmark

        record = run_kernel_benchmark(
            4000, m_values=[4], steps=8, short_steps=2, pairs=1, shards=4, seed=7
        )
        assert record["benchmark"] == "push_kernels"
        grid = record["grids"]["m4"]["contenders"]
        assert grid["sparse/fused/float64"]["speedup_vs_unfused_float64"] > 0
        assert grid["sparse/fused/float32"]["dtype"] == "float32"
        assert grid["sharded/threads/float64"]["phase_seconds"]["steps"] == 8
        assert "sample_seconds" in grid["sharded/inline/float64"]["phase_seconds"]

    def test_million_peer_scenario_small_shape(self):
        from repro.scenarios import run_scenario

        result = run_scenario("million-peer-sharded", small=True, workers=2)
        assert result.backend == "sharded"
        assert result.converged_fraction == 1.0
        assert result.metrics["mean_abs_error"] < 1e-3

    @pytest.mark.property
    def test_bench_harness_at_scale(self):
        """Opt-in (property-marked) large shape; the full million-peer
        run stays a CLI/CI-artifact concern so tier-1 stays fast."""
        from benchmarks.bench_sharded import run_benchmark

        record = run_benchmark(
            150_000, m=6, steps=26, short_steps=3, pairs=1, workers=2, shards=8, seed=3
        )
        assert record["engines"]["sharded_procs_w2"]["estimates_mean_error"] < 0.02
        assert record["n"] == 150_000
