"""Dynamic runtime: churn traces, warm-start epochs, exactness invariants."""

import pytest

from repro import ChurnTrace, GossipConfig, MutableOverlay, run_dynamic
from repro.core.backend import BackendCapabilityError
from repro.runtime.dynamics import DynamicReputationRuntime
from repro.runtime.trace import EpochChurn
from repro.trust.newcomer_policy import DynamicNewcomerPolicy


def small_overlay(n=80, seed=3):
    return MutableOverlay.grow_preferential(n, m=2, rng=seed)


class TestChurnTrace:
    def test_steady_trace_is_deterministic(self):
        kwargs = dict(population=500, join_rate=0.02, leave_rate=0.03, seed=11)
        assert ChurnTrace.steady(6, **kwargs) == ChurnTrace.steady(6, **kwargs)

    def test_steady_rates_scale_counts(self):
        # Rates compound as the scheduled population grows, so bound the
        # first epoch tightly-ish and the horizon loosely.
        trace = ChurnTrace.steady(10, population=1000, join_rate=0.05, leave_rate=0.01, seed=2)
        assert trace.total_arrivals > trace.total_departures
        assert 20 <= trace.epochs[0].arrivals <= 90
        assert 10 * 1000 * 0.05 * 0.5 < trace.total_arrivals < 10 * 1000 * 0.05 * 3

    def test_departures_respect_min_population(self):
        trace = ChurnTrace.steady(
            50, population=20, join_rate=0.0, leave_rate=0.5, seed=3, min_population=10
        )
        assert 20 + trace.total_arrivals - trace.total_departures >= 10

    def test_flash_crowd_spikes_then_decays(self):
        trace = ChurnTrace.flash_crowd(
            8, population=1000, base_rate=0.001, spike_epoch=2, spike_fraction=0.4, seed=5
        )
        arrivals = [e.arrivals for e in trace]
        assert arrivals[2] == max(arrivals) and arrivals[2] > 300
        assert arrivals[4] < arrivals[3] < arrivals[2]
        # The surge churns back out afterwards.
        assert sum(e.departures for e in trace.epochs[3:]) > 200

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnTrace(())
        with pytest.raises(ValueError):
            EpochChurn(-1, 0)
        with pytest.raises(ValueError):
            ChurnTrace.steady(0, population=10, join_rate=0.1, leave_rate=0.1)
        with pytest.raises(ValueError):
            ChurnTrace.steady(5, population=10, join_rate=1.5, leave_rate=0.1)
        with pytest.raises(ValueError):
            ChurnTrace.flash_crowd(4, population=100, spike_epoch=9)


class TestRunDynamic:
    def test_replay_is_deterministic(self):
        trace = ChurnTrace.steady(4, population=80, join_rate=0.05, leave_rate=0.05, seed=7)
        runs = [
            run_dynamic(small_overlay(), trace, GossipConfig(delta=0.0), backend="dense")
            for _ in range(2)
        ]
        for a, b in zip(runs[0].records, runs[1].records):
            payload_a, payload_b = a.to_dict(), b.to_dict()
            payload_a.pop("elapsed_seconds")
            payload_b.pop("elapsed_seconds")
            assert payload_a == payload_b

    def test_exact_mean_under_churn_with_zero_delta(self):
        # With Δ = 0 the warm-start invariant sum(v)/sum(w) == mean(x)
        # holds exactly through joins, leaves and drift.
        trace = ChurnTrace.steady(5, population=100, join_rate=0.08, leave_rate=0.08, seed=9)
        result = run_dynamic(
            small_overlay(100, seed=1),
            trace,
            GossipConfig(delta=0.0, max_steps=2000),
            backend="dense",
            opinion_drift=0.2,
            epoch_tol=1e-7,
        )
        for record in result.records:
            assert record.converged_fraction == 1.0
            assert record.mean_abs_error < 1e-6
            assert record.max_abs_error < 1e-4

    def test_population_follows_trace(self):
        trace = ChurnTrace.steady(4, population=120, join_rate=0.1, leave_rate=0.02, seed=13)
        result = run_dynamic(small_overlay(120, seed=2), trace, backend="dense")
        expected = 120
        for churn, record in zip(trace, result.records):
            expected += churn.arrivals - churn.departures
            assert record.num_peers == expected
            assert record.arrivals == churn.arrivals
            assert record.departures == churn.departures

    def test_warm_start_uses_fewer_steady_state_rounds(self):
        trace = ChurnTrace.steady(5, population=400, join_rate=0.005, leave_rate=0.005, seed=17)
        kwargs = dict(config=GossipConfig(delta=0.0), backend="dense", opinion_drift=0.01)
        warm = run_dynamic(MutableOverlay.grow_preferential(400, m=2, rng=5), trace, **kwargs)
        cold = run_dynamic(
            MutableOverlay.grow_preferential(400, m=2, rng=5), trace, warm_start=False, **kwargs
        )
        # Epoch 0 is cold in both runs by construction.
        assert warm.records[0].steps == cold.records[0].steps
        assert not warm.records[0].warm and warm.records[1].warm
        assert warm.steady_state_steps < 0.5 * cold.steady_state_steps

    def test_auto_backend_on_tiny_overlay_picks_a_capable_engine(self):
        # Regression: the accuracy rule needs run_to_max, so "auto" must
        # skip the message engine even on <= 64-peer overlays instead of
        # selecting it and then rejecting it.
        trace = ChurnTrace.steady(2, population=50, join_rate=0.03, leave_rate=0.03, seed=1)
        result = run_dynamic(MutableOverlay.grow_preferential(50, m=2, rng=0), trace)
        assert result.backend == "dense"
        assert all(r.converged_fraction == 1.0 for r in result.records)

    def test_accepts_plain_graph_input(self, pa_graph_small):
        trace = ChurnTrace.steady(2, population=60, join_rate=0.05, leave_rate=0.05, seed=19)
        result = run_dynamic(pa_graph_small, trace, backend="dense")
        assert len(result.records) == 2

    def test_newcomer_policy_grants_and_observes(self):
        policy = DynamicNewcomerPolicy(max_initial_trust=0.3)
        trace = ChurnTrace.steady(3, population=80, join_rate=0.2, leave_rate=0.0, seed=23)
        overlay = small_overlay()
        runtime = DynamicReputationRuntime(
            overlay, config=GossipConfig(delta=0.0), backend="dense", newcomer_policy=policy
        )
        runtime.run(trace)
        assert policy.join_rate() > 0  # every join was observed
        # Joiners' published opinions came from the policy (all below the cap).
        joiner_ids = [p for p in overlay.peer_ids() if p >= 80]
        assert joiner_ids
        opinions = runtime.opinions()
        pids = overlay.peer_ids().tolist()
        for pid in joiner_ids:
            assert opinions[pids.index(pid)] <= 0.3

    def test_delta_suppresses_small_repush(self):
        # With a huge Δ nothing is ever re-announced: published opinions
        # freeze at their initial values even under heavy drift.
        trace = ChurnTrace.steady(3, population=80, join_rate=0.0, leave_rate=0.0, seed=29)
        overlay = small_overlay()
        runtime = DynamicReputationRuntime(
            overlay, config=GossipConfig(delta=10.0), backend="dense", opinion_drift=0.5
        )
        result = runtime.run(trace)
        assert result.records[-1].mean_abs_error < 1e-3

    def test_protocol_stop_rule_runs_engine_protocol(self):
        trace = ChurnTrace.steady(2, population=80, join_rate=0.02, leave_rate=0.02, seed=31)
        result = run_dynamic(
            small_overlay(),
            trace,
            GossipConfig(xi=1e-4, delta=0.0),
            backend="dense",
            stop_rule="protocol",
        )
        assert all(r.converged_fraction == 1.0 for r in result.records)

    def test_protocol_stop_rule_supports_async_warm_epochs(self):
        # Regression: the shortened warm warmup must not be forced onto
        # the async backend (it has no per-step warmup and rejects it).
        trace = ChurnTrace.steady(2, population=80, join_rate=0.02, leave_rate=0.02, seed=47)
        result = run_dynamic(
            small_overlay(),
            trace,
            GossipConfig(xi=1e-3, delta=0.0),
            backend="async",
            stop_rule="protocol",
        )
        assert len(result.records) == 2 and result.records[1].warm

    def test_sharded_backend_rebalances_shards_under_churn(self):
        # Each epoch runs against the fresh MutableOverlay.snapshot and
        # the sharded backend re-partitions it from scratch, so heavy
        # churn must never desynchronise shard boundaries from the live
        # peer set — with Δ = 0 the exact-mean invariant still holds.
        from repro.network.partition import partition_graph

        trace = ChurnTrace.steady(4, population=120, join_rate=0.1, leave_rate=0.1, seed=21)
        overlay = small_overlay(120, seed=4)
        before, _ = overlay.snapshot()
        result = run_dynamic(
            overlay,
            trace,
            GossipConfig(delta=0.0, num_shards=4, max_steps=2000),
            backend="sharded",
            opinion_drift=0.1,
            epoch_tol=1e-7,
        )
        assert result.backend == "sharded"
        for record in result.records:
            assert record.converged_fraction == 1.0
            assert record.mean_abs_error < 1e-6
        after, _ = overlay.snapshot()
        # The churned snapshot partitions to the new peer set, not the old.
        boundaries = partition_graph(after, 4).boundaries
        assert boundaries[-1] == after.num_nodes != before.num_nodes

    def test_sharded_protocol_rule_warm_epochs(self):
        trace = ChurnTrace.steady(2, population=100, join_rate=0.03, leave_rate=0.03, seed=53)
        result = run_dynamic(
            small_overlay(100, seed=6),
            trace,
            GossipConfig(xi=1e-4, delta=0.0, num_shards=3),
            backend="sharded",
            stop_rule="protocol",
        )
        assert len(result.records) == 2 and result.records[1].warm
        assert all(r.converged_fraction == 1.0 for r in result.records)

    def test_accuracy_rule_rejects_backends_without_run_to_max(self):
        trace = ChurnTrace.steady(2, population=80, join_rate=0.0, leave_rate=0.0, seed=37)
        with pytest.raises(BackendCapabilityError):
            run_dynamic(small_overlay(), trace, backend="message")

    def test_budget_exhaustion_reports_unconverged(self):
        trace = ChurnTrace.steady(1, population=80, join_rate=0.0, leave_rate=0.0, seed=41)
        result = run_dynamic(
            small_overlay(),
            trace,
            GossipConfig(max_steps=4),
            backend="dense",
            epoch_tol=1e-12,
        )
        assert result.records[0].converged_fraction == 0.0
        assert result.records[0].steps == 4

    def test_validation(self):
        overlay = small_overlay()
        with pytest.raises(ValueError):
            DynamicReputationRuntime(overlay, stop_rule="nope")
        with pytest.raises(ValueError):
            DynamicReputationRuntime(overlay, epoch_tol=0.0)
        with pytest.raises(ValueError):
            DynamicReputationRuntime(overlay, opinion_drift=1.5)
        with pytest.raises(ValueError):
            DynamicReputationRuntime(overlay, attachment_m=0)

    def test_to_dict_and_text_roundtrip(self):
        trace = ChurnTrace.steady(2, population=80, join_rate=0.05, leave_rate=0.05, seed=43)
        result = run_dynamic(small_overlay(), trace, backend="dense")
        payload = result.to_dict()
        assert payload["backend"] == "dense"
        assert len(payload["epochs"]) == 2
        assert "steady-state" in result.to_text()


class TestDynamicScenarios:
    def test_flash_crowd_small(self):
        from repro.scenarios import run_scenario

        result = run_scenario("flash-crowd", small=True)
        assert result.backend == "dense"
        assert result.metrics["epochs"] == 8
        assert result.metrics["total_arrivals"] > 100  # the surge arrived
        assert result.metrics["final_mean_abs_error"] < 0.01

    def test_steady_churn_small_warm_start_wins(self):
        from repro.scenarios import run_scenario

        result = run_scenario("steady-churn-100k", small=True)
        assert result.backend == "sparse"
        assert result.converged_fraction == 1.0
        assert (
            result.metrics["steady_state_steps"]
            <= result.metrics["cold_bootstrap_steps"] / 3
        )

    def test_dynamic_requires_mean_workload(self):
        from repro.scenarios.spec import DynamicSpec, Scenario, TopologySpec, WorkloadSpec

        with pytest.raises(ValueError):
            Scenario(
                name="bad",
                description="d",
                topology=TopologySpec(),
                workload=WorkloadSpec(kind="trust-global"),
                dynamic=DynamicSpec(),
            )

    def test_auto_backend_dynamic_scenario_on_tiny_graph(self):
        # Regression: "auto" must reach the runtime unresolved so tiny
        # graphs don't pre-resolve to the message engine and get rejected.
        from repro.scenarios.spec import DynamicSpec, Scenario, TopologySpec, WorkloadSpec, run_scenario

        scenario = Scenario(
            name="tiny-dynamic",
            description="auto backend on a <=64-node dynamic world",
            topology=TopologySpec(num_nodes=60, small_num_nodes=60),
            workload=WorkloadSpec(kind="mean"),
            dynamic=DynamicSpec(epochs=2, join_rate=0.03, leave_rate=0.03),
            backend="auto",
            seed=99,
        )
        result = run_scenario(scenario, small=True)
        assert result.backend == "dense"
        assert result.converged_fraction == 1.0


class TestEpochPartition:
    """The epoch-indexed partition schedule replayed on the overlay."""

    def _run(self, *, epochs=8, n=80, seed=21, heal=5):
        from repro.network.conditions import EpochPartition

        trace = ChurnTrace.steady(
            epochs, population=n, join_rate=0.02, leave_rate=0.02, seed=seed
        )
        runtime = DynamicReputationRuntime(
            small_overlay(n, seed=seed + 1),
            config=GossipConfig(delta=0.0, max_steps=600),
            backend="dense",
            partition=EpochPartition(start_epoch=2, heal_epoch=heal),
        )
        return runtime, runtime.run(trace)

    def test_counters_track_cut_and_heal(self):
        runtime, result = self._run()
        assert runtime.partition_cut_edges > 0
        assert runtime.partition_bridges > 0
        assert 0 < runtime.partition_restored_edges <= runtime.partition_cut_edges
        # Islands cannot agree on the global mean while cut off; after
        # the heal the overlay re-mixes back to full accuracy.
        window = result.records[2:5]
        assert any(r.converged_fraction < 1.0 for r in window)
        assert result.records[-1].converged_fraction == 1.0

    def test_overlay_reconnects_after_heal(self):
        runtime, _ = self._run()
        graph, _ = runtime._overlay.snapshot()
        assert graph.is_connected()

    def test_group_scoped_repair_never_heals_early(self):
        from repro.network.conditions import EpochPartition

        schedule = EpochPartition(start_epoch=2, heal_epoch=5)
        runtime, _ = self._run()
        # During every active epoch the overlay held zero cross-group
        # edges after the cut; the runtime re-cuts churn-wired edges each
        # epoch, so any survivor would have been counted and removed.
        # The heal restored only edges whose endpoints both survived.
        assert runtime.partition_restored_edges <= runtime.partition_cut_edges
        assert schedule.group(4) == 0 and schedule.group(7) == 1

    def test_partition_replay_is_deterministic(self):
        results = [self._run(seed=33)[1] for _ in range(2)]
        for a, b in zip(results[0].records, results[1].records):
            payload_a, payload_b = a.to_dict(), b.to_dict()
            payload_a.pop("elapsed_seconds")
            payload_b.pop("elapsed_seconds")
            assert payload_a == payload_b

    def test_partition_free_records_unchanged_by_feature(self):
        # The partition axis must not add record fields or perturb the
        # partition-free replay (golden stability).
        trace = ChurnTrace.steady(3, population=60, join_rate=0.02,
                                  leave_rate=0.02, seed=5)
        base = run_dynamic(small_overlay(60, seed=6), trace,
                           GossipConfig(delta=0.0), backend="dense")
        again = run_dynamic(small_overlay(60, seed=6), trace,
                            GossipConfig(delta=0.0), backend="dense",
                            partition=None)
        for a, b in zip(base.records, again.records):
            payload_a, payload_b = a.to_dict(), b.to_dict()
            payload_a.pop("elapsed_seconds")
            payload_b.pop("elapsed_seconds")
            assert payload_a == payload_b
            assert "partition" not in " ".join(payload_a)

    def test_validation(self):
        with pytest.raises(ValueError, match="EpochPartition"):
            DynamicReputationRuntime(small_overlay(), partition=object())
