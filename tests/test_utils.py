"""Unit tests for the shared utilities."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_child
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_trust_value,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_generator(7).random() == as_generator(7).random()

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_spawn_child_independent(self):
        parent = as_generator(1)
        child_a = spawn_child(parent)
        child_b = spawn_child(parent)
        assert child_a.random() != child_b.random()

    def test_spawn_child_deterministic(self):
        a = spawn_child(as_generator(3), key=5).random()
        b = spawn_child(as_generator(3), key=5).random()
        assert a == b

    def test_spawn_child_key_differentiates(self):
        a = spawn_child(as_generator(3), key=1).random()
        b = spawn_child(as_generator(3), key=2).random()
        assert a != b


class TestTables:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5000" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_format(self):
        text = format_table(["x"], [[0.123456]], float_fmt=".2f")
        assert "0.12" in text

    def test_column_alignment(self):
        text = format_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_string_and_bool_cells(self):
        text = format_table(["a", "b"], [["hi", True]])
        assert "hi" in text and "True" in text


class TestValidation:
    def test_check_positive(self):
        check_positive(0.1, "x")
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_check_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_check_fraction(self):
        check_fraction(0.0, "f")
        check_fraction(0.99, "f")
        with pytest.raises(ValueError):
            check_fraction(1.0, "f")

    def test_check_trust_value(self):
        check_trust_value(0.5)
        with pytest.raises(ValueError):
            check_trust_value(2.0)

    def test_error_messages_name_the_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive(-1, "my_param")
