"""Multi-channel gossip (N × V) acceptance suite.

Covers the tentpole contract from every side:

- the swept ``backend="dense"`` defaults are pinned to ``"auto"`` (the
  get_backend-spy regression pattern of the PR-4 ``push_sum_average``
  fix), plus a source lint that no default in ``src/repro`` hardcodes
  the dense engine outside doctest examples;
- cross-backend parity at V ∈ {1, 2, 4} on dense/sparse/sharded;
- V = 1 byte-identity across kernels × executors (the historical code
  path must be executed literally);
- per-channel eq.-7 convergence: one converged channel must not stop a
  straggler channel;
- float32 multi-channel rounds stay within drift tolerance;
- the scalar-state backends (message/async) raise the typed capability
  error instead of silently averaging channels.
"""

from __future__ import annotations

import inspect
import pathlib
import re

import numpy as np
import pytest

import repro.core.backend as backend_mod
from repro.core.backend import (
    BackendCapabilityError,
    GossipConfig,
    choose_backend_name,
    run_backend,
)
from repro.core.convergence import ConvergenceProtocol, channel_deviations
from repro.core.kernels import available_kernels
from repro.core.sharded_engine import ShardedGossipEngine
from repro.core.sparse_engine import SparseGossipEngine
from repro.core.vector_engine import VectorGossipEngine
from repro.facade import aggregate
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.network.topology_example import example_network
from repro.trust.matrix import TrustMatrix, random_trust_matrix

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(200, m=2, rng=7)


@pytest.fixture(scope="module")
def stacked_values(graph):
    return np.random.default_rng(11).random((graph.num_nodes, 4))


class TestSweptBackendDefaults:
    """The last ``backend="dense"`` default sweep, pinned.

    Every entry point that used to hardcode the dense engine must now
    follow the auto policy — the same bug class PR 4 fixed in
    ``push_sum_average`` and PR 7 fixed in ``collusion_impact``.
    """

    def test_signature_defaults_are_auto(self):
        from repro.core.rounds import GossipRoundManager
        from repro.core.vector_gclr import aggregate_vector_gclr
        from repro.core.vector_global import aggregate_vector_global
        from repro.experiments import fig3, fig4, table2, xi_accuracy

        for fn in (
            aggregate_vector_global,
            aggregate_vector_gclr,
            GossipRoundManager.__init__,
            fig3.run,
            fig4.run,
            table2.run,
            xi_accuracy.run,
        ):
            assert inspect.signature(fn).parameters["backend"].default == "auto", fn

    @pytest.fixture
    def spy(self, monkeypatch):
        chosen = []
        real_get_backend = backend_mod.get_backend
        monkeypatch.setattr(
            backend_mod,
            "get_backend",
            lambda name: chosen.append(backend_mod.resolve_backend_name(name))
            or real_get_backend(name),
        )
        return chosen

    def test_vector_global_follows_auto_policy(self, spy):
        from repro.core.vector_global import aggregate_vector_global

        g = example_network()
        result = aggregate_vector_global(
            g, random_trust_matrix(g, rng=3), targets=[0, 1], xi=1e-3, rng=5
        )
        assert result.outcome.steps > 0
        assert spy == [choose_backend_name(g)]

    def test_vector_gclr_follows_auto_policy(self, spy):
        from repro.core.vector_gclr import aggregate_vector_gclr

        g = example_network()
        result = aggregate_vector_gclr(
            g, random_trust_matrix(g, rng=3), targets=[0, 1], xi=1e-3, rng=5
        )
        assert result.outcome.steps > 0
        assert spy == [choose_backend_name(g)]

    def test_round_manager_follows_auto_policy(self, spy):
        from repro.core.rounds import GossipRoundManager

        g = preferential_attachment_graph(40, m=2, rng=0)
        manager = GossipRoundManager(g, rng=1)
        manager.run_round(random_trust_matrix(g, rng=2), targets=[1, 2])
        assert spy == [choose_backend_name(g)]

    def test_scenario_pins_swept_to_auto(self):
        from repro.scenarios import get_scenario
        from repro.scenarios import library  # noqa: F401 - registration

        assert get_scenario("collusion-under-churn").backend == "auto"
        assert get_scenario("flash-crowd").backend == "auto"

    def test_no_dense_default_left_in_src(self):
        """Source lint: no ``backend="dense"`` default outside doctests."""
        pattern = re.compile(r"backend(?::\s*str)?\s*=\s*\"dense\"")
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.lstrip()
                if stripped.startswith(">>>") or stripped.startswith("... "):
                    continue  # doctest examples may pin any backend
                if pattern.search(line):
                    offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}")
        assert not offenders, (
            "hardcoded dense-backend defaults remain: " + ", ".join(offenders)
        )


class TestCrossBackendParity:
    """dense/sparse/sharded agree to 1e-8 at every channel count."""

    @pytest.mark.parametrize("num_channels", [1, 2, 4])
    def test_backends_agree(self, num_channels):
        g = example_network()
        values = np.random.default_rng(11).random((g.num_nodes, num_channels))
        weights = np.ones_like(values)
        config = GossipConfig(
            xi=1e-10, max_steps=100_000, rng=5, num_channels=num_channels
        )
        estimates = {}
        for backend in ("dense", "sparse", "sharded"):
            out = run_backend(g, values, weights, config=config, backend=backend)
            assert out.num_channels == num_channels
            estimates[backend] = out.estimates
            # Every channel hits its own fixpoint: per-channel estimates
            # land on the channel's column means.
            truth = values.mean(axis=0)
            assert np.abs(out.estimates - truth[None, :]).max() < 1e-8
            if num_channels > 1:
                assert out.channel_converged is not None
                assert out.channel_converged.shape == (g.num_nodes, num_channels)
                assert out.channel_converged.all()
        names = sorted(estimates)
        for a in names:
            for b in names:
                np.testing.assert_allclose(
                    estimates[a], estimates[b], atol=1e-8, err_msg=f"{a} vs {b}"
                )


class TestV1ByteIdentity:
    """``num_channels=1`` executes the historical code path literally."""

    def test_facade_single_channel_list_is_byte_identical(self, graph):
        values = np.random.default_rng(3).random(graph.num_nodes)
        config = GossipConfig(xi=1e-6, rng=9)
        plain = aggregate(graph, values, config, backend="sparse")
        listed = aggregate(graph, [values], config, backend="sparse")
        assert plain.steps == listed.steps
        np.testing.assert_array_equal(plain.values, listed.values)
        np.testing.assert_array_equal(plain.weights, listed.weights)

    def test_config_channel_one_is_byte_identical_on_dense(self, graph):
        values = np.random.default_rng(3).random(graph.num_nodes)
        weights = np.ones_like(values)
        old = run_backend(
            graph, values, weights, config=GossipConfig(xi=1e-6, rng=9),
            backend="dense",
        )
        new = run_backend(
            graph, values, weights,
            config=GossipConfig(xi=1e-6, rng=9, num_channels=1), backend="dense",
        )
        assert old.steps == new.steps
        np.testing.assert_array_equal(old.values, new.values)
        np.testing.assert_array_equal(old.weights, new.weights)

    @pytest.mark.parametrize("kernel", sorted(available_kernels()))
    def test_sparse_kernels_byte_identical(self, graph, kernel):
        values = np.random.default_rng(4).random((graph.num_nodes, 2))
        weights = np.ones_like(values)
        old = SparseGossipEngine(graph, rng=6, kernel=kernel).run(
            values, weights, xi=1e-6, max_steps=2000
        )
        new = SparseGossipEngine(graph, rng=6, kernel=kernel).run(
            values, weights, xi=1e-6, max_steps=2000, num_channels=1
        )
        assert old.steps == new.steps
        np.testing.assert_array_equal(old.values, new.values)
        np.testing.assert_array_equal(old.weights, new.weights)

    @pytest.mark.parametrize("executor", ["inline", "threads", "processes"])
    def test_sharded_executors_byte_identical(self, graph, executor):
        values = np.random.default_rng(4).random(graph.num_nodes)
        weights = np.ones_like(values)
        old = ShardedGossipEngine(graph, rng=6, executor=executor).run(
            values, weights, xi=1e-6, max_steps=2000
        )
        new = ShardedGossipEngine(graph, rng=6, executor=executor).run(
            values, weights, xi=1e-6, max_steps=2000, num_channels=1
        )
        assert old.steps == new.steps
        np.testing.assert_array_equal(old.values, new.values)
        np.testing.assert_array_equal(old.weights, new.weights)


class TestPerChannelConvergence:
    """One converged channel must not stop a straggler channel."""

    def test_protocol_waits_for_every_channel(self):
        g = example_network()
        n = g.num_nodes
        protocol = ConvergenceProtocol(
            g, 1e-3, num_components=2, num_channels=2, patience=1
        )
        heard = np.ones(n, dtype=bool)
        # Channel 0 is motionless (satisfied); channel 1 still moves.
        moving = np.column_stack([np.zeros(n), np.full(n, 1.0)])
        for _ in range(4):
            announced = protocol.observe(moving, heard)
            assert announced.size == 0
        assert protocol.channel_converged[:, 0].all()
        assert not protocol.channel_converged[:, 1].any()
        assert not protocol.converged.any()
        # The straggler settles: only now do nodes announce.
        announced = protocol.observe(np.zeros((n, 2)), heard)
        assert announced.size == n
        assert protocol.channel_converged.all()

    def test_channel_latch_is_permanent(self):
        g = example_network()
        n = g.num_nodes
        protocol = ConvergenceProtocol(
            g, 1e-3, num_components=2, num_channels=2, patience=1
        )
        heard = np.ones(n, dtype=bool)
        protocol.observe(np.column_stack([np.zeros(n), np.full(n, 1.0)]), heard)
        assert protocol.channel_converged[:, 0].all()
        # Later movement on a latched channel does not un-latch it.
        protocol.observe(np.full((n, 2), 1.0), heard)
        assert protocol.channel_converged[:, 0].all()

    def test_engine_round_outlives_fast_channel(self, graph):
        n = graph.num_nodes
        rng = np.random.default_rng(8)
        constant = np.full(n, 0.5)
        slow = rng.random(n)
        fast_alone = VectorGossipEngine(graph, rng=2).run(
            constant, np.ones(n), xi=1e-8, max_steps=3000
        )
        stacked = VectorGossipEngine(graph, rng=2).run(
            np.column_stack([constant, slow]),
            np.ones((n, 2)),
            xi=1e-8,
            max_steps=3000,
            num_channels=2,
        )
        assert stacked.converged.all()
        assert stacked.channel_converged.all()
        # The constant channel alone stops early; stacked with a
        # straggler it must keep gossiping until both channels latch.
        assert stacked.steps >= fast_alone.steps

    def test_channel_deviations_sums_channel_major(self):
        new = np.array([[1.0, 2.0, 3.0, 4.0]])
        old = np.array([[0.5, 2.5, 3.0, 5.0]])
        out = channel_deviations(new, old, 2)
        np.testing.assert_allclose(out, [[1.0, 1.0]])


class TestFloat32Channels:
    """float32 multi-channel rounds stay within drift tolerance."""

    def test_sparse_float32_matches_float64(self, graph, stacked_values):
        weights = np.ones_like(stacked_values)
        f64 = SparseGossipEngine(graph, rng=5).run(
            stacked_values, weights, xi=1e-6, max_steps=3000, num_channels=4
        )
        f32 = SparseGossipEngine(graph, rng=5, dtype=np.float32).run(
            stacked_values, weights, xi=1e-6, max_steps=3000, num_channels=4
        )
        assert f32.values.dtype == np.float32
        assert f32.converged.all()
        np.testing.assert_allclose(
            f32.estimates.astype(np.float64), f64.estimates, atol=1e-3
        )


class TestCapabilityErrors:
    """Scalar-state backends reject V > 1 with the typed error."""

    @pytest.mark.parametrize("backend", ["message", "async"])
    def test_rejects_multi_channel(self, backend):
        g = example_network()
        values = np.random.default_rng(1).random((g.num_nodes, 2))
        with pytest.raises(BackendCapabilityError, match="channel"):
            run_backend(
                g, values, np.ones_like(values),
                config=GossipConfig(num_channels=2), backend=backend,
            )

    def test_auto_policy_skips_message_for_channels(self):
        g = example_network()  # 10 nodes: auto would pick message at V=1
        assert choose_backend_name(g) == "message"
        assert choose_backend_name(g, GossipConfig(num_channels=2)) == "dense"


class TestChannelApi:
    """GossipOutcome / GossipConfig / facade channel surface."""

    def test_config_validates_num_channels(self):
        with pytest.raises(ValueError, match="num_channels"):
            GossipConfig(num_channels=0)

    def test_outcome_channel_accessors(self, graph):
        t1 = random_trust_matrix(graph, rng=1)
        t2 = random_trust_matrix(graph, rng=2)
        out = aggregate(
            graph, [t1, t2], GossipConfig(xi=1e-5, rng=4),
            backend="dense", variant="vector-global", targets=[0, 1, 2],
        )
        assert out.num_channels == 2
        assert out.components_per_channel == 3
        assert out.channel_slice(1) == slice(3, 6)
        assert out.channel_estimates(0).shape == (graph.num_nodes, 3)
        with pytest.raises(IndexError):
            out.channel_slice(2)

    def test_facade_rejects_channel_count_mismatch(self, graph):
        t1 = random_trust_matrix(graph, rng=1)
        t2 = random_trust_matrix(graph, rng=2)
        with pytest.raises(ValueError, match="num_channels"):
            aggregate(
                graph, [t1, t2], GossipConfig(num_channels=3),
                backend="dense", variant="vector-global", targets=[0],
            )

    def test_facade_rejects_ragged_channels(self, graph):
        t1 = random_trust_matrix(graph, rng=1)
        with pytest.raises(ValueError, match="columns"):
            aggregate(
                graph,
                [np.ones(graph.num_nodes), np.ones((graph.num_nodes, 2))],
                GossipConfig(),
                backend="dense",
            )

    def test_cross_channel_slander_targets_one_channel(self):
        from repro.attacks.models import make_attack

        n = 60
        t1, t2 = TrustMatrix(n), TrustMatrix(n)
        for i in range(n - 1):
            t1.set(i, i + 1, 0.9)
            t2.set(i, i + 1, 0.9)
        model = make_attack("cross-slander", fraction=0.3, seed=4, target_channel=1)
        (clean, poisoned), _ = model.apply_channels((t1, t2))
        assert clean is t1  # untouched channels are shared, not copied
        assert poisoned is not t2
