"""Unit tests for the dynamic newcomer-trust policy."""

import pytest

from repro.trust.newcomer_policy import DynamicNewcomerPolicy


class TestDynamicNewcomerPolicy:
    def test_quiet_network_full_benefit(self):
        policy = DynamicNewcomerPolicy(max_initial_trust=0.3)
        assert policy.initial_trust() == pytest.approx(0.3)

    def test_churn_decays_grant(self):
        policy = DynamicNewcomerPolicy(max_initial_trust=0.3, window=50.0)
        for _ in range(20):
            policy.observe_join(now=10.0, population=100)
        assert policy.initial_trust() < 0.1

    def test_monotone_in_join_count(self):
        policy = DynamicNewcomerPolicy()
        grants = [policy.initial_trust()]
        for i in range(5):
            policy.observe_join(now=float(i), population=50)
            grants.append(policy.initial_trust())
        assert all(a >= b for a, b in zip(grants, grants[1:]))

    def test_window_expiry_restores_grant(self):
        policy = DynamicNewcomerPolicy(window=10.0)
        for _ in range(10):
            policy.observe_join(now=0.0, population=100)
        depressed = policy.initial_trust(now=5.0)
        restored = policy.initial_trust(now=100.0)  # all joins expired
        assert restored > depressed
        assert restored == pytest.approx(policy.max_initial_trust)

    def test_join_rate(self):
        policy = DynamicNewcomerPolicy(window=100.0)
        for _ in range(5):
            policy.observe_join(now=1.0, population=50)
        assert policy.join_rate() == pytest.approx(0.1)

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            DynamicNewcomerPolicy().observe_join(now=0.0, population=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicNewcomerPolicy(max_initial_trust=1.5)
        with pytest.raises(ValueError):
            DynamicNewcomerPolicy(sensitivity=0.0)
        with pytest.raises(ValueError):
            DynamicNewcomerPolicy(window=-1.0)

    def test_zero_policy_limit(self):
        # With very high sensitivity the policy approaches the paper's
        # hard-zero rule under any churn at all.
        policy = DynamicNewcomerPolicy(max_initial_trust=0.3, sensitivity=1000.0)
        policy.observe_join(now=0.0, population=100)
        assert policy.initial_trust() < 0.001
