"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.simulation.events import EventScheduler


class TestScheduling:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, lambda s: fired.append("c"))
        sched.schedule(1.0, lambda s: fired.append("a"))
        sched.schedule(2.0, lambda s: fired.append("b"))
        assert sched.run() == 3
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda s: fired.append("first"))
        sched.schedule(1.0, lambda s: fired.append("second"))
        sched.run()
        assert fired == ["first", "second"]

    def test_now_advances(self):
        sched = EventScheduler()
        times = []
        sched.schedule(5.0, lambda s: times.append(s.now))
        sched.run()
        assert times == [5.0]
        assert sched.now == 5.0

    def test_rejects_past_scheduling(self):
        sched = EventScheduler()
        sched.schedule(5.0, lambda s: None)
        sched.run()
        with pytest.raises(ValueError, match="before current time"):
            sched.schedule(1.0, lambda s: None)

    def test_rejects_nonfinite_time(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(float("inf"), lambda s: None)

    def test_schedule_after(self):
        sched = EventScheduler()
        times = []
        sched.schedule(2.0, lambda s: s.schedule_after(3.0, lambda s2: times.append(s2.now)))
        sched.run()
        assert times == [5.0]

    def test_schedule_after_rejects_negative(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_after(-1.0, lambda s: None)


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, lambda s: fired.append("x"))
        handle.cancel()
        assert sched.run() == 0
        assert fired == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        sched = EventScheduler()
        handle = sched.schedule(1.0, lambda s: None)
        sched.schedule(2.0, lambda s: None)
        assert sched.pending == 2
        handle.cancel()
        assert sched.pending == 1


class TestRunControls:
    def test_until_stops_early_and_advances_clock(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda s: fired.append(1))
        sched.schedule(10.0, lambda s: fired.append(10))
        count = sched.run(until=5.0)
        assert count == 1
        assert fired == [1]
        assert sched.now == 5.0
        # The late event is still pending.
        assert sched.pending == 1

    def test_max_events_caps_runaway(self):
        sched = EventScheduler()

        def reschedule(s):
            s.schedule_after(1.0, reschedule)

        sched.schedule(0.0, reschedule)
        fired = sched.run(max_events=50)
        assert fired == 50

    def test_step_returns_none_when_empty(self):
        assert EventScheduler().step() is None

    def test_step_returns_time_and_result(self):
        sched = EventScheduler()
        sched.schedule(2.0, lambda s: "payload")
        time, result = sched.step()
        assert time == 2.0
        assert result == "payload"

    def test_events_scheduled_during_run_fire(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda s: s.schedule_after(1.0, lambda s2: fired.append("child")))
        sched.run()
        assert fired == ["child"]


class TestCancellationRegressions:
    """Regressions for the interactions the async engine leans on:
    stable FIFO tie-break even when some tied events are cancelled, and
    cancellation being a silent no-op once an event has already fired."""

    def test_tie_break_survives_interleaved_cancellation(self):
        # Five events tied at t=1; cancelling the 1st, 3rd and 5th must
        # not disturb the insertion order of the survivors (a heap that
        # re-keys on removal would reshuffle them).
        sched = EventScheduler()
        fired = []
        handles = [
            sched.schedule(1.0, lambda s, tag=tag: fired.append(tag))
            for tag in ("a", "b", "c", "d", "e")
        ]
        handles[0].cancel()
        handles[2].cancel()
        handles[4].cancel()
        assert sched.pending == 2
        assert sched.run() == 2
        assert fired == ["b", "d"]

    def test_tie_break_with_cancellation_is_replay_deterministic(self):
        def replay():
            sched = EventScheduler()
            fired = []
            keep = []
            for tag in range(20):
                handle = sched.schedule(1.0, lambda s, t=tag: fired.append(t))
                keep.append((tag, handle))
            for tag, handle in keep:
                if tag % 3 == 0:
                    handle.cancel()
            sched.run()
            return fired

        first = replay()
        assert first == replay()
        assert first == [t for t in range(20) if t % 3 != 0]

    def test_cancel_after_fire_is_a_silent_noop(self):
        sched = EventScheduler()
        fired = []
        handle = sched.schedule(1.0, lambda s: fired.append("x"))
        sched.schedule(2.0, lambda s: fired.append("y"))
        assert sched.step() == (1.0, None) or fired == ["x"]
        handle.cancel()  # already fired: must not raise or eat "y"
        assert handle.cancelled
        assert sched.run() == 1
        assert fired == ["x", "y"]

    def test_cancel_twice_is_idempotent(self):
        sched = EventScheduler()
        handle = sched.schedule(1.0, lambda s: None)
        handle.cancel()
        handle.cancel()
        assert sched.pending == 0
        assert sched.run() == 0
