"""Adversary engine: registry, purity/determinism, family semantics,
cross-backend agreement and the backend-default regression tests.

The load-bearing acceptance checks live here: every registered attack
family must be measurable through :func:`attack_impact` on all four
gossip backends with 1e-8 agreement, and the measurement's default
backend must follow the auto policy instead of silently pinning the
dense engine (the bug class PR 4 fixed in ``push_sum_average``).
"""

import numpy as np
import pytest

from repro.attacks import (
    AttackModel,
    CollusionModel,
    ComposedAttack,
    OnOffModel,
    SlanderingModel,
    SybilFloodModel,
    WhitewashingAttackModel,
    attack_impact,
    attack_impact_series,
    available_attacks,
    collusion_impact,
    get_attack,
    make_attack,
    register_attack,
    resolve_attack_name,
    stack_attacks,
)
from repro.attacks.evaluate import as_attack_model
from repro.attacks.models import UnknownAttackError
from repro.core.backend import GossipConfig
from repro.network.mutable import MutableOverlay
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.trust.matrix import TrustMatrix, complete_trust_matrix

FAMILY_PARAMS = {
    "collusion": dict(fraction=0.2, group_size=3),
    "slandering": dict(fraction=0.2, victim_fraction=0.15),
    "whitewashing": dict(fraction=0.2),
    "on-off": dict(fraction=0.2, period=2, on_epochs=1),
    "sybil": dict(sybil_fraction=0.2, collude_width=3, slander_width=3),
}


@pytest.fixture(scope="module")
def world():
    graph = preferential_attachment_graph(24, m=2, rng=3)
    trust = complete_trust_matrix(24, rng=4)
    return graph, trust


def matrix_state(trust):
    """Hashable full snapshot: values plus the explicit-entry mask."""
    return (trust.to_dense().tobytes(), trust.observation_mask().tobytes())


class TestRegistry:
    def test_builtin_families_registered(self):
        names = available_attacks()
        for expected in ("collusion", "whitewashing", "slandering", "on-off", "sybil"):
            assert expected in names

    def test_aliases_resolve(self):
        assert resolve_attack_name("bad-mouthing") == "slandering"
        assert resolve_attack_name("oscillation") == "on-off"
        assert resolve_attack_name("sybil-flood") == "sybil"
        assert resolve_attack_name("whitewash") == "whitewashing"
        assert get_attack("badmouthing") is get_attack("slandering")

    def test_unknown_family_raises_value_and_key_error(self):
        with pytest.raises(UnknownAttackError, match="available"):
            get_attack("ddos")
        with pytest.raises(ValueError):
            get_attack("ddos")
        with pytest.raises(KeyError):
            make_attack("ddos")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_attack("collusion", CollusionModel)
        with pytest.raises(ValueError, match="alias"):
            register_attack("fresh-name", CollusionModel, aliases=("sybil",))

    def test_make_attack_forwards_params(self):
        model = make_attack("slandering", fraction=0.3, victim_fraction=0.2, seed=9)
        assert isinstance(model, SlanderingModel)
        assert model.fraction == 0.3 and model.seed == 9

    def test_custom_family_plugs_into_attack_impact(self, world):
        from repro.attacks import models as models_mod

        graph, trust = world

        class NoOpAttack(AttackModel):
            name = "noop-test"

            def apply(self, trust, overlay=None, *, epoch=0):
                return trust.copy(), overlay

        register_attack("noop-test", NoOpAttack, overwrite=True)
        try:
            impact = attack_impact(
                graph, trust, "noop-test", targets=[0, 5],
                config=GossipConfig(xi=1e-5, rng=2), backend="dense",
            )
            # A no-op adversary measures exactly zero under shared seeds.
            assert impact.rms_gclr == 0.0
            assert impact.rms_unweighted == 0.0
        finally:
            # Don't leak the fixture family into the global registry.
            models_mod._ATTACKS.pop("noop-test", None)

    def test_as_attack_model_rejects_garbage(self):
        with pytest.raises(TypeError, match="AttackModel"):
            as_attack_model(42)


class TestPurityAndDeterminism:
    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_apply_never_mutates_inputs(self, world, family):
        graph, trust = world
        before = matrix_state(trust)
        overlay = MutableOverlay.from_graph(graph)
        edges_before = overlay.num_edges
        model = make_attack(family, seed=11, **FAMILY_PARAMS[family])
        model.apply(trust, overlay, epoch=0)
        assert matrix_state(trust) == before
        assert overlay.num_edges == edges_before
        assert overlay.num_peers == graph.num_nodes

    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_same_seed_epoch_replays_identically(self, world, family):
        graph, trust = world
        model = make_attack(family, seed=11, **FAMILY_PARAMS[family])
        a = model.poison(trust, MutableOverlay.from_graph(graph), epoch=2)
        b = model.poison(trust, MutableOverlay.from_graph(graph), epoch=2)
        assert matrix_state(a) == matrix_state(b)

    def test_different_seeds_differ(self, world):
        graph, trust = world
        a = SlanderingModel(fraction=0.2, victim_fraction=0.2, seed=1).poison(trust)
        b = SlanderingModel(fraction=0.2, victim_fraction=0.2, seed=2).poison(trust)
        assert matrix_state(a) != matrix_state(b)


class TestFamilySemantics:
    def test_collusion_rows(self, world):
        graph, trust = world
        model = CollusionModel(fraction=0.25, group_size=3, seed=5)
        attack = model.attack_for(24)
        poisoned = model.poison(trust)
        group = attack.groups[0]
        colluder = group[0]
        for target in range(24):
            if target == colluder:
                continue
            expected = 1.0 if target in group else 0.0
            assert poisoned.get(colluder, target) == expected

    def test_slandering_touches_only_victim_entries(self, world):
        graph, trust = world
        model = SlanderingModel(fraction=0.2, victim_fraction=0.15, seed=5)
        slanderers, victims = model.cast(24)
        assert set(slanderers).isdisjoint(set(victims))
        poisoned = model.poison(trust)
        victim_set = set(int(v) for v in victims)
        for s in slanderers:
            for target in range(24):
                if target == int(s):
                    continue
                if target in victim_set:
                    assert poisoned.get(int(s), target) == 0.0
                else:
                    assert poisoned.get(int(s), target) == trust.get(int(s), target)

    def test_slandering_victim_cap(self, world):
        _, trust = world
        model = SlanderingModel(fraction=0.2, victim_fraction=0.5, max_victims=2, seed=5)
        _, victims = model.cast(24)
        assert victims.size == 2

    def test_slandering_caps_victims_by_default(self):
        # The planting loop is O(slanderers x victims); an uncapped
        # default would densify the matrix at advertised scales.
        model = SlanderingModel(seed=1)
        assert model.max_victims == SlanderingModel.DEFAULT_MAX_VICTIMS
        _, victims = model.cast(100_000)
        assert victims.size == SlanderingModel.DEFAULT_MAX_VICTIMS
        # Lifting the cap is an explicit act.
        _, uncapped = SlanderingModel(victim_fraction=0.01, max_victims=None, seed=1).cast(
            50_000
        )
        assert uncapped.size == 500

    def test_whitewashing_erases_incoming_keeps_outgoing(self, world):
        graph, trust = world
        model = WhitewashingAttackModel(fraction=0.2, seed=7)
        washers = model.whitewashers_for(24)
        poisoned = model.poison(trust)
        for w in washers:
            assert poisoned.observers_of(int(w)) == frozenset()
            # Outgoing opinions survive: identity changed, knowledge did not.
            row = poisoned.row(int(w))
            honest_row = trust.row(int(w))
            for target, value in honest_row.items():
                if int(target) not in set(int(x) for x in washers):
                    assert row[target] == value

    def test_whitewashing_benefit_of_doubt_grants_former_observers_only(self):
        trust = TrustMatrix(5)
        trust.set(0, 2, 0.1)
        trust.set(1, 2, 0.2)
        model = WhitewashingAttackModel(fraction=0.3, newcomer_trust=0.5, seed=0)
        # Force node 2 to be the washer via a tiny bespoke matrix sweep.
        washed = None
        for seed in range(50):
            candidate = WhitewashingAttackModel(fraction=0.3, newcomer_trust=0.5, seed=seed)
            if 2 in set(int(w) for w in candidate.whitewashers_for(5)):
                model, washed = candidate, 2
                break
        assert washed == 2
        poisoned = model.poison(trust)
        grants = {obs: poisoned.get(obs, 2) for obs in poisoned.observers_of(2)}
        assert set(grants) <= {0, 1}  # never a manufactured observer
        assert all(v == 0.5 for v in grants.values())

    def test_on_off_duty_cycle(self, world):
        graph, trust = world
        model = OnOffModel(fraction=0.2, period=3, on_epochs=1, seed=5)
        assert [model.is_on(e) for e in range(6)] == [True, False, False] * 2
        off = model.poison(trust, epoch=1)
        assert matrix_state(off) == matrix_state(trust)
        on = model.poison(trust, epoch=3)
        assert matrix_state(on) != matrix_state(trust)

    def test_on_off_wraps_inner_family(self, world):
        graph, trust = world
        inner = SlanderingModel(fraction=0.2, victim_fraction=0.15, seed=5)
        model = OnOffModel(fraction=0.2, period=2, on_epochs=1, inner=inner, seed=5)
        assert matrix_state(model.poison(trust, epoch=0)) == matrix_state(
            inner.poison(trust, epoch=0)
        )

    def test_on_off_validation(self):
        with pytest.raises(ValueError, match="on_epochs"):
            OnOffModel(on_epochs=0)
        with pytest.raises(ValueError, match="on_epochs"):
            OnOffModel(period=2, on_epochs=3)

    def test_sybil_enlarges_world_without_touching_honest_block(self, world):
        graph, trust = world
        model = SybilFloodModel(sybil_fraction=0.25, collude_width=2, slander_width=2, seed=5)
        poisoned, flooded = model.apply(trust, MutableOverlay.from_graph(graph))
        swarm = model.sybil_count(24)
        assert poisoned.num_nodes == 24 + swarm
        assert flooded.num_peers == 24 + swarm
        # Honest opinions are untouched, in both value and mask.
        for observer in range(24):
            assert {
                t: v for t, v in poisoned.row(observer).items()
            } == trust.row(observer)
        # Honest peers hold no opinion about the strangers (zero initial
        # trust — the paper's whitewashing/sybil defence).
        for sid in range(24, 24 + swarm):
            assert all(obs >= 24 for obs in poisoned.observers_of(sid) if obs != sid)
        # The snapshot is a contiguous, valid graph.
        dirty_graph, pids = flooded.snapshot()
        np.testing.assert_array_equal(pids, np.arange(24 + swarm))
        flooded.check_invariants()

    def test_sybil_requires_aligned_overlay(self, world):
        graph, trust = world
        with pytest.raises(ValueError, match="overlay"):
            SybilFloodModel(seed=1).apply(trust, None)
        overlay = MutableOverlay.from_graph(graph)
        overlay.add_peer(m=2, rng=0)  # peer ids now outrun the matrix
        with pytest.raises(ValueError, match="align"):
            SybilFloodModel(seed=1).apply(trust, overlay)

    def test_composed_attack_stacks(self, world):
        graph, trust = world
        collusion = CollusionModel(fraction=0.1, group_size=2, seed=2)
        sybil = SybilFloodModel(sybil_fraction=0.1, collude_width=1, slander_width=1, seed=2)
        stacked = stack_attacks(collusion, sybil)
        assert stacked.affects_topology
        assert not stack_attacks(collusion).affects_topology
        poisoned, flooded = stacked.apply(trust, MutableOverlay.from_graph(graph))
        # Both effects present: enlarged world AND colluder rows.
        assert poisoned.num_nodes == 24 + sybil.sybil_count(24)
        colluder = stacked.attacks[0].attack_for(24).groups[0][0]
        group = set(stacked.attacks[0].attack_for(24).groups[0])
        assert all(
            poisoned.get(colluder, t) == (1.0 if t in group else 0.0)
            for t in range(24)
            if t != colluder
        )

    def test_composed_attack_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ComposedAttack(attacks=())


class TestCrossBackendAgreement:
    """Acceptance: every family agrees to 1e-8 across all four backends."""

    TARGETS = [0, 3, 7, 11, 19]

    @pytest.fixture(scope="class")
    def impacts(self, world):
        graph, trust = world
        config = GossipConfig(xi=1e-10, rng=13, max_steps=100_000)
        table = {}
        for family, params in FAMILY_PARAMS.items():
            model = make_attack(family, seed=17, **params)
            exact = attack_impact(
                graph, trust, model, targets=self.TARGETS, use_gossip=False
            )
            table[family] = {
                "exact": exact,
                "gossip": {
                    backend: attack_impact(
                        graph,
                        trust,
                        model,
                        targets=self.TARGETS,
                        config=config,
                        backend=backend,
                    )
                    for backend in ("message", "dense", "sparse", "sharded")
                },
            }
        return table

    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_backends_agree_to_1e8(self, impacts, family):
        rows = impacts[family]["gossip"]
        values = {name: impact.rms_gclr for name, impact in rows.items()}
        reference = values["dense"]
        for name, value in values.items():
            assert value == pytest.approx(reference, abs=1e-8), (
                f"{family}: backend {name} rms {value} vs dense {reference}"
            )
        # The unweighted comparator never touches the gossip layer, so
        # it must be bit-identical across backends.
        unweighted = {impact.rms_unweighted for impact in rows.values()}
        assert len(unweighted) == 1

    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_gossip_approaches_exact_fixpoint(self, impacts, family):
        exact = impacts[family]["exact"].rms_gclr
        for name, impact in impacts[family]["gossip"].items():
            assert impact.rms_gclr == pytest.approx(exact, abs=1e-6), (
                f"{family} on {name}"
            )

    def test_sybil_worlds_enlarged_on_every_backend(self, impacts):
        for impact in impacts["sybil"]["gossip"].values():
            assert impact.num_nodes_dirty > 24


class TestImpactSeries:
    def test_on_off_series_traces_duty_cycle(self, world):
        graph, trust = world
        series = attack_impact_series(
            graph,
            trust,
            OnOffModel(fraction=0.2, period=2, on_epochs=1, seed=3),
            epochs=4,
            targets=[0, 5, 9],
            config=GossipConfig(xi=1e-5, rng=8),
            backend="dense",
        )
        assert [s.epoch for s in series] == [0, 1, 2, 3]
        # Honest phases cancel exactly under shared seeds.
        assert series[1].rms_gclr == 0.0 and series[3].rms_gclr == 0.0
        assert series[0].rms_gclr > 0.0
        # The seeded series is stationary across cycles.
        assert series[2].rms_gclr == pytest.approx(series[0].rms_gclr)

    def test_series_reuses_the_clean_run(self, world):
        # The clean world is epoch-invariant; the series must execute
        # its gossip run once, not once per epoch.
        graph, trust = world
        series = attack_impact_series(
            graph,
            trust,
            CollusionModel(fraction=0.2, group_size=2, seed=3),
            epochs=3,
            targets=[0, 5],
            config=GossipConfig(xi=1e-5, rng=8),
            backend="dense",
        )
        assert series[0].clean_outcome is series[1].clean_outcome is series[2].clean_outcome

    def test_on_off_wrapping_sybil_propagates_topology(self, world):
        # Regression: OnOffModel used to inherit affects_topology=False,
        # so a duty-cycled sybil flood crashed in attack_impact.
        graph, trust = world
        inner = SybilFloodModel(sybil_fraction=0.2, collude_width=2, slander_width=2, seed=5)
        model = OnOffModel(fraction=0.2, period=2, on_epochs=1, inner=inner, seed=5)
        assert model.affects_topology
        on = attack_impact(
            graph, trust, model, targets=[0, 5],
            config=GossipConfig(xi=1e-4, rng=8), epoch=0,
        )
        assert on.num_nodes_dirty == 24 + inner.sybil_count(24)
        off = attack_impact(
            graph, trust, model, targets=[0, 5],
            config=GossipConfig(xi=1e-4, rng=8), epoch=1,
        )
        assert off.num_nodes_dirty == 24 and off.rms_gclr == 0.0

    def test_static_family_traces_flat_line(self, world):
        graph, trust = world
        series = attack_impact_series(
            graph,
            trust,
            CollusionModel(fraction=0.2, group_size=2, seed=3),
            epochs=2,
            targets=[0, 5],
            config=GossipConfig(xi=1e-5, rng=8),
            backend="dense",
        )
        assert series[0].rms_gclr == series[1].rms_gclr

    def test_series_validates_epochs(self, world):
        graph, trust = world
        with pytest.raises(ValueError, match="epochs"):
            attack_impact_series(graph, trust, "collusion", epochs=0)


class TestDynamicHooks:
    """AttackModel.on_epoch against the live dynamic runtime."""

    def _run(self, attack, *, epochs=3, population=60):
        from repro.core.backend import GossipConfig as Config
        from repro.runtime.dynamics import run_dynamic
        from repro.runtime.trace import ChurnTrace

        overlay = MutableOverlay.grow_preferential(population, m=2, rng=3)
        trace = ChurnTrace.steady(
            epochs, population=population, join_rate=0.02, leave_rate=0.02, seed=5
        )
        return run_dynamic(
            overlay, trace, Config(delta=0.0), backend="dense",
            epoch_tol=1e-5, attack=attack,
        )

    def test_whitewashing_cycles_identities_each_epoch(self):
        result = self._run(WhitewashingAttackModel(fraction=0.1, seed=7))
        assert all(r.attack_events > 0 for r in result.records)
        # Δ=0 invariant survives identity churn: the estimate still
        # lands on the live-peer mean.
        assert result.final_record.mean_abs_error < 1e-3

    def test_sybil_flood_is_a_single_wave(self):
        # A join flood fires once at flood_epoch (per-epoch re-flooding
        # would compound (1 + fraction)^epochs and blow up the trace).
        result = self._run(SybilFloodModel(sybil_fraction=0.05, flood_epoch=1, seed=2))
        events = [r.attack_events for r in result.records]
        assert events[1] > 0
        assert events[0] == 0 and all(e == 0 for e in events[2:])
        assert result.records[1].num_peers > result.records[0].num_peers
        assert result.final_record.mean_abs_error < 1e-3

    def test_on_off_oscillators_republish(self):
        result = self._run(OnOffModel(fraction=0.1, period=2, on_epochs=1, seed=2))
        assert all(r.attack_events > 0 for r in result.records)
        # Inflated publications move the honest mean the network tracks;
        # the runtime must still converge onto it exactly.
        assert result.final_record.mean_abs_error < 1e-3

    def test_on_off_actually_turns_off(self):
        # Regression: per-epoch oscillator sampling left earlier
        # oscillators stuck at 1.0 through honest phases. Membership is
        # persistent now, so an honest phase resets exactly the peers
        # the attack phase inflated.
        from repro.core.backend import GossipConfig as Config
        from repro.network.mutable import MutableOverlay as Overlay
        from repro.runtime.dynamics import DynamicReputationRuntime
        from repro.runtime.trace import ChurnTrace

        attack = OnOffModel(fraction=0.2, period=2, on_epochs=1, seed=9)

        def final_opinions(epochs):
            runtime = DynamicReputationRuntime(
                Overlay.grow_preferential(60, m=2, rng=3),
                config=Config(delta=0.0),
                backend="dense",
                epoch_tol=1e-5,
                attack=attack,
            )
            runtime.run(
                ChurnTrace.steady(epochs, population=60, join_rate=0.0, leave_rate=0.0, seed=5)
            )
            return runtime.opinions()

        after_on = final_opinions(1)  # epoch 0 is an attack phase
        oscillators = attack.persistent_members(np.arange(60), attack.fraction)
        assert int((after_on == 1.0).sum()) == oscillators.size > 0
        after_off = final_opinions(2)  # epoch 1 is an honest phase
        assert not np.any(after_off == 1.0)

    def test_persistent_members_survive_growth(self):
        model = OnOffModel(fraction=0.3, seed=4)
        small = model.persistent_members(np.arange(50), 0.3)
        grown = model.persistent_members(np.arange(80), 0.3)
        # Existing ids never reshuffle when the overlay grows.
        np.testing.assert_array_equal(small, grown[grown < 50])

    def test_whitewash_forwards_epoch_to_newcomer_policy(self):
        # Regression: the hook used to drop epoch, so every whitewash
        # rejoin hit the policy's join-rate window at now=0.0.
        from repro.core.backend import GossipConfig as Config
        from repro.runtime.dynamics import run_dynamic
        from repro.runtime.trace import ChurnTrace
        from repro.trust.newcomer_policy import DynamicNewcomerPolicy

        class RecordingPolicy(DynamicNewcomerPolicy):
            def __init__(self):
                super().__init__(max_initial_trust=0.2)
                self.joins = []

            def observe_join(self, *, now, population):
                self.joins.append(float(now))
                return super().observe_join(now=now, population=population)

        policy = RecordingPolicy()
        overlay = MutableOverlay.grow_preferential(60, m=2, rng=3)
        trace = ChurnTrace.steady(3, population=60, join_rate=0.0, leave_rate=0.0, seed=5)
        run_dynamic(
            overlay, trace, Config(delta=0.0), backend="dense", epoch_tol=1e-5,
            newcomer_policy=policy,
            attack=WhitewashingAttackModel(fraction=0.1, seed=7),
        )
        assert sorted(set(policy.joins)) == [0.0, 1.0, 2.0]

    def test_dynamic_attack_replays_deterministically(self):
        a = self._run(WhitewashingAttackModel(fraction=0.1, seed=7))
        b = self._run(WhitewashingAttackModel(fraction=0.1, seed=7))
        assert [r.true_mean for r in a.records] == [r.true_mean for r in b.records]
        assert [r.attack_events for r in a.records] == [
            r.attack_events for r in b.records
        ]


class TestBackendDefaultRegression:
    """Satellite bugfix: the measurement must follow the auto policy.

    ``collusion_impact`` used to hardcode ``backend="dense"``, silently
    running every large-graph measurement through the dense engine's
    per-hub Python loop — the same bug class PR 4 fixed in
    ``push_sum_average``.
    """

    def test_signature_defaults_are_auto(self):
        import inspect

        assert inspect.signature(attack_impact).parameters["backend"].default == "auto"
        assert (
            inspect.signature(collusion_impact).parameters["backend"].default == "auto"
        )

    @pytest.fixture
    def big_ring(self):
        # Circulant graph with power-of-two chords: past the dense-auto
        # size limit yet log-diameter, so the gclr weight diffuses to
        # every node within the warmup-scale budget a coarse xi allows
        # (a plain ring would need diameter ~ N/2 steps).
        import repro.core.backend as backend_mod
        from repro.network.graph import Graph

        n = backend_mod.AUTO_DENSE_MAX_NODES + 1
        offsets = np.array(
            [d for k in range(15) for d in (1 << k, -(1 << k))], dtype=np.int64
        )
        neighbors = (np.arange(n, dtype=np.int64)[:, None] + offsets[None, :]) % n
        neighbors.sort(axis=1)
        indptr = np.arange(n + 1, dtype=np.int64) * offsets.size
        return Graph.from_csr(n, indptr, neighbors.reshape(-1), validate=False)

    @pytest.fixture
    def spy(self, monkeypatch):
        import repro.core.backend as backend_mod

        chosen = []
        real_get_backend = backend_mod.get_backend
        monkeypatch.setattr(
            backend_mod,
            "get_backend",
            lambda name: chosen.append(backend_mod.resolve_backend_name(name))
            or real_get_backend(name),
        )
        return chosen

    def _ring_trust(self, n):
        trust = TrustMatrix(n)
        for node in range(0, 64):
            trust.set(node, (node + 1) % n, 0.5)
            trust.set((node + 1) % n, node, 0.5)
        return trust

    def test_large_graph_routes_to_sparse_by_default(self, big_ring, spy):
        trust = self._ring_trust(big_ring.num_nodes)
        attack = CollusionModel(fraction=0.001, group_size=1, seed=1).attack_for(64)
        # Coarse xi: convergence lands right after warmup — the
        # assertion is about routing, not the estimate.
        impact = collusion_impact(
            big_ring, trust, attack, targets=[0, 1], config=GossipConfig(xi=1.0, rng=2)
        )
        assert spy and set(spy) == {"sparse"}
        assert impact.backend == "sparse"

    def test_explicit_backend_still_honoured(self, world, spy):
        graph, trust = world
        attack = CollusionModel(fraction=0.2, group_size=2, seed=1).attack_for(24)
        collusion_impact(
            graph, trust, attack, targets=[0, 1],
            config=GossipConfig(xi=1e-2, rng=2), backend="dense",
        )
        assert spy and set(spy) == {"dense"}

    def test_auto_resolves_once_for_clean_and_dirty(self, world, spy):
        # Sybil floods enlarge the dirty world; both runs must still
        # execute on the same (once-resolved) engine.
        graph, trust = world
        attack_impact(
            world[0], world[1], SybilFloodModel(sybil_fraction=0.2, seed=1),
            targets=[0, 1], config=GossipConfig(xi=1e-2, rng=2),
        )
        assert len(set(spy)) == 1
