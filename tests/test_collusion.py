"""Unit tests for the collusion attack models."""

import numpy as np
import pytest

from repro.attacks.collusion import (
    CollusionAttack,
    apply_collusion,
    group_colluders,
    individual_collusion,
    select_colluders,
)
from repro.trust.matrix import TrustMatrix


class TestCollusionAttack:
    def test_groups_and_colluders(self):
        attack = CollusionAttack(groups=((0, 1), (2,)))
        assert attack.colluders == frozenset({0, 1, 2})
        assert attack.num_colluders == 3
        assert attack.group_of(1) == (0, 1)

    def test_group_of_honest_raises(self):
        attack = CollusionAttack(groups=((0, 1),))
        with pytest.raises(KeyError):
            attack.group_of(9)

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ValueError, match="more than one"):
            CollusionAttack(groups=((0, 1), (1, 2)))

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="non-empty"):
            CollusionAttack(groups=((),))

    def test_empty_attack(self):
        attack = CollusionAttack()
        assert attack.num_colluders == 0


class TestSelectColluders:
    def test_count_matches_fraction(self):
        colluders = select_colluders(100, 0.3, rng=1)
        assert colluders.size == 30
        assert np.unique(colluders).size == 30

    def test_respects_exclusions(self):
        colluders = select_colluders(50, 0.5, rng=2, exclude=range(25))
        assert all(c >= 25 for c in colluders)

    def test_zero_fraction(self):
        assert select_colluders(100, 0.0, rng=3).size == 0

    def test_rejects_full_fraction(self):
        with pytest.raises(ValueError):
            select_colluders(100, 1.0)

    def test_deterministic(self):
        a = select_colluders(100, 0.2, rng=7)
        b = select_colluders(100, 0.2, rng=7)
        assert np.array_equal(a, b)


class TestGroupColluders:
    def test_even_partition(self):
        attack = group_colluders(np.array([0, 1, 2, 3]), 2)
        assert attack.groups == ((0, 1), (2, 3))

    def test_remainder_forms_small_group(self):
        attack = group_colluders(np.array([0, 1, 2, 3, 4]), 2)
        assert attack.groups[-1] == (4,)
        assert attack.num_colluders == 5

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            group_colluders(np.array([0]), 0)


class TestApplyCollusion:
    def test_praise_and_badmouth(self):
        t = TrustMatrix(5)
        t.set(0, 3, 0.9)  # colluder 0's honest opinion (to be wiped)
        attack = CollusionAttack(groups=((0, 1),))
        poisoned = apply_collusion(t, attack)
        assert poisoned.get(0, 1) == 1.0  # praises group-mate
        assert poisoned.get(1, 0) == 1.0
        assert poisoned.get(0, 3) == 0.0  # badmouths the honest node
        assert poisoned.has(0, 3)  # the 0 is an explicit report
        assert poisoned.get(0, 4) == 0.0

    def test_honest_rows_untouched(self):
        t = TrustMatrix(4)
        t.set(2, 0, 0.6)
        attack = CollusionAttack(groups=((0, 1),))
        poisoned = apply_collusion(t, attack)
        assert poisoned.get(2, 0) == 0.6

    def test_original_not_mutated(self):
        t = TrustMatrix(4)
        t.set(0, 2, 0.5)
        apply_collusion(t, CollusionAttack(groups=((0, 1),)))
        assert t.get(0, 2) == 0.5
        assert t.num_observations == 1

    def test_colluder_reports_about_everyone(self):
        t = TrustMatrix(6)
        attack = CollusionAttack(groups=((2, 3),))
        poisoned = apply_collusion(t, attack)
        assert len(poisoned.row(2)) == 5  # all but itself

    def test_singleton_group_badmouths_only(self):
        t = TrustMatrix(4)
        poisoned = apply_collusion(t, CollusionAttack(groups=((1,),)))
        row = poisoned.row(1)
        assert all(v == 0.0 for v in row.values())


class TestIndividualCollusion:
    def test_builds_singleton_groups(self):
        attack = individual_collusion(60, 0.2, rng=5)
        assert all(len(g) == 1 for g in attack.groups)
        assert attack.num_colluders == 12
