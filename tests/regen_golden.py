"""Golden-value fixtures for the experiment pipelines.

The experiment runners (fig3, fig4, table2, ...) are fully seeded, so a
small run's output table is a deterministic function of the code. The
JSON files under ``tests/data/golden/`` pin those tables; the
regression test (:mod:`tests.test_golden_regression`) re-runs the same
small configurations and diffs every cell, so a refactor that silently
shifts the numerics — a reordered reduction, a changed rng stream, an
off-by-one in the push rule — fails review instead of drifting into the
published tables.

When a change *intentionally* moves the numbers (a new rng layout, a
bugfix to the update rule), regenerate the fixtures and commit the diff
alongside the code so the review sees exactly which cells moved::

    PYTHONPATH=src python -m tests.regen_golden

The configurations are deliberately tiny (a second or two in total):
golden fixtures guard against *drift*, not statistical quality — the
full-scale sweeps remain the experiments' own job.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

GOLDEN_DIR = Path(__file__).parent / "data" / "golden"

#: Experiment id -> the exact small-run kwargs the fixture pins.
GOLDEN_SPECS: Dict[str, dict] = {
    "fig3": dict(sizes=(60, 120), xis=(1e-2, 1e-3), seed=11, backend="dense"),
    "fig4": dict(
        num_nodes=150, loss_probabilities=(0.0, 0.2), xis=(1e-2, 1e-3), seed=13, backend="dense"
    ),
    "table2": dict(sizes=(60, 120), xis=(1e-2, 1e-3), seed=7, backend="dense"),
    "attack_slander": dict(
        num_nodes=80,
        fractions=(0.1, 0.3),
        victim_fraction=0.15,
        num_targets=20,
        xi=1e-3,
        seed=21,
        backend="dense",
    ),
    "attack_sybil": dict(
        num_nodes=80,
        sybil_fractions=(0.1, 0.25),
        num_targets=20,
        xi=1e-3,
        seed=27,
        backend="dense",
    ),
}


def _plain(cell):
    """JSON-safe cell: numpy scalars to Python, everything else as-is."""
    if hasattr(cell, "item"):
        return cell.item()
    return cell


def run_golden(experiment_id: str):
    """Execute the pinned small configuration of one experiment."""
    from repro.experiments.registry import get_experiment

    return get_experiment(experiment_id)(**GOLDEN_SPECS[experiment_id])


def golden_payload(experiment_id: str) -> dict:
    """The JSON document a fixture stores for one experiment."""
    result = run_golden(experiment_id)
    return {
        "experiment_id": result.experiment_id,
        "spec": {key: list(v) if isinstance(v, tuple) else v for key, v in GOLDEN_SPECS[experiment_id].items()},
        "headers": list(result.headers),
        "rows": [[_plain(cell) for cell in row] for row in result.rows],
    }


def golden_path(experiment_id: str) -> Path:
    """Fixture file for one experiment."""
    return GOLDEN_DIR / f"{experiment_id}.json"


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for experiment_id in sorted(GOLDEN_SPECS):
        payload = golden_payload(experiment_id)
        path = golden_path(experiment_id)
        with path.open("w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path} ({len(payload['rows'])} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
