"""Unit tests for the convergence/stop protocol."""

import numpy as np
import pytest

from repro.core.convergence import (
    ConvergenceProtocol,
    deviation_scalar,
    deviation_vector,
)
from repro.network.graph import Graph


def all_true(n):
    return np.ones(n, dtype=bool)


class TestProtocolBasics:
    def test_initial_state(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01)
        assert not protocol.all_stopped
        assert protocol.num_unconverged == 3
        assert not protocol.converged.any()

    def test_threshold_scales_with_components(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, num_components=50)
        assert protocol.threshold == pytest.approx(0.5)

    def test_rejects_bad_xi(self, triangle):
        with pytest.raises(ValueError):
            ConvergenceProtocol(triangle, xi=0.0)

    def test_rejects_bad_patience(self, triangle):
        with pytest.raises(ValueError):
            ConvergenceProtocol(triangle, xi=0.1, patience=0)

    def test_isolated_nodes_start_stopped(self):
        g = Graph(3, [(0, 1)])
        protocol = ConvergenceProtocol(g, xi=0.01)
        assert protocol.stopped[2]
        assert protocol.converged[2]


class TestObserve:
    def test_converges_on_small_deviation(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=1)
        newly = protocol.observe(np.zeros(3), all_true(3))
        assert sorted(newly) == [0, 1, 2]
        assert protocol.all_stopped

    def test_large_deviation_blocks(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=1)
        newly = protocol.observe(np.full(3, 0.5), all_true(3))
        assert newly.size == 0
        assert not protocol.converged.any()

    def test_no_external_input_blocks(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=1)
        newly = protocol.observe(np.zeros(3), np.zeros(3, dtype=bool))
        assert newly.size == 0

    def test_undefined_ratio_blocks(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=1)
        newly = protocol.observe(np.zeros(3), all_true(3), np.zeros(3, dtype=bool))
        assert newly.size == 0

    def test_stop_requires_neighbors(self, path4):
        protocol = ConvergenceProtocol(path4, xi=0.01, patience=1)
        deviations = np.array([0.0, 0.0, 1.0, 1.0])
        protocol.observe(deviations, all_true(4))
        # Nodes 0, 1 converged, but node 1's neighbour 2 has not.
        assert protocol.converged[0] and protocol.converged[1]
        assert protocol.stopped[0]  # its only neighbour (1) converged
        assert not protocol.stopped[1]

    def test_full_stop_after_everyone_converges(self, path4):
        protocol = ConvergenceProtocol(path4, xi=0.01, patience=1)
        protocol.observe(np.array([0.0, 0.0, 1.0, 1.0]), all_true(4))
        protocol.observe(np.zeros(4), all_true(4))
        assert protocol.all_stopped

    def test_shape_validation(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01)
        with pytest.raises(ValueError):
            protocol.observe(np.zeros(5), all_true(3))
        with pytest.raises(ValueError):
            protocol.observe(np.zeros(3), all_true(3), np.zeros(5, dtype=bool))


class TestPatience:
    def test_patience_requires_streak(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=3)
        assert protocol.observe(np.zeros(3), all_true(3)).size == 0
        assert protocol.observe(np.zeros(3), all_true(3)).size == 0
        assert protocol.observe(np.zeros(3), all_true(3)).size == 3

    def test_failed_check_resets_streak(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=2)
        protocol.observe(np.zeros(3), all_true(3))
        protocol.observe(np.full(3, 1.0), all_true(3))  # reset
        protocol.observe(np.zeros(3), all_true(3))
        newly = protocol.observe(np.zeros(3), all_true(3))
        assert newly.size == 3

    def test_silent_step_preserves_streak(self, triangle):
        # No external input: check skipped, streak neither grows nor resets.
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=2)
        protocol.observe(np.zeros(3), all_true(3))
        protocol.observe(np.full(3, 9.9), np.zeros(3, dtype=bool))  # silent
        newly = protocol.observe(np.zeros(3), all_true(3))
        assert newly.size == 3


class TestRebind:
    """Reusing one protocol across topology swaps must reset counters.

    Regression for the stale-counter early stop: ``_refresh_stopped``
    used to read ``graph.degrees`` fresh on every refresh, so a caller
    swapping the bound graph (a dynamic-epoch runtime reusing one
    protocol across overlay snapshots) had converged-neighbour counters
    earned on the *old* topology compared against the *new* degree
    vector — a node whose 4 old neighbours had announced would be
    marked stopped on a new graph where its degree is 2, without any
    node of the new graph ever converging.
    """

    def test_rebind_resets_convergence_state(self, star5):
        protocol = ConvergenceProtocol(star5, xi=0.01, patience=1)
        protocol.observe(np.zeros(5), all_true(5))
        assert protocol.all_stopped  # everyone converged on the star
        # Epoch boundary: the overlay shrank to a triangle.
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        protocol.rebind(triangle)
        # Stale counters (hub had 4 converged neighbours) must not leak:
        # nothing on the new graph has converged or stopped.
        assert not protocol.converged.any()
        assert not protocol.stopped.any()
        assert protocol.num_unconverged == 3
        assert not protocol.all_stopped

    def test_rebind_restarts_warmup(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01, patience=1, warmup_steps=1)
        protocol.observe(np.zeros(3), all_true(3))  # swallowed by warmup
        protocol.observe(np.zeros(3), all_true(3))
        assert protocol.all_stopped
        protocol.rebind(triangle)
        # The first post-rebind step is warmup again.
        assert protocol.observe(np.zeros(3), all_true(3)).size == 0
        assert protocol.observe(np.zeros(3), all_true(3)).size == 3

    def test_degrees_copied_at_bind_time(self, path4):
        protocol = ConvergenceProtocol(path4, xi=0.01)
        assert protocol._degrees is not path4.degrees
        np.testing.assert_array_equal(protocol._degrees, path4.degrees)

    def test_rebind_tracks_new_isolated_nodes(self, triangle):
        protocol = ConvergenceProtocol(triangle, xi=0.01)
        sparse_graph = Graph(3, [(0, 1)])
        protocol.rebind(sparse_graph)
        assert protocol.stopped[2] and protocol.converged[2]
        assert not protocol.stopped[0] and not protocol.stopped[1]


class TestDeviationHelpers:
    def test_scalar(self):
        out = deviation_scalar(np.array([1.0, 2.0]), np.array([1.5, 2.0]))
        assert np.allclose(out, [0.5, 0.0])

    def test_vector_sums_components(self):
        new = np.array([[1.0, 2.0], [0.0, 0.0]])
        old = np.array([[0.5, 1.0], [0.0, 0.0]])
        out = deviation_vector(new, old)
        assert np.allclose(out, [1.5, 0.0])

    def test_vector_rejects_1d(self):
        with pytest.raises(ValueError):
            deviation_vector(np.zeros(3), np.zeros(3))
