"""Unit tests for the per-node reputation table."""

import pytest

from repro.trust.estimation import BetaTrustEstimator, TransactionOutcome
from repro.trust.reputation_table import ReputationTable


class TestRecording:
    def test_unknown_peer_trust_zero(self):
        table = ReputationTable(owner=0)
        assert table.trust_of(5) == 0.0
        assert not table.knows(5)

    def test_record_and_read(self):
        table = ReputationTable(owner=0)
        table.record_transaction(3, TransactionOutcome(1.0))
        assert table.trust_of(3) == 1.0
        assert table.knows(3)
        assert len(table) == 1

    def test_rejects_self_rating(self):
        table = ReputationTable(owner=4)
        with pytest.raises(ValueError, match="cannot rate itself"):
            table.record_transaction(4, TransactionOutcome(1.0))

    def test_rejects_negative_peer(self):
        table = ReputationTable(owner=0)
        with pytest.raises(ValueError):
            table.record_transaction(-1, TransactionOutcome(1.0))

    def test_rejects_bad_owner(self):
        with pytest.raises(ValueError):
            ReputationTable(owner=-1)

    def test_custom_estimator_factory(self):
        table = ReputationTable(owner=0, estimator_factory=lambda: BetaTrustEstimator(alpha=1, beta=1))
        assert table.trust_of(1) == 0.0  # still unknown
        table.record_transaction(1, TransactionOutcome(1.0))
        assert table.trust_of(1) == pytest.approx(2 / 3)

    def test_items_and_peers(self):
        table = ReputationTable(owner=0)
        table.record_transaction(1, TransactionOutcome(1.0))
        table.record_transaction(2, TransactionOutcome(0.0))
        assert table.peers() == frozenset({1, 2})
        assert dict(table.items()) == {1: 1.0, 2: 0.0}


class TestPublishProtocol:
    def test_never_published_counts_as_changed(self):
        table = ReputationTable(owner=0)
        table.record_transaction(1, TransactionOutcome(0.5))
        assert table.opinion_changed_since_publish(1, delta=0.1)

    def test_unknown_peer_not_changed(self):
        table = ReputationTable(owner=0)
        assert not table.opinion_changed_since_publish(9, delta=0.1)

    def test_small_move_below_delta(self):
        table = ReputationTable(owner=0)
        table.record_transaction(1, TransactionOutcome(0.5))
        table.mark_published(1)
        table.record_transaction(1, TransactionOutcome(0.5))
        assert not table.opinion_changed_since_publish(1, delta=0.1)

    def test_large_move_above_delta(self):
        table = ReputationTable(owner=0)
        table.record_transaction(1, TransactionOutcome(1.0))
        table.mark_published(1)
        for _ in range(5):
            table.record_transaction(1, TransactionOutcome(0.0))
        assert table.opinion_changed_since_publish(1, delta=0.1)

    def test_rejects_negative_delta(self):
        table = ReputationTable(owner=0)
        with pytest.raises(ValueError):
            table.opinion_changed_since_publish(1, delta=-0.5)


class TestForgetAndPrune:
    def test_forget_known(self):
        table = ReputationTable(owner=0)
        table.record_transaction(1, TransactionOutcome(1.0))
        assert table.forget(1)
        assert not table.knows(1)
        assert table.trust_of(1) == 0.0

    def test_forget_unknown_returns_false(self):
        table = ReputationTable(owner=0)
        assert not table.forget(1)

    def test_prune_stale_drops_old(self):
        table = ReputationTable(owner=0, stale_after=10.0)
        table.record_transaction(1, TransactionOutcome(1.0), now=0.0)
        table.record_transaction(2, TransactionOutcome(1.0), now=95.0)
        dropped = table.prune_stale(now=100.0)
        assert dropped == frozenset({1})
        assert not table.knows(1)
        assert table.knows(2)

    def test_prune_disabled_by_default(self):
        table = ReputationTable(owner=0)
        table.record_transaction(1, TransactionOutcome(1.0), now=0.0)
        assert table.prune_stale(now=1e9) == frozenset()
        assert table.knows(1)

    def test_heard_from_refreshes_liveness(self):
        table = ReputationTable(owner=0, stale_after=10.0)
        table.record_transaction(1, TransactionOutcome(1.0), now=0.0)
        table.heard_from(1, now=95.0)
        assert table.prune_stale(now=100.0) == frozenset()

    def test_heard_from_unknown_is_noop(self):
        table = ReputationTable(owner=0, stale_after=10.0)
        table.heard_from(42, now=5.0)
        assert not table.knows(42)

    def test_rejects_nonpositive_stale_after(self):
        with pytest.raises(ValueError):
            ReputationTable(owner=0, stale_after=0.0)
