"""The Figure-2 example network must match the paper's published rows."""

import numpy as np
import pytest

from repro.core.differential import push_counts
from repro.network.topology_example import (
    EXAMPLE_DEGREES,
    EXAMPLE_INITIAL_VALUES,
    EXAMPLE_K_VALUES,
    example_network,
)


class TestExampleNetwork:
    def test_degree_row_matches_table1(self):
        g = example_network()
        assert tuple(map(int, g.degrees)) == EXAMPLE_DEGREES

    def test_k_row_matches_table1(self):
        g = example_network()
        assert tuple(map(int, push_counts(g))) == EXAMPLE_K_VALUES

    def test_ten_nodes_sixteen_edges(self):
        g = example_network()
        assert g.num_nodes == 10
        assert g.num_edges == sum(EXAMPLE_DEGREES) // 2 == 16

    def test_connected(self):
        assert example_network().is_connected()

    def test_hub_is_node_3(self):
        g = example_network()
        assert int(np.argmax(g.degrees)) == 2  # paper's node 3, 0-indexed
        assert g.degree(2) == 7

    def test_initial_values_are_valid_trust(self):
        assert len(EXAMPLE_INITIAL_VALUES) == 10
        assert all(0.0 <= v <= 1.0 for v in EXAMPLE_INITIAL_VALUES)

    def test_initial_values_mean(self):
        # The convergence target of the Table 1 experiment.
        assert float(np.mean(EXAMPLE_INITIAL_VALUES)) == pytest.approx(0.44977)

    def test_deterministic_construction(self):
        assert example_network() == example_network()
