"""Unit tests for all comparison baselines."""

import numpy as np
import pytest

from repro.baselines.eigentrust import eigentrust
from repro.baselines.flooding import flood_spread
from repro.baselines.gossip_trust import gossip_trust_global, unweighted_global_estimate
from repro.baselines.push_pull import push_pull_average
from repro.baselines.push_sum import normal_push_engine, push_sum_average
from repro.trust.matrix import TrustMatrix


class TestPushSum:
    def test_converges_to_mean(self, pa_graph_small):
        values = np.arange(60.0)
        out = push_sum_average(pa_graph_small, values, xi=1e-7, rng=1)
        assert np.allclose(out.estimates, values.mean(), atol=1e-2)

    def test_engine_pushes_once_per_step(self, pa_graph_small):
        engine = normal_push_engine(pa_graph_small, rng=2)
        assert np.all(engine.push_counts == 1)

    def test_no_degree_announcement_overhead(self, pa_graph_small):
        # Pinned to the dense engine: the message engine also counts its
        # per-node stop announcements, which is not what this measures.
        out = push_sum_average(pa_graph_small, np.ones(60), xi=1e-3, rng=3, backend="dense")
        # Normal push needs no degree exchange; protocol messages are
        # only the convergence announcements.
        assert out.protocol_messages <= int(pa_graph_small.degrees.sum())

    def test_mass_conserved(self, pa_graph_small):
        values = np.random.default_rng(0).random(60)
        out = push_sum_average(pa_graph_small, values, xi=1e-5, rng=4)
        assert float(out.values.sum()) == pytest.approx(float(values.sum()), rel=1e-9)

    def test_shape_validation(self, pa_graph_small):
        with pytest.raises(ValueError):
            push_sum_average(pa_graph_small, np.ones(10))

    def test_default_backend_is_auto(self):
        import inspect

        assert inspect.signature(push_sum_average).parameters["backend"].default == "auto"

    def test_large_graph_routes_to_sparse_by_default(self, monkeypatch):
        # Regression: the baseline used to hardcode backend="dense", so
        # Figure-3 baselines on 100k+-node graphs silently ran the dense
        # engine's per-hub Python loop. The auto policy must kick in.
        import repro.core.backend as backend_mod
        from repro.network.graph import Graph

        n = backend_mod.AUTO_DENSE_MAX_NODES + 1
        i = np.arange(n, dtype=np.int64)
        a, b = (i - 1) % n, (i + 1) % n
        cols = np.empty(2 * n, dtype=np.int64)
        cols[0::2] = np.minimum(a, b)
        cols[1::2] = np.maximum(a, b)
        ring = Graph.from_csr(n, 2 * np.arange(n + 1, dtype=np.int64), cols, validate=False)

        chosen = []
        real_get_backend = backend_mod.get_backend
        monkeypatch.setattr(
            backend_mod,
            "get_backend",
            lambda name: chosen.append(backend_mod.resolve_backend_name(name))
            or real_get_backend(name),
        )
        # Constant values converge right after warmup, so the huge ring
        # stays cheap; the assertion is about routing, not the estimate.
        out = push_sum_average(ring, np.full(n, 0.5), xi=1.0, rng=1)
        assert chosen == ["sparse"]
        assert np.allclose(out.estimates, 0.5)

    def test_explicit_backend_still_honoured(self, pa_graph_small, monkeypatch):
        import repro.core.backend as backend_mod

        chosen = []
        real_get_backend = backend_mod.get_backend
        monkeypatch.setattr(
            backend_mod,
            "get_backend",
            lambda name: chosen.append(backend_mod.resolve_backend_name(name))
            or real_get_backend(name),
        )
        push_sum_average(pa_graph_small, np.ones(60), xi=1e-2, rng=2, backend="dense")
        assert chosen == ["dense"]


class TestPushPull:
    def test_converges_to_mean(self, pa_graph_small):
        values = np.arange(60.0)
        out = push_pull_average(pa_graph_small, values, xi=1e-7, rng=1)
        assert np.allclose(out.estimates, values.mean(), atol=1e-2)

    def test_mass_conserved(self, pa_graph_small):
        values = np.random.default_rng(1).random(60)
        out = push_pull_average(pa_graph_small, values, xi=1e-6, rng=2)
        assert float(out.values.sum()) == pytest.approx(float(values.sum()), rel=1e-9)

    def test_two_messages_per_contact(self, fig2_network):
        out = push_pull_average(fig2_network, np.arange(10.0), xi=1e-4, rng=3)
        assert out.push_messages % 2 == 0

    def test_usually_faster_than_push_on_hubby_graph(self, pa_graph_medium):
        values = np.random.default_rng(2).random(300)
        pp = push_pull_average(pa_graph_medium, values, xi=1e-5, rng=4)
        ps = push_sum_average(pa_graph_medium, values, xi=1e-5, rng=4)
        assert pp.steps < ps.steps

    def test_shape_validation(self, pa_graph_small):
        with pytest.raises(ValueError):
            push_pull_average(pa_graph_small, np.ones(3))


class TestGossipTrust:
    def test_unweighted_estimate_matches_columns(self):
        t = TrustMatrix(4)
        t.set(0, 1, 0.5)
        t.set(2, 1, 0.7)
        estimates = unweighted_global_estimate(t)
        assert estimates[1] == pytest.approx(1.2 / 4)
        assert estimates[0] == 0.0

    def test_unweighted_over_observers(self):
        t = TrustMatrix(4)
        t.set(0, 1, 0.5)
        t.set(2, 1, 0.7)
        estimates = unweighted_global_estimate(t, over_all_nodes=False)
        assert estimates[1] == pytest.approx(0.6)

    def test_fixpoint_ranks_well_served_nodes(self):
        t = TrustMatrix(3)
        t.set(0, 1, 1.0)
        t.set(2, 1, 1.0)
        t.set(1, 0, 0.5)
        r = gossip_trust_global(t)
        assert r[1] > r[0] > r[2]
        assert float(r.sum()) == pytest.approx(1.0)

    def test_empty_matrix_uniform(self):
        r = gossip_trust_global(TrustMatrix(5))
        assert np.allclose(r, 0.2)

    def test_custom_initial(self):
        t = TrustMatrix(3)
        t.set(0, 1, 1.0)
        r = gossip_trust_global(t, initial=np.array([1.0, 1.0, 1.0]))
        assert float(r.sum()) == pytest.approx(1.0)

    def test_rejects_bad_initial(self):
        t = TrustMatrix(3)
        with pytest.raises(ValueError):
            gossip_trust_global(t, initial=np.zeros(3))
        with pytest.raises(ValueError):
            gossip_trust_global(t, initial=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ValueError):
            gossip_trust_global(t, initial=np.ones(2))

    def test_rejects_bad_controls(self):
        with pytest.raises(ValueError):
            gossip_trust_global(TrustMatrix(3), max_cycles=0)
        with pytest.raises(ValueError):
            gossip_trust_global(TrustMatrix(3), tolerance=0.0)


class TestEigenTrust:
    def test_identifies_trusted_node(self):
        t = TrustMatrix(3)
        t.set(0, 1, 1.0)
        t.set(2, 1, 1.0)
        t.set(1, 2, 0.2)
        scores = eigentrust(t, pretrusted=[0])
        assert int(np.argmax(scores)) == 1

    def test_distribution_sums_to_one(self, small_trust):
        scores = eigentrust(small_trust, pretrusted=[0, 1])
        assert float(scores.sum()) == pytest.approx(1.0)
        assert scores.min() >= 0.0

    def test_alpha_one_returns_pretrusted(self):
        t = TrustMatrix(4)
        t.set(0, 1, 1.0)
        scores = eigentrust(t, pretrusted=[2], alpha=1.0)
        assert scores[2] == pytest.approx(1.0)

    def test_rejects_bad_pretrusted(self, small_trust):
        with pytest.raises(ValueError):
            eigentrust(small_trust, pretrusted=[])
        with pytest.raises(ValueError):
            eigentrust(small_trust, pretrusted=[999])

    def test_rejects_bad_alpha(self, small_trust):
        with pytest.raises(ValueError):
            eigentrust(small_trust, alpha=1.5)


class TestFlooding:
    def test_reaches_everyone_when_connected(self, pa_graph_small):
        result = flood_spread(pa_graph_small, [0])
        assert result.reached == 60

    def test_steps_bounded_by_diameter_plus_one(self, path4):
        result = flood_spread(path4, [0])
        assert result.steps == 4  # 3 forwarding waves + final no-op wave

    def test_message_cost_scales_with_edges(self, fig2_network):
        result = flood_spread(fig2_network, [0])
        # Every informed node forwards to all neighbours exactly once.
        assert result.total_messages == int(fig2_network.degrees.sum())

    def test_multiple_sources(self, pa_graph_small):
        single = flood_spread(pa_graph_small, [0])
        multi = flood_spread(pa_graph_small, [0, 30, 59])
        assert multi.steps <= single.steps

    def test_disconnected_partial_reach(self):
        from repro.network.graph import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        result = flood_spread(g, [0])
        assert result.reached == 2

    def test_rejects_empty_sources(self, pa_graph_small):
        with pytest.raises(ValueError):
            flood_spread(pa_graph_small, [])

    def test_rejects_bad_source(self, pa_graph_small):
        with pytest.raises(ValueError):
            flood_spread(pa_graph_small, [99])

    def test_messages_per_node(self, fig2_network):
        result = flood_spread(fig2_network, [0])
        assert result.messages_per_node == pytest.approx(32 / 10)
