"""Unit tests for the error metrics (eq. 18 and friends)."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    average_rms_error,
    max_relative_error,
    mean_relative_error,
)


class TestAverageRmsError:
    def test_identical_matrices_zero(self):
        r = np.full((3, 3), 0.5)
        assert average_rms_error(r, r) == 0.0

    def test_uniform_relative_offset(self):
        observed = np.full((4, 5), 0.5)
        reference = observed * 0.9
        # (r - rhat)/r = 0.1 everywhere -> RMS = 0.1 in every row.
        assert average_rms_error(observed, reference) == pytest.approx(0.1)

    def test_rowwise_average(self):
        observed = np.array([[1.0, 1.0], [1.0, 1.0]])
        reference = np.array([[0.5, 0.5], [1.0, 1.0]])
        # Row 0 RMS = 0.5, row 1 RMS = 0 -> average 0.25.
        assert average_rms_error(observed, reference) == pytest.approx(0.25)

    def test_zero_cells_excluded(self):
        observed = np.array([[0.0, 1.0]])
        reference = np.array([[9.9, 0.8]])
        # Only the second cell is valid: rel err 0.2.
        assert average_rms_error(observed, reference) == pytest.approx(0.2)

    def test_all_zero_row_contributes_zero(self):
        observed = np.array([[0.0, 0.0], [1.0, 1.0]])
        reference = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert average_rms_error(observed, reference) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_rms_error(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            average_rms_error(np.zeros(3), np.zeros(3))

    def test_matches_eq18_bruteforce(self, rng):
        observed = rng.random((6, 8)) + 0.1
        reference = rng.random((6, 8))
        expected_rows = []
        for i in range(6):
            cells = [
                ((observed[i, j] - reference[i, j]) / observed[i, j]) ** 2
                for j in range(8)
            ]
            expected_rows.append(np.sqrt(np.mean(cells)))
        assert average_rms_error(observed, reference) == pytest.approx(
            float(np.mean(expected_rows))
        )


class TestRelativeErrors:
    def test_max_relative(self):
        estimates = np.array([1.1, 2.0])
        truth = np.array([1.0, 2.0])
        assert max_relative_error(estimates, truth) == pytest.approx(0.1)

    def test_zero_truth_compares_absolutely(self):
        assert max_relative_error(np.array([0.3]), np.array([0.0])) == pytest.approx(0.3)

    def test_mean_relative(self):
        estimates = np.array([1.1, 2.0])
        truth = np.array([1.0, 2.0])
        assert mean_relative_error(estimates, truth) == pytest.approx(0.05)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_relative_error(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            mean_relative_error(np.zeros(2), np.zeros(3))

    def test_works_on_matrices(self, rng):
        estimates = rng.random((4, 4))
        assert max_relative_error(estimates, estimates) == 0.0
