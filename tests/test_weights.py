"""Unit tests for the GCLR weighting scheme (eq. 2)."""

import numpy as np
import pytest

from repro.core.weights import (
    WeightParams,
    collusion_damping_factor,
    excess_weights,
    weight_vector,
)


class TestWeightParams:
    def test_stranger_weight_is_one(self):
        assert WeightParams(a=4.0, b=1.0).weight(0.0) == 1.0

    def test_full_trust_weight_is_base(self):
        assert WeightParams(a=4.0, b=1.0).weight(1.0) == 4.0

    def test_monotone_in_trust(self):
        params = WeightParams(a=3.0, b=2.0)
        weights = [params.weight(t) for t in np.linspace(0, 1, 11)]
        assert all(w2 >= w1 for w1, w2 in zip(weights, weights[1:]))

    def test_always_at_least_one(self):
        params = WeightParams(a=2.5, b=0.7)
        for t in np.linspace(0, 1, 21):
            assert params.weight(float(t)) >= 1.0

    def test_a_equal_one_disables_weighting(self):
        params = WeightParams(a=1.0, b=5.0)
        assert params.weight(0.9) == 1.0

    def test_b_zero_disables_weighting(self):
        params = WeightParams(a=9.0, b=0.0)
        assert params.weight(0.9) == 1.0

    def test_max_weight(self):
        assert WeightParams(a=4.0, b=0.5).max_weight == pytest.approx(2.0)

    def test_rejects_a_below_one(self):
        with pytest.raises(ValueError):
            WeightParams(a=0.5)

    def test_rejects_negative_b(self):
        with pytest.raises(ValueError):
            WeightParams(b=-1.0)

    def test_rejects_trust_out_of_range(self):
        with pytest.raises(ValueError):
            WeightParams().weight(1.5)


class TestWeightVector:
    def test_strangers_get_one(self):
        weights = weight_vector(WeightParams(), {2: 0.5}, num_nodes=5)
        assert weights.shape == (5,)
        assert weights[0] == 1.0
        assert weights[2] > 1.0

    def test_matches_formula(self):
        params = WeightParams(a=4.0, b=1.0)
        weights = weight_vector(params, {1: 0.5}, num_nodes=3)
        assert weights[1] == pytest.approx(4.0**0.5)

    def test_rejects_out_of_range_peer(self):
        with pytest.raises(ValueError):
            weight_vector(WeightParams(), {9: 0.5}, num_nodes=5)


class TestExcessWeights:
    def test_skips_zero_trust(self):
        # t=0 gives w=1, excess 0 -> omitted (eq. 6's sparsity).
        excess = excess_weights(WeightParams(), {1: 0.0, 2: 0.5})
        assert 1 not in excess
        assert 2 in excess

    def test_values_positive(self):
        excess = excess_weights(WeightParams(), {1: 0.3, 2: 0.9})
        assert all(v > 0 for v in excess.values())

    def test_empty_row(self):
        assert excess_weights(WeightParams(), {}) == {}


class TestDampingFactor:
    def test_no_excess_no_damping(self):
        assert collusion_damping_factor(100, 0.0) == 1.0

    def test_damping_below_one(self):
        assert collusion_damping_factor(100, 50.0) == pytest.approx(100 / 150)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            collusion_damping_factor(0, 1.0)
        with pytest.raises(ValueError):
            collusion_damping_factor(10, -1.0)
