"""Unit tests for the convergence-theory bounds (Section 5.1, appendix)."""

import math

import pytest

from repro.analysis.theory import (
    convergence_steps_bound,
    potential_bound_sequence,
    potential_closed_form,
    potential_recurrence_bound,
    psi_initial,
    spread_steps_bound,
    steps_to_reach_xi,
)


class TestSpreadBound:
    def test_polylog_shape(self):
        assert spread_steps_bound(1024) == pytest.approx(100.0)

    def test_single_node_zero(self):
        assert spread_steps_bound(1) == 0.0

    def test_monotone_in_n(self):
        values = [spread_steps_bound(n) for n in (10, 100, 1000, 10000)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            spread_steps_bound(0)


class TestConvergenceBound:
    def test_additive_xi_term(self):
        base = convergence_steps_bound(1024, 1.0)
        tighter = convergence_steps_bound(1024, 2.0**-10)
        assert tighter == pytest.approx(base + 10.0)

    def test_rejects_bad_xi(self):
        with pytest.raises(ValueError):
            convergence_steps_bound(100, 0.0)


class TestPotential:
    def test_initial_value(self):
        assert psi_initial(128) == 127.0
        with pytest.raises(ValueError):
            psi_initial(0)

    def test_recurrence_single_step(self):
        # eq. 27 at p=1: psi/2 + 1/16.
        assert potential_recurrence_bound(10.0, p=1) == pytest.approx(5.0 + 1.0 / 16.0)

    def test_recurrence_faster_for_larger_p(self):
        assert potential_recurrence_bound(10.0, p=3) < potential_recurrence_bound(10.0, p=1)

    def test_recurrence_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            potential_recurrence_bound(-1.0)
        with pytest.raises(ValueError):
            potential_recurrence_bound(1.0, p=0)

    def test_closed_form_matches_telescoped_recurrence_floor(self):
        # For large n the closed form approaches the 1/(4p(p+1)) floor.
        floor = 1.0 / (4.0 * 1 * 2)
        assert potential_closed_form(1000, 60, p=1) == pytest.approx(floor, abs=1e-9)

    def test_closed_form_at_zero_steps(self):
        assert potential_closed_form(100, 0, p=1) == pytest.approx(99.0 + 1.0 / 8.0)

    def test_bound_sequence_decreasing_then_floored(self):
        bounds = potential_bound_sequence(256, 40, p=1)
        assert bounds[0] == 255.0
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))
        assert bounds[-1] > 0.0  # never decays to exactly zero: the floor

    def test_bound_sequence_dominated_by_closed_form(self):
        bounds = potential_bound_sequence(256, 30, p=1)
        for n, value in enumerate(bounds):
            assert value <= potential_closed_form(256, n, p=1) + 1e-9

    def test_bound_sequence_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            potential_bound_sequence(10, -1)


class TestStepsToReachXi:
    def test_matches_log_formula(self):
        # n = log2(N-1) + log2(kd) + log2(1/xi), p=1.
        n = steps_to_reach_xi(1025, xi=2.0**-6, kd=8.0)
        expected = math.ceil(math.log2(1024) + 3 + 6)
        assert n == expected

    def test_trivial_network(self):
        assert steps_to_reach_xi(1, xi=0.5) == 0

    def test_rejects_bad_kd(self):
        with pytest.raises(ValueError):
            steps_to_reach_xi(100, xi=0.1, kd=1.0)
