"""Unit tests for peer behaviour profiles."""

import pytest

from repro.simulation.peer import (
    PeerProfile,
    colluder_profile,
    cooperative_profile,
    free_rider_profile,
    whitewasher_profile,
)


class TestProfiles:
    def test_cooperative_defaults(self):
        profile = cooperative_profile()
        assert profile.name == "cooperative"
        assert profile.sharing_fraction == 1.0
        assert not profile.is_free_riding

    def test_free_rider_flagged(self):
        assert free_rider_profile().is_free_riding

    def test_whitewasher_is_free_rider_with_resets(self):
        profile = whitewasher_profile(whitewash_interval=25.0)
        assert profile.is_free_riding
        assert profile.whitewash_interval == 25.0

    def test_colluder_group_assignment(self):
        profile = colluder_profile(group=3)
        assert profile.collusion_group == 3
        assert not profile.is_free_riding

    def test_colluder_rejects_negative_group(self):
        with pytest.raises(ValueError):
            colluder_profile(group=-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeerProfile("x", serve_probability=1.5, service_quality=0.5, sharing_fraction=0.5)
        with pytest.raises(ValueError):
            PeerProfile("x", serve_probability=0.5, service_quality=-0.1, sharing_fraction=0.5)
        with pytest.raises(ValueError):
            PeerProfile("x", serve_probability=0.5, service_quality=0.5, sharing_fraction=2.0)
        with pytest.raises(ValueError):
            PeerProfile(
                "x",
                serve_probability=0.5,
                service_quality=0.5,
                sharing_fraction=0.5,
                whitewash_interval=0.0,
            )

    def test_frozen(self):
        profile = cooperative_profile()
        with pytest.raises(AttributeError):
            profile.serve_probability = 0.0
