"""Unit tests for Algorithm 1 (single-node global aggregation)."""

import numpy as np
import pytest

from repro.core.single_global import (
    aggregate_single_global,
    initial_state_single_global,
    true_single_global,
)
from repro.trust.matrix import TrustMatrix


class TestInitialState:
    def test_observers_convention(self, small_trust):
        values, weights = initial_state_single_global(small_trust, 5, "observers")
        observers = small_trust.observers_of(5)
        assert float(weights.sum()) == len(observers)
        for observer in observers:
            assert values[observer] == small_trust.get(observer, 5)
            assert weights[observer] == 1.0

    def test_all_convention(self, small_trust):
        _, weights = initial_state_single_global(small_trust, 5, "all")
        assert np.all(weights == 1.0)

    def test_bad_convention(self, small_trust):
        with pytest.raises(ValueError):
            initial_state_single_global(small_trust, 5, "bogus")


class TestTrueValue:
    def test_observers_mean(self):
        t = TrustMatrix(4)
        t.set(0, 3, 0.2)
        t.set(1, 3, 0.8)
        assert true_single_global(t, 3, "observers") == pytest.approx(0.5)
        assert true_single_global(t, 3, "all") == pytest.approx(0.25)

    def test_bad_convention(self, small_trust):
        with pytest.raises(ValueError):
            true_single_global(small_trust, 0, "bogus")


class TestAggregation:
    def test_vector_engine_accuracy(self, pa_graph_small, small_trust):
        result = aggregate_single_global(
            pa_graph_small, small_trust, target=5, xi=1e-6, rng=1
        )
        assert result.max_relative_error < 0.02
        assert result.estimates.shape == (60,)

    def test_message_engine_accuracy(self, pa_graph_small, small_trust):
        result = aggregate_single_global(
            pa_graph_small, small_trust, target=5, xi=1e-6, rng=2, engine="message"
        )
        assert result.max_relative_error < 0.02

    def test_all_convention_accuracy(self, pa_graph_small, small_trust):
        # The 'all' convention mixes slowly (uniform weight, sparse value
        # mass), so the local stop rule needs a tighter xi for the same
        # final accuracy — see EXPERIMENTS.md on the xi-to-error mapping.
        result = aggregate_single_global(
            pa_graph_small, small_trust, target=5, xi=1e-9, rng=3, convention="all"
        )
        assert result.true_value == true_single_global(small_trust, 5, "all")
        assert result.max_relative_error < 0.02

    def test_engines_agree_on_limit(self, pa_graph_small, small_trust):
        a = aggregate_single_global(pa_graph_small, small_trust, target=7, xi=1e-7, rng=4)
        b = aggregate_single_global(
            pa_graph_small, small_trust, target=7, xi=1e-7, rng=5, engine="message"
        )
        assert a.true_value == b.true_value
        assert np.allclose(a.estimates.mean(), b.estimates.mean(), atol=0.01)

    def test_unobserved_target(self, pa_graph_small):
        empty = TrustMatrix(60)
        result = aggregate_single_global(pa_graph_small, empty, target=3, xi=1e-4, rng=6)
        assert result.true_value == 0.0

    def test_invalid_engine(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="engine"):
            aggregate_single_global(pa_graph_small, small_trust, 0, engine="gpu")

    def test_invalid_target(self, pa_graph_small, small_trust):
        with pytest.raises(ValueError, match="target"):
            aggregate_single_global(pa_graph_small, small_trust, target=99)

    def test_size_mismatch(self, pa_graph_small):
        with pytest.raises(ValueError, match="nodes"):
            aggregate_single_global(pa_graph_small, TrustMatrix(10), target=0)

    def test_max_relative_error_with_zero_truth(self, pa_graph_small):
        empty = TrustMatrix(60)
        result = aggregate_single_global(pa_graph_small, empty, target=3, xi=1e-4, rng=7)
        # Estimates are the sentinel (no weight mass anywhere): error is reported absolutely.
        assert result.max_relative_error >= 0.0
