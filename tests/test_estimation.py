"""Unit tests for the trust estimators."""

import pytest

from repro.trust.estimation import (
    BetaTrustEstimator,
    BlueTrustEstimator,
    SuccessRatioEstimator,
    TransactionOutcome,
)


class TestTransactionOutcome:
    def test_valid(self):
        outcome = TransactionOutcome(0.5, variance=0.1)
        assert outcome.satisfaction == 0.5

    def test_rejects_bad_satisfaction(self):
        with pytest.raises(ValueError):
            TransactionOutcome(1.5)
        with pytest.raises(ValueError):
            TransactionOutcome(-0.1)

    def test_rejects_bad_variance(self):
        with pytest.raises(ValueError):
            TransactionOutcome(0.5, variance=0.0)


class TestSuccessRatio:
    def test_no_data_returns_zero(self):
        # Paper: unknown peers start at trust 0 (whitewash defence).
        assert SuccessRatioEstimator().estimate == 0.0

    def test_mean_of_observations(self):
        est = SuccessRatioEstimator()
        for s in (1.0, 0.0, 0.5, 0.5):
            est.record(TransactionOutcome(s))
        assert est.estimate == pytest.approx(0.5)

    def test_prior_pulls_to_half(self):
        est = SuccessRatioEstimator(prior_strength=5.0)
        est.record(TransactionOutcome(1.0))
        assert 0.5 < est.estimate < 0.6

    def test_decay_forgets_old_behaviour(self):
        est = SuccessRatioEstimator(decay=0.5)
        for _ in range(20):
            est.record(TransactionOutcome(1.0))
        for _ in range(5):
            est.record(TransactionOutcome(0.0))
        assert est.estimate < 0.1

    def test_no_decay_keeps_history(self):
        est = SuccessRatioEstimator(decay=1.0)
        for _ in range(20):
            est.record(TransactionOutcome(1.0))
        for _ in range(5):
            est.record(TransactionOutcome(0.0))
        assert est.estimate == pytest.approx(0.8)

    def test_bounds_respected(self):
        est = SuccessRatioEstimator()
        for _ in range(10):
            est.record(TransactionOutcome(1.0))
        assert est.estimate <= 1.0

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            SuccessRatioEstimator(decay=0.0)
        with pytest.raises(ValueError):
            SuccessRatioEstimator(decay=1.5)

    def test_rejects_negative_prior(self):
        with pytest.raises(ValueError):
            SuccessRatioEstimator(prior_strength=-1)


class TestBeta:
    def test_default_prior_starts_at_zero(self):
        # alpha=0, beta=1: fresh identities are untrusted.
        assert BetaTrustEstimator().estimate == 0.0

    def test_uniform_prior_starts_at_half(self):
        assert BetaTrustEstimator(alpha=1.0, beta=1.0).estimate == 0.5

    def test_converges_to_rate(self):
        est = BetaTrustEstimator()
        for _ in range(100):
            est.record(TransactionOutcome(1.0))
        assert est.estimate == pytest.approx(1.0, abs=0.02)

    def test_graded_outcomes_split(self):
        est = BetaTrustEstimator(alpha=0.0, beta=1.0)
        est.record(TransactionOutcome(0.5))
        # successes=0.5, failures=0.5 -> (0+0.5)/(0+1+0.5+0.5)
        assert est.estimate == pytest.approx(0.25)

    def test_num_observations(self):
        est = BetaTrustEstimator()
        est.record(TransactionOutcome(0.3))
        est.record(TransactionOutcome(0.9))
        assert est.num_observations == pytest.approx(2.0)

    def test_rejects_degenerate_prior(self):
        with pytest.raises(ValueError):
            BetaTrustEstimator(alpha=0.0, beta=0.0)
        with pytest.raises(ValueError):
            BetaTrustEstimator(alpha=-1.0)

    def test_decay(self):
        est = BetaTrustEstimator(decay=0.5)
        for _ in range(10):
            est.record(TransactionOutcome(1.0))
        est.record(TransactionOutcome(0.0))
        assert est.estimate < 0.7


class TestBlue:
    def test_no_data_returns_zero(self):
        assert BlueTrustEstimator().estimate == 0.0

    def test_equal_variances_give_mean(self):
        est = BlueTrustEstimator()
        for s in (0.2, 0.8):
            est.record(TransactionOutcome(s))
        assert est.estimate == pytest.approx(0.5)

    def test_low_variance_dominates(self):
        est = BlueTrustEstimator()
        est.record(TransactionOutcome(1.0, variance=0.001))
        est.record(TransactionOutcome(0.0, variance=1.0))
        assert est.estimate > 0.95

    def test_matches_blue_formula(self):
        est = BlueTrustEstimator()
        observations = [(0.9, 0.01), (0.5, 0.05), (0.1, 0.2)]
        for s, v in observations:
            est.record(TransactionOutcome(s, variance=v))
        numerator = sum(s / v for s, v in observations)
        denominator = sum(1 / v for s, v in observations)
        assert est.estimate == pytest.approx(numerator / denominator)

    def test_rejects_bad_default_variance(self):
        with pytest.raises(ValueError):
            BlueTrustEstimator(default_variance=0.0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            BlueTrustEstimator(decay=2.0)

    def test_estimate_clamped_to_unit_interval(self):
        est = BlueTrustEstimator()
        est.record(TransactionOutcome(1.0, variance=0.01))
        assert 0.0 <= est.estimate <= 1.0
