"""Regression tests for the underflow-drain deadlock.

At N=50 000 the original implementation deadlocked: in the long tail
only a few nodes remain active, they halve their pair every step, the
floats underflow to exactly zero, the ratio snaps to the undefined
sentinel and the last unconverged node can never pass the convergence
test. In exact arithmetic splitting preserves the ratio, so the fix
carries the last defined ratio through drained cells. These tests pin
the carry-forward semantics at unit level (the full-scale repro lives in
the Figure-3 experiment at ``REPRO_FULL_SCALE=1``).
"""

import numpy as np
import pytest

from repro.core.engine import GossipNode
from repro.core.state import UNDEFINED_RATIO
from repro.core.vector_engine import VectorGossipEngine
from repro.network.graph import Graph


class TestGossipNodeCarryForward:
    def _node(self, value, weight):
        return GossipNode(
            0, np.array([1]), 1, np.array([value]), np.array([weight]), {}
        )

    def test_defined_ratio_survives_drain_to_zero(self):
        node = self._node(3.0, 2.0)
        assert node._ratio()[0] == pytest.approx(1.5)
        # Simulate a total drain (underflow to exact zero).
        node.value[:] = 0.0
        node.weight[:] = 0.0
        assert node._ratio()[0] == pytest.approx(1.5)  # carried forward

    def test_never_defined_stays_sentinel(self):
        node = self._node(0.0, 0.0)
        assert node._ratio()[0] == UNDEFINED_RATIO
        node._ratio()
        assert node._ratio()[0] == UNDEFINED_RATIO

    def test_ratio_recovers_after_refill(self):
        node = self._node(3.0, 2.0)
        node._ratio()
        node.value[:] = 0.0
        node.weight[:] = 0.0
        node._ratio()
        node.value[:] = 5.0
        node.weight[:] = 2.0
        assert node._ratio()[0] == pytest.approx(2.5)

    def test_drained_node_can_converge(self):
        node = self._node(3.0, 2.0)
        node._ratio()
        node.value[:] = 0.0
        node.weight[:] = 0.0
        live = np.array([True])
        # Deviation is 0 (carried ratio); ever-defined, so eligible.
        assert not node.check_convergence(1e-6, True, live, patience=2)
        assert node.check_convergence(1e-6, True, live, patience=2)
        assert node.converged


class TestVectorEngineCarryForward:
    def test_subnormal_initial_mass_converges(self):
        """Tiny initial masses drain to exact zero mid-run yet converge."""
        g = Graph(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]
        )
        values = np.full(6, 1e-300)
        weights = np.full(6, 1e-300)
        engine = VectorGossipEngine(g, rng=1)
        out = engine.run(values, weights, xi=1e-6, max_steps=5000)
        # All ratios are 1.0 throughout; the run must terminate.
        assert out.converged.all()
        assert np.allclose(out.estimates[out.weights.reshape(-1) != 0], 1.0)

    def test_large_network_long_tail_terminates(self):
        """A mid-size PA run at tight xi terminates (smoke for the tail)."""
        from repro.network.preferential_attachment import preferential_attachment_graph

        g = preferential_attachment_graph(3000, m=2, rng=50)
        values = np.random.default_rng(51).random(3000)
        engine = VectorGossipEngine(g, rng=52)
        out = engine.run(values, np.ones(3000), xi=1e-6, max_steps=3000)
        assert out.converged.all()
        assert np.allclose(out.estimates, values.mean(), atol=1e-3)
