"""Unit tests for repro.network.conditions (link models)."""

import numpy as np
import pytest

from repro.network.conditions import (
    INSTANT,
    EpochPartition,
    HomogeneousLink,
    InstantLink,
    LatencySpec,
    PacketLossModel,
    PartitionWindow,
    RegionalLinkModel,
    block_regions,
    no_loss,
)


class TestLatencySpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            LatencySpec("gamma", mean=1.0)
        with pytest.raises(ValueError, match="mean"):
            LatencySpec("constant", mean=-1.0)
        with pytest.raises(ValueError, match="spread"):
            LatencySpec("lognormal", mean=1.0, spread=-0.5)
        with pytest.raises(ValueError, match="non-negative"):
            LatencySpec("uniform", mean=1.0, spread=2.0)

    def test_instant_detection(self):
        assert INSTANT.is_instant
        assert LatencySpec("exponential", mean=0.0).is_instant
        assert not LatencySpec("constant", mean=0.5).is_instant
        assert LatencySpec("uniform", mean=0.0, spread=0.0).is_instant
        assert LatencySpec("lognormal", mean=0.0, spread=1.0).is_instant

    def test_constant_draws_no_randomness(self):
        rng = np.random.default_rng(0)
        spec = LatencySpec("constant", mean=0.7)
        before = rng.bit_generator.state
        assert spec.sample(rng) == 0.7
        assert rng.bit_generator.state == before

    @pytest.mark.parametrize("kind,spread", [
        ("uniform", 0.5), ("exponential", 0.0), ("lognormal", 0.8),
    ])
    def test_samples_nonnegative_with_roughly_right_mean(self, kind, spread):
        spec = LatencySpec(kind, mean=2.0, spread=spread)
        rng = np.random.default_rng(1)
        samples = np.array([spec.sample(rng) for _ in range(4000)])
        assert (samples >= 0.0).all()
        assert samples.mean() == pytest.approx(2.0, rel=0.1)

    def test_seeded_sampling_is_deterministic(self):
        spec = LatencySpec("lognormal", mean=1.0, spread=0.5)
        a = [spec.sample(np.random.default_rng(9)) for _ in range(1)]
        b = [spec.sample(np.random.default_rng(9)) for _ in range(1)]
        assert a == b


class TestBlockRegions:
    def test_contiguous_blocks(self):
        assert block_regions(6, 2).tolist() == [0, 0, 0, 1, 1, 1]
        assert block_regions(5, 2).tolist() == [0, 0, 0, 1, 1]
        assert block_regions(4, 4).tolist() == [0, 1, 2, 3]

    def test_every_region_nonempty(self):
        for n, k in [(10, 3), (7, 7), (100, 9)]:
            counts = np.bincount(block_regions(n, k), minlength=k)
            assert (counts > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            block_regions(0, 1)
        with pytest.raises(ValueError):
            block_regions(4, 5)
        with pytest.raises(ValueError):
            block_regions(4, 0)


class TestInstantLink:
    def test_trivial_bound_consumes_no_randomness(self):
        rng = np.random.default_rng(3)
        bound = InstantLink(0.0).bind(None, rng)
        before = rng.bit_generator.state
        assert bound.is_trivial
        assert bound.transfer(0.0, 0, 1) == (False, 0.0)
        assert rng.bit_generator.state == before
        assert bound.quiet_horizon == 0.0

    def test_loss_rate_matches_probability(self):
        bound = InstantLink(0.25).bind(None, 11)
        drops = sum(bound.transfer(0.0, 0, 1)[0] for _ in range(4000))
        assert drops == bound.dropped_count
        assert drops / 4000 == pytest.approx(0.25, abs=0.03)
        assert bound.delivered_count == 4000 - drops

    def test_matches_packet_loss_model_stream(self):
        # The sync face (PacketLossModel) and the async face (bound
        # transfer) must consume the shared loss stream identically:
        # one uniform draw per push, compared against the same p.
        p = 0.3
        reference = np.random.default_rng(17).random(500) < p
        bound = InstantLink(p).bind(None, np.random.default_rng(17))
        fates = np.array([bound.transfer(0.0, 0, 1)[0] for _ in range(500)])
        assert np.array_equal(fates, reference)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstantLink(1.5)


class TestPacketLossModel:
    def test_reexported_from_churn(self):
        from repro.network.churn import PacketLossModel as legacy

        assert legacy is PacketLossModel

    def test_counters_and_redirect(self):
        model = PacketLossModel(1.0, rng=0)
        senders = np.array([3, 4])
        out = model.apply(senders, np.array([5, 6]))
        assert out.tolist() == [3, 4]
        assert model.lost_count == 2 and model.delivered_count == 0
        model.reset_counters()
        assert model.lost_count == 0

    def test_no_loss_helper(self):
        model = no_loss()
        targets = np.array([1, 2, 3])
        assert np.array_equal(model.apply(np.array([0, 0, 0]), targets), targets)


class TestHomogeneousLink:
    def test_latency_flag(self):
        assert not HomogeneousLink(0.1).has_latency
        assert HomogeneousLink(latency=LatencySpec("constant", 0.5)).has_latency
        assert HomogeneousLink(bandwidth=10.0).has_latency

    def test_uniform_loss_face(self):
        assert HomogeneousLink(0.2).uniform_loss_probability == 0.2

    def test_bandwidth_fifo_queueing(self):
        # Cap of 2 msgs/time-unit => 0.5 service time. Three instant
        # pushes on the same directed edge at t=0 serialize: 0.5, 1.0,
        # 1.5. The reverse direction is full-duplex (independent queue).
        link = HomogeneousLink(0.0, bandwidth=2.0)
        bound = link.bind(None, 0)
        delays = [bound.transfer(0.0, 0, 1)[1] for _ in range(3)]
        assert delays == [0.5, 1.0, 1.5]
        assert bound.transfer(0.0, 1, 0)[1] == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HomogeneousLink(bandwidth=0.0)
        with pytest.raises(ValueError):
            HomogeneousLink(-0.1)


class TestRegionalLinkModel:
    def test_region_resolution_matches_block_regions(self):
        model = RegionalLinkModel(3)
        assert np.array_equal(model.resolve_regions(9), block_regions(9, 3))
        explicit = RegionalLinkModel(np.array([0, 1, 1, 0]))
        assert explicit.resolve_regions(4).tolist() == [0, 1, 1, 0]

    def test_intra_vs_inter_latency(self):
        model = RegionalLinkModel(
            2, inter_latency=LatencySpec("constant", mean=1.0)
        )
        bound = model.bind(4, rng=0)
        assert bound.transfer(0.0, 0, 1) == (False, 0.0)
        assert bound.transfer(0.0, 1, 2) == (False, 1.0)

    def test_flaky_region_raises_loss_floor(self):
        model = RegionalLinkModel(2, flaky_region=1, flaky_loss=1.0)
        bound = model.bind(4, rng=0)
        assert bound.transfer(0.0, 0, 1) == (False, 0.0)  # region 0 intact
        assert bound.transfer(0.0, 2, 3)[0] is True  # both ends flaky
        assert bound.transfer(0.0, 1, 2)[0] is True  # one end flaky

    def test_partition_window_drops_cross_only_and_heals(self):
        model = RegionalLinkModel(
            2, partitions=(PartitionWindow(start=1.0, duration=2.0),)
        )
        bound = model.bind(4, rng=0)
        assert bound.transfer(1.5, 0, 1) == (False, 0.0)  # intra unaffected
        assert bound.transfer(1.5, 1, 2) == (True, 0.0)  # cross dropped
        assert bound.partition_dropped_count == 1
        assert bound.transfer(3.0, 1, 2) == (False, 0.0)  # healed
        assert bound.quiet_horizon == 3.0

    def test_partition_drop_consumes_no_randomness(self):
        rng = np.random.default_rng(5)
        model = RegionalLinkModel(
            2, inter_loss=0.5, partitions=(PartitionWindow(start=0.0, duration=1.0),)
        )
        bound = model.bind(4, rng=rng)
        before = rng.bit_generator.state
        assert bound.transfer(0.5, 0, 3)[0] is True
        assert rng.bit_generator.state == before

    def test_capability_flags(self):
        assert not RegionalLinkModel(2, intra_loss=0.1, inter_loss=0.1).has_latency
        assert RegionalLinkModel(2, intra_loss=0.1, inter_loss=0.1).uniform_loss_probability == 0.1
        assert RegionalLinkModel(2, intra_loss=0.1, inter_loss=0.3).uniform_loss_probability is None
        assert RegionalLinkModel(
            2, partitions=(PartitionWindow(0.0, 1.0),)
        ).has_latency  # time-dependent => event-driven only

    def test_validation(self):
        with pytest.raises(ValueError, match="flaky_region"):
            RegionalLinkModel(2, flaky_region=5, flaky_loss=0.5)
        with pytest.raises(ValueError, match="no-op flake"):
            RegionalLinkModel(2, flaky_region=1)
        with pytest.raises(ValueError, match="non-empty"):
            RegionalLinkModel(np.array([[0, 1]]).reshape(1, 2))
        with pytest.raises(ValueError, match=">= 1"):
            RegionalLinkModel(0)


class TestPartitionSchedules:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            PartitionWindow(start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            PartitionWindow(start=0.0, duration=0.0)

    def test_window_bounds(self):
        window = PartitionWindow(start=5.0, duration=10.0)
        assert window.end == 15.0
        assert not window.active(4.9)
        assert window.active(5.0)
        assert not window.active(15.0)

    def test_epoch_partition(self):
        schedule = EpochPartition(start_epoch=2, heal_epoch=4, num_groups=3)
        assert [schedule.active(e) for e in range(5)] == [False, False, True, True, False]
        assert schedule.group(7) == 1
        with pytest.raises(ValueError):
            EpochPartition(start_epoch=3, heal_epoch=3)
        with pytest.raises(ValueError):
            EpochPartition(start_epoch=0, heal_epoch=2, num_groups=1)
