"""Unit tests for the statistics and sweep utilities."""

import pytest

from repro.analysis.sweeps import grid_sweep, replicate
from repro.utils.stats import SampleSummary, summarize


class TestSummarize:
    def test_basic_moments(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.confidence_halfwidth() == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_halfwidth(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        expected = 1.96 * s.std / 2.0  # sqrt(4) = 2
        assert s.confidence_halfwidth() == pytest.approx(expected)

    def test_format(self):
        text = summarize([1.0, 2.0]).format(2)
        assert "±" in text
        assert text.startswith("1.50")

    def test_accepts_ints(self):
        s = summarize([1, 2, 3])
        assert isinstance(s, SampleSummary)
        assert s.mean == 2.0


class TestReplicate:
    def test_collects_all_metrics(self):
        out = replicate(lambda seed: {"a": 1.0, "b": 2.0}, repetitions=4, seed=0)
        assert out["a"].count == 4
        assert out["a"].mean == 1.0
        assert out["b"].mean == 2.0

    def test_seeds_differ_across_repetitions(self):
        seeds = []
        replicate(lambda s: (seeds.append(s), {"x": 0.0})[1], repetitions=5, seed=1)
        assert len(set(seeds)) == 5

    def test_deterministic_from_master_seed(self):
        a = replicate(lambda s: {"x": float(s % 97)}, repetitions=3, seed=9)
        b = replicate(lambda s: {"x": float(s % 97)}, repetitions=3, seed=9)
        assert a["x"].mean == b["x"].mean

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 0.0}, repetitions=0)


class TestGridSweep:
    def test_cell_per_config(self):
        cells = grid_sweep(
            [(1,), (2,), (3,)],
            lambda scale: (lambda seed: {"value": float(scale)}),
            repetitions=2,
            seed=0,
        )
        assert [cell.config for cell in cells] == [(1,), (2,), (3,)]
        assert cells[1].metrics["value"].mean == 2.0

    def test_multi_parameter_configs(self):
        cells = grid_sweep(
            [(2, 10), (3, 20)],
            lambda a, b: (lambda seed: {"product": float(a * b)}),
            repetitions=1,
            seed=1,
        )
        assert cells[0].metrics["product"].mean == 20.0
        assert cells[1].metrics["product"].mean == 60.0

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            grid_sweep([], lambda: None)


class TestXiAccuracyExperiment:
    def test_error_tracks_xi(self):
        from repro.experiments.xi_accuracy import run

        result = run(num_nodes=150, xis=(1e-2, 1e-5), repetitions=2, seed=3)
        # Parse the formatted "mean ± hw" cells back to floats.
        loose = float(result.rows[0][2].split("±")[0])
        tight = float(result.rows[1][2].split("±")[0])
        assert tight < loose

    def test_steps_grow_with_tighter_xi(self):
        from repro.experiments.xi_accuracy import run

        result = run(num_nodes=150, xis=(1e-2, 1e-5), repetitions=2, seed=4)
        loose_steps = float(result.rows[0][3].split("±")[0])
        tight_steps = float(result.rows[1][3].split("±")[0])
        assert tight_steps > loose_steps
