"""Unit tests for the adaptive weighting policy (the paper's extension)."""

import pytest

from repro.core.adaptive_weights import AdaptiveWeightPolicy
from repro.core.weights import WeightParams


class TestNetworkLoop:
    def test_neutral_start(self):
        policy = AdaptiveWeightPolicy(a_min=2.0, a_max=8.0)
        # quality 0.5 -> midpoint base.
        assert policy.a == pytest.approx(5.0)

    def test_bad_service_raises_a(self):
        policy = AdaptiveWeightPolicy()
        before = policy.a
        for _ in range(40):
            policy.record_service_quality(0.0)
        assert policy.a > before
        assert policy.a == pytest.approx(policy.a_max, abs=0.1)

    def test_good_service_lowers_a(self):
        policy = AdaptiveWeightPolicy()
        for _ in range(40):
            policy.record_service_quality(1.0)
        assert policy.a == pytest.approx(policy.a_min, abs=0.1)

    def test_a_stays_in_range(self):
        policy = AdaptiveWeightPolicy(a_min=1.5, a_max=3.0)
        for q in (0.0, 1.0, 0.0, 1.0, 0.3):
            policy.record_service_quality(q)
            assert 1.5 <= policy.a <= 3.0

    def test_rejects_bad_satisfaction(self):
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy().record_service_quality(1.5)


class TestRecommendationLoop:
    def test_unknown_neighbor_neutral(self):
        policy = AdaptiveWeightPolicy()
        assert policy.recommendation_accuracy(9) == 0.5

    def test_accurate_recommender_earns_gain(self):
        policy = AdaptiveWeightPolicy()
        before = policy.b_for(3)
        for _ in range(30):
            policy.record_recommendation(3, recommended=0.8, experienced=0.8)
        assert policy.b_for(3) > before

    def test_misleading_recommender_loses_gain(self):
        policy = AdaptiveWeightPolicy()
        for _ in range(30):
            policy.record_recommendation(3, recommended=1.0, experienced=0.0)
        assert policy.b_for(3) == pytest.approx(policy.b_min, abs=0.05)

    def test_per_neighbor_independence(self):
        policy = AdaptiveWeightPolicy()
        for _ in range(20):
            policy.record_recommendation(1, 0.9, 0.9)
            policy.record_recommendation(2, 0.9, 0.1)
        assert policy.b_for(1) > policy.b_for(2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy().record_recommendation(1, 1.5, 0.5)
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy().record_recommendation(1, 0.5, -0.1)


class TestComposition:
    def test_params_for_is_valid_weight_params(self):
        policy = AdaptiveWeightPolicy()
        params = policy.params_for(4)
        assert isinstance(params, WeightParams)
        assert params.a >= 1.0
        assert params.b >= 0.0

    def test_weight_for_matches_formula(self):
        policy = AdaptiveWeightPolicy()
        expected = policy.params_for(4).weight(0.7)
        assert policy.weight_for(4, 0.7) == pytest.approx(expected)

    def test_malicious_recommender_weight_collapses(self):
        # The conclusion's claim: adjusting a/b "avoids malicious users".
        policy = AdaptiveWeightPolicy(b_min=0.0)
        for _ in range(50):
            policy.record_recommendation(5, recommended=1.0, experienced=0.0)
        # Even full trust earns ~no amplification once recommendations
        # proved worthless: w -> a^0 = 1.
        assert policy.weight_for(5, 1.0) == pytest.approx(1.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy(a_min=0.5)
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy(a_min=5.0, a_max=2.0)
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy(b_min=-1.0)
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy(b_min=2.0, b_max=1.0)
        with pytest.raises(ValueError):
            AdaptiveWeightPolicy(smoothing=0.0)
