"""MutableOverlay: mutation semantics and incremental CSR snapshots."""

import numpy as np
import pytest

from repro.network.graph import Graph
from repro.network.mutable import MutableOverlay
from repro.network.preferential_attachment import preferential_attachment_graph


def reference_graph(overlay: MutableOverlay):
    """Rebuild the snapshot graph from scratch out of the adjacency dict."""
    pids = overlay.peer_ids()
    index = {int(p): i for i, p in enumerate(pids)}
    edges = set()
    for u in pids:
        for v in overlay.neighbors_of(int(u)):
            edges.add(tuple(sorted((index[int(u)], index[int(v)]))))
    return Graph(len(pids), sorted(edges))


class TestConstruction:
    def test_from_graph_preserves_topology(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        graph, pids = overlay.snapshot()
        assert graph == fig2_network
        assert pids.tolist() == list(range(fig2_network.num_nodes))

    def test_grow_preferential_matches_generator(self):
        overlay = MutableOverlay.grow_preferential(40, m=2, rng=9)
        graph, _ = overlay.snapshot()
        assert graph == preferential_attachment_graph(40, m=2, rng=9)

    def test_counts_track_graph(self, pa_graph_small):
        overlay = MutableOverlay.from_graph(pa_graph_small)
        assert overlay.num_peers == pa_graph_small.num_nodes
        assert overlay.num_edges == pa_graph_small.num_edges


class TestMutation:
    def test_add_peer_assigns_fresh_monotonic_ids(self, pa_graph_small):
        overlay = MutableOverlay.from_graph(pa_graph_small)
        first = overlay.add_peer(m=2, rng=1)
        overlay.remove_peer(first, rng=1)
        second = overlay.add_peer(m=2, rng=2)
        assert first == pa_graph_small.num_nodes
        assert second == first + 1  # departed ids are never reused
        assert not overlay.has_peer(first)

    def test_add_peer_wires_m_distinct_targets(self, pa_graph_small):
        overlay = MutableOverlay.from_graph(pa_graph_small)
        pid = overlay.add_peer(m=3, rng=5)
        assert overlay.degree_of(pid) == 3
        assert len(set(overlay.neighbors_of(pid))) == 3

    def test_add_peer_explicit_targets(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        pid = overlay.add_peer(targets=[0, 3])
        assert overlay.neighbors_of(pid) == (0, 3)

    def test_attachment_is_degree_biased(self):
        # On a 6-node star the hub holds half the degree mass (5 of 10),
        # so PA joins must pick it ~50% of the time (uniform would be
        # 1/6). Join+leave keeps the overlay fixed between trials.
        overlay = MutableOverlay.from_graph(Graph(6, [(0, i) for i in range(1, 6)]))
        rng = np.random.default_rng(3)
        hub_picks = 0
        for _ in range(100):
            pid = overlay.add_peer(m=1, rng=rng)
            hub_picks += 0 in overlay.neighbors_of(pid)
            overlay.remove_peer(pid, rewire_isolated=False)
        assert 30 <= hub_picks <= 70

    def test_remove_peer_returns_former_neighbors(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        expected = tuple(int(v) for v in fig2_network.neighbors(2))
        assert overlay.remove_peer(2, rng=0) == expected

    def test_remove_peer_rewires_stranded_neighbors(self):
        # Leaf 1 only knows the hub; the hub leaving must not strand it.
        overlay = MutableOverlay.from_graph(Graph(5, [(0, i) for i in range(1, 5)]))
        overlay.remove_peer(0, rewire_isolated=True, rng=7)
        for pid in overlay.peer_ids():
            assert overlay.degree_of(int(pid)) >= 1

    def test_remove_peer_can_leave_isolated_when_asked(self):
        overlay = MutableOverlay.from_graph(Graph(3, [(0, 1), (0, 2)]))
        overlay.remove_peer(0, rewire_isolated=False)
        graph, _ = overlay.snapshot()
        assert graph.num_edges == 0

    def test_edge_add_remove_roundtrip(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        assert not overlay.has_edge(0, 9)
        overlay.add_edge(0, 9)
        assert overlay.has_edge(0, 9)
        overlay.remove_edge(0, 9)
        assert overlay.num_edges == fig2_network.num_edges
        assert overlay.snapshot()[0] == fig2_network

    def test_rejects_bad_mutations(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        with pytest.raises(ValueError):
            overlay.add_edge(0, 0)
        with pytest.raises(ValueError):
            overlay.add_edge(0, 1)  # duplicate
        with pytest.raises(KeyError):
            overlay.remove_edge(0, 9)  # absent
        with pytest.raises(KeyError):
            overlay.remove_peer(99)
        with pytest.raises(ValueError):
            overlay.add_peer(m=0)

    def test_refuses_to_empty_the_overlay(self):
        overlay = MutableOverlay.from_graph(Graph(2, [(0, 1)]))
        with pytest.raises(ValueError):
            overlay.remove_peer(0)


class TestBridgeComponents:
    def test_connected_overlay_is_untouched(self, pa_graph_small):
        overlay = MutableOverlay.from_graph(pa_graph_small)
        assert overlay.bridge_components(rng=0) == 0
        assert overlay.snapshot()[0] == pa_graph_small

    def test_islands_get_one_bridge_each(self):
        # Two triangles and a pair: three components, giant = triangle 0.
        overlay = MutableOverlay.from_graph(
            Graph(8, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7)])
        )
        assert overlay.bridge_components(rng=1) == 2
        assert overlay.snapshot()[0].is_connected()

    def test_departure_splits_are_repaired(self):
        overlay = MutableOverlay.grow_preferential(60, m=2, rng=2)
        rng = np.random.default_rng(5)
        for _ in range(25):
            pids = overlay.peer_ids()
            overlay.remove_peer(int(pids[rng.integers(len(pids))]), rng=rng)
        overlay.bridge_components(rng=rng)
        assert overlay.snapshot()[0].is_connected()


class TestSnapshots:
    def test_snapshot_is_cached_until_mutation(self, pa_graph_small):
        overlay = MutableOverlay.from_graph(pa_graph_small)
        first = overlay.snapshot()[0]
        assert overlay.snapshot()[0] is first
        overlay.add_peer(m=2, rng=0)
        assert overlay.snapshot()[0] is not first

    def test_peer_ids_map_indices_to_stable_ids(self, pa_graph_small):
        overlay = MutableOverlay.from_graph(pa_graph_small)
        overlay.remove_peer(5, rng=0)
        pid = overlay.add_peer(m=2, rng=1)
        graph, pids = overlay.snapshot()
        assert graph.num_nodes == pids.shape[0] == overlay.num_peers
        assert 5 not in pids
        assert pids[-1] == pid
        # Degrees line up under the id map.
        for index, peer in enumerate(pids):
            assert graph.degree(index) == overlay.degree_of(int(peer))

    def test_incremental_patch_equals_scratch_rebuild(self):
        overlay = MutableOverlay.grow_preferential(120, m=2, rng=11)
        rng = np.random.default_rng(4)
        for _ in range(25):
            for _ in range(int(rng.integers(1, 5))):
                op = rng.integers(4)
                pids = overlay.peer_ids()
                if op == 0:
                    overlay.add_peer(m=2, rng=rng)
                elif op == 1 and overlay.num_peers > 10:
                    overlay.remove_peer(int(pids[rng.integers(len(pids))]), rng=rng)
                elif op == 2:
                    u, v = (int(x) for x in rng.choice(pids, 2, replace=False))
                    if not overlay.has_edge(u, v):
                        overlay.add_edge(u, v)
                else:
                    u = int(pids[rng.integers(len(pids))])
                    nbrs = overlay.neighbors_of(u)
                    if len(nbrs) > 1:
                        overlay.remove_edge(u, int(nbrs[rng.integers(len(nbrs))]))
            graph, _ = overlay.snapshot()
            assert graph == reference_graph(overlay)
            assert graph.num_edges == overlay.num_edges

    def test_add_then_remove_same_edge_between_snapshots(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        overlay.add_edge(0, 9)
        overlay.remove_edge(0, 9)
        assert overlay.snapshot()[0] == fig2_network

    def test_remove_then_readd_same_edge_between_snapshots(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        overlay.remove_edge(0, 1)
        overlay.add_edge(0, 1)
        assert overlay.snapshot()[0] == fig2_network


class TestExplicitDuplicateEdgePath:
    """_record_edge skips (never recounts) an already-present edge."""

    def test_duplicate_record_is_skipped_and_counts_stay_consistent(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        edges_before = overlay.num_edges
        deg_before = overlay.degree_of(0)
        assert overlay._record_edge(0, 9) is True  # fresh edge
        assert overlay._record_edge(0, 9) is False  # duplicate: skipped
        assert overlay._record_edge(9, 0) is False  # either orientation
        assert overlay.num_edges == edges_before + 1
        assert overlay.degree_of(0) == deg_before + 1
        overlay.check_invariants()
        # The snapshot sees the edge exactly once.
        graph, _ = overlay.snapshot()
        assert graph.num_edges == overlay.num_edges

    def test_bridge_components_counts_only_new_edges(self):
        overlay = MutableOverlay.from_graph(Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)]))
        added = overlay.bridge_components(rng=3)
        assert added == 1
        overlay.check_invariants()
        assert overlay.snapshot()[0].is_connected()
        assert overlay.bridge_components(rng=4) == 0

    def test_orphan_rewire_keeps_invariants(self):
        # Removing the middle of a path strands both ends; the rewires
        # must leave a consistent edge set.
        overlay = MutableOverlay.from_graph(Graph(5, [(0, 2), (1, 2), (2, 3), (3, 4)]))
        overlay.remove_peer(2, rewire_isolated=True, rng=1)
        overlay.check_invariants()
        assert all(overlay.degree_of(int(p)) > 0 for p in overlay.peer_ids())

    def test_check_invariants_catches_corruption(self, fig2_network):
        overlay = MutableOverlay.from_graph(fig2_network)
        overlay._num_edges += 1  # simulate the double-count bug
        with pytest.raises(AssertionError, match="edge set"):
            overlay.check_invariants()


from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule


class OverlayMachine(RuleBasedStateMachine):
    """Random join/leave/rewire/bridge walks never desynchronise counts.

    The load-bearing check is the invariant: after *every* mutation,
    ``num_edges`` equals the size of the actual undirected edge set and
    the degree array matches the adjacency — the exact quantities a
    silently recounted duplicate edge would corrupt.
    """

    @initialize(seed=st.integers(min_value=0, max_value=2**20))
    def grow(self, seed):
        self.overlay = MutableOverlay.grow_preferential(12, m=2, rng=seed)
        self.rng = np.random.default_rng(seed + 1)

    @rule(m=st.integers(min_value=1, max_value=3))
    def join(self, m):
        self.overlay.add_peer(m=m, rng=self.rng)

    @rule()
    def leave(self):
        if self.overlay.num_peers > 4:
            pids = self.overlay.peer_ids()
            victim = int(pids[self.rng.integers(len(pids))])
            self.overlay.remove_peer(victim, rewire_isolated=True, rng=self.rng)

    @rule()
    def wire(self):
        pids = self.overlay.peer_ids()
        u, v = (int(x) for x in self.rng.choice(pids, 2, replace=False))
        if not self.overlay.has_edge(u, v):
            self.overlay.add_edge(u, v)

    @rule()
    def unwire(self):
        pids = self.overlay.peer_ids()
        u = int(pids[self.rng.integers(len(pids))])
        nbrs = self.overlay.neighbors_of(u)
        if nbrs:
            self.overlay.remove_edge(u, int(nbrs[self.rng.integers(len(nbrs))]))

    @rule()
    def bridge(self):
        self.overlay.bridge_components(rng=self.rng)

    @rule()
    def snapshot_agrees(self):
        graph, _ = self.overlay.snapshot()
        assert graph.num_edges == self.overlay.num_edges

    @invariant()
    def counts_describe_one_edge_set(self):
        if hasattr(self, "overlay"):
            self.overlay.check_invariants()


OverlayMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestOverlayStateful = pytest.mark.property(OverlayMachine.TestCase)
