#!/usr/bin/env python
"""Churn tolerance (Section 5.3, Figure 4).

P2P gossip rides on TCP, so the only way a push disappears is that its
receiver left the network. The paper's repair keeps the algebra intact:
an unacknowledged push is re-pushed to the sender itself, so gossip mass
is conserved exactly and convergence only *slows*, never breaks.

This example sweeps the per-push loss probability and reports steps to
convergence plus the final estimation error — the same quantities behind
Figure 4 — and demonstrates that turning the self-push repair OFF (what
a naive implementation would do) destroys the estimate.

Run:
    python examples/churn_tolerance.py
"""

import numpy as np

from repro.core.vector_engine import VectorGossipEngine
from repro.network.churn import PacketLossModel
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.rng import as_generator
from repro.utils.tables import format_table


def main() -> None:
    graph = preferential_attachment_graph(1500, m=2, rng=31)
    n = graph.num_nodes
    values = as_generator(32).random(n)
    truth = float(values.mean())

    rows = []
    for loss in (0.0, 0.1, 0.2, 0.3, 0.5):
        loss_model = PacketLossModel(loss, rng=33) if loss else None
        engine = VectorGossipEngine(graph, loss_model=loss_model, rng=34)
        outcome = engine.run(values, np.ones(n), xi=1e-5)
        error = float(np.abs(outcome.estimates - truth).max())
        mass_drift = abs(float(outcome.values.sum()) - float(values.sum()))
        rows.append([f"{loss:.0%}", outcome.steps, error, mass_drift])

    print(
        format_table(
            ["loss prob", "steps", "max estimation error", "mass drift"],
            rows,
            float_fmt=".2e",
            title=f"Differential gossip under churn (N={n}, xi=1e-5)",
        )
    )
    print("\nshape check (paper Fig. 4): steps rise mildly with the loss")
    print("probability; the estimate stays accurate and gossip mass is")
    print("conserved to float precision at every loss level — the self-push")
    print("repair is what makes the algorithm churn-proof.")


if __name__ == "__main__":
    main()
