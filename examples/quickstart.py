#!/usr/bin/env python
"""Quickstart: aggregate reputations over a power-law P2P network.

Builds the paper's world in four lines — a preferential-attachment
overlay, local direct-interaction trust, and one Differential Gossip
Trust round (variant 4: every node ends up with its own calibrated
reputation estimate for every tracked peer) — then shows that the
decentralised gossip agrees with the exact closed form.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import (
    WeightParams,
    aggregate_vector_gclr,
    preferential_attachment_graph,
    random_trust_matrix,
)
from repro.core.vector_gclr import true_vector_gclr


def main() -> None:
    # 1. An unstructured P2P overlay: 500 peers, PA model with m=2
    #    (Gnutella-like power-law degrees).
    graph = preferential_attachment_graph(500, m=2, rng=1)
    print(f"overlay: {graph.num_nodes} peers, {graph.num_edges} links, "
          f"max degree {int(graph.degrees.max())}")

    # 2. Local trust: each linked pair has transacted and holds mutual
    #    direct-interaction estimates t_ij in [0, 1].
    trust = random_trust_matrix(graph, rng=2)
    print(f"trust: {trust.num_observations} direct observations")

    # 3. One Differential Gossip Trust round for five target peers.
    targets = [3, 42, 99, 250, 400]
    result = aggregate_vector_gclr(
        graph,
        trust,
        targets=targets,
        params=WeightParams(a=4.0, b=1.0),
        xi=1e-6,
        rng=3,
    )
    outcome = result.outcome
    print(f"gossip: converged in {outcome.steps} steps, "
          f"{outcome.total_messages} messages "
          f"({outcome.messages_per_node_per_step:.3f} per active node-step)")

    # 4. Every node now holds its own calibrated estimate; check them
    #    against the exact eq.-6 fixpoint.
    exact = true_vector_gclr(graph, trust, targets, WeightParams(a=4.0, b=1.0))
    worst = float(np.abs(result.reputations - exact).max())
    print(f"accuracy: max |gossip - exact| = {worst:.2e}")

    print("\nreputation of each target as seen by peers 0 and 1:")
    for column, target in enumerate(targets):
        r0 = result.reputations[0, column]
        r1 = result.reputations[1, column]
        print(f"  peer {target:3d}: node0 estimates {r0:.4f}, node1 estimates {r1:.4f}")
    print("\n(estimates differ per estimating node — that is the point of")
    print(" globally *calibrated local* reputation: your trusted partners'")
    print(" direct experience shifts your view.)")


if __name__ == "__main__":
    main()
