#!/usr/bin/env python
"""The paper's worked example: Table 1 on the Figure-2 network.

Reconstructs the 10-node topology from the published degree sequence
(4, 4, 7, 3, 3, 2, 2, 2, 3, 2 with differential push counts
1, 1, 3, 1, 1, 1, 1, 1, 1, 1), runs one differential-gossip round with
the protocol-faithful message engine, and prints the per-iteration
estimate at every node — the paper's Table 1, regenerated.

Run:
    python examples/example_network_trace.py
"""

from repro.experiments.table1 import run as run_table1


def main() -> None:
    result = run_table1(xi=0.005, seed=2016)
    print(result.to_text())
    print()
    print("Reading the trace: node 3 is the hub (degree 7), so the")
    print("differential rule has it push k=3 shares per step; every other")
    print("node pushes once. All ten estimates contract onto the mean of")
    print("the initial direct-trust values, just as the paper's Table 1")
    print("contracts onto ~0.42-0.45 within a handful of iterations.")


if __name__ == "__main__":
    main()
