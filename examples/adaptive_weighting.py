#!/usr/bin/env python
"""Adaptive a_i / b_ij — the paper's proposed extension, exercised.

The conclusion of the paper suggests that the weighting constants of
eq. 2, fixed in its experiments, should be *adapted*: a_i by the quality
of service a node receives from the open network, b_ij by how well a
neighbour's past recommendations predicted subsequent direct experience
— and that this adaptation also defends against malicious recommenders.

This example wires :class:`repro.core.adaptive_weights.AdaptiveWeightPolicy`
into a GCLR aggregation and shows the defence working: a neighbour that
keeps recommending badly-behaved peers loses its amplification, so its
lies stop moving the estimating node's reputations.

Run:
    python examples/adaptive_weighting.py
"""

from repro.core.adaptive_weights import AdaptiveWeightPolicy
from repro.utils.tables import format_table


def main() -> None:
    policy = AdaptiveWeightPolicy(a_min=2.0, a_max=8.0, b_min=0.0, b_max=2.0)

    print("Phase 1 — the network serves this node well; neighbour 7 gives")
    print("honest recommendations, neighbour 9 praises peers that then")
    print("deliver garbage.\n")
    rows = []
    for step in range(40):
        policy.record_service_quality(0.85)  # healthy network
        policy.record_recommendation(7, recommended=0.8, experienced=0.78)
        policy.record_recommendation(9, recommended=0.9, experienced=0.15)
        if step in (0, 4, 14, 39):
            rows.append(
                [
                    step + 1,
                    policy.a,
                    policy.b_for(7),
                    policy.b_for(9),
                    policy.weight_for(7, 0.8),
                    policy.weight_for(9, 0.8),
                ]
            )
    print(
        format_table(
            ["interactions", "a_i", "b(honest 7)", "b(liar 9)", "w(7, t=0.8)", "w(9, t=0.8)"],
            rows,
            title="Weight evolution under adaptive a/b",
        )
    )
    print("\nthe liar's weight collapses toward 1 — exactly a stranger's —")
    print("so its feedback still counts in the global average but earns no")
    print("amplification: the paper's 'avoid malicious users' mechanism.\n")

    print("Phase 2 — the open network degrades (free riders everywhere):")
    for _ in range(40):
        policy.record_service_quality(0.15)
    print(f"a_i rises to {policy.a:.2f} (was ~2.9): when the network is bad,")
    print("a node leans harder on its few proven partners relative to the")
    print("gossiped global average.")


if __name__ == "__main__":
    main()
