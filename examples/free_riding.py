#!/usr/bin/env python
"""Free riding: the problem the paper exists to solve (Sections 1 and 3).

Runs the full file-sharing world twice on the same overlay and seed:
once with reputation-gated service, once in "anarchy" (providers ignore
reputation). With the reputation system on, free riders — peers that
share almost nothing and rarely serve — see their download success rate
collapse while cooperative peers' service is unaffected, which is
exactly the incentive structure a reputation system must create.

Run:
    python examples/free_riding.py
"""

from repro.network.preferential_attachment import preferential_attachment_graph
from repro.simulation.filesharing import FileSharingSimulation, SimulationConfig
from repro.simulation.peer import cooperative_profile, free_rider_profile
from repro.utils.tables import format_table


def build_world(seed: int):
    graph = preferential_attachment_graph(80, m=2, rng=seed)
    # One peer in four free rides (the Gnutella studies the paper cites
    # found far worse: ~70% shared nothing).
    profiles = [
        free_rider_profile() if i % 4 == 0 else cooperative_profile()
        for i in range(graph.num_nodes)
    ]
    config = SimulationConfig(horizon=80.0, aggregation_interval=20.0)
    return graph, profiles, config


def run(use_reputation: bool):
    graph, profiles, config = build_world(seed=11)
    simulation = FileSharingSimulation(
        graph, profiles, config, rng=12, use_reputation=use_reputation
    )
    return simulation.run()


def main() -> None:
    with_reputation = run(use_reputation=True)
    anarchy = run(use_reputation=False)

    rows = []
    for label, report in (("reputation ON", with_reputation), ("anarchy", anarchy)):
        for name in ("cooperative", "free_rider"):
            summary = report.by_profile[name]
            rows.append(
                [
                    label,
                    name,
                    summary.peers,
                    summary.requests,
                    summary.download_success_rate,
                    summary.uploads_served,
                ]
            )
    print(
        format_table(
            ["mode", "profile", "peers", "requests", "download success", "uploads served"],
            rows,
            title="File-sharing outcomes by behaviour profile",
        )
    )

    ratio_on = with_reputation.success_ratio("cooperative", "free_rider")
    ratio_off = anarchy.success_ratio("cooperative", "free_rider")
    print("\ncooperative/free-rider success ratio: "
          f"{ratio_on:.2f} with reputation vs {ratio_off:.2f} in anarchy")
    print("-> reputation makes contribution pay: free riders are starved, ")
    print("   so free riding stops being the dominant strategy (Section 3).")


if __name__ == "__main__":
    main()
