#!/usr/bin/env python
"""Collusion resistance (Section 5.2, Figures 5-6, eq. 17).

Injects group-collusion attacks of growing size into a heavily loaded
network and measures the paper's eq.-18 average RMS reputation error,
for Differential Gossip Trust and for an unweighted global average.
Also verifies eq. 17's damping identity at a concrete observer.

Run:
    python examples/collusion_resistance.py
"""

from repro.analysis.collusion_theory import damping_ratio
from repro.attacks.collusion import group_colluders, select_colluders
from repro.core.weights import WeightParams, excess_weights
from repro.experiments.collusion_common import build_world, measure_collusion
from repro.utils.tables import format_table


def main() -> None:
    num_nodes = 200
    graph, trust = build_world(num_nodes, seed=21)

    rows = []
    for fraction in (0.1, 0.3, 0.5):
        for group_size in (2, 10):
            attack = group_colluders(
                select_colluders(num_nodes, fraction, rng=int(fraction * 100) + group_size),
                group_size,
            )
            rms_dgt, rms_plain = measure_collusion(
                graph, trust, attack, targets=range(0, num_nodes, 4), use_gossip=False
            )
            rows.append(
                [f"{fraction:.0%}", group_size, attack.num_colluders, rms_dgt, rms_plain]
            )
    print(
        format_table(
            ["colluders", "G", "C", "RMS (DGT)", "RMS (unweighted)"],
            rows,
            title="Eq.-18 average RMS reputation error under group collusion",
        )
    )
    print("\nshape check (paper Fig. 5): error grows smoothly with the colluding")
    print("fraction; the group size makes only a small difference; DGT tracks at")
    print("or below the unweighted global average.\n")

    # Eq. 17 at one observer: the damping is an identity, not a tendency.
    params = WeightParams()
    observer = next(
        node
        for node in range(num_nodes)
        if excess_weights(params, trust.row(node))
    )
    total_excess = sum(
        excess_weights(params, trust.row(observer)).get(int(nb), 0.0)
        for nb in graph.neighbors(observer)
    )
    predicted = damping_ratio(num_nodes, total_excess)
    print(f"eq. 17 at observer {observer}: sum(w-1) over neighbours = {total_excess:.3f}")
    print(f"predicted collusion damping N/(N+sum(w-1)) = {predicted:.4f}")
    print("(run `python -m repro.experiments eq17` for the measured-vs-predicted table)")


if __name__ == "__main__":
    main()
