#!/usr/bin/env python
"""Whitewashing and the initial-trust policy (Section 4.1.2).

The paper sets a newcomer's trust to 0 so that discarding a bad identity
buys nothing, and notes the value "can also be taken as higher than zero
and dynamically adjusted as per the level of whitewashing" — unstudied
there, implemented here.

The example compares three policies in the file-sharing world with a
population of serial whitewashers:

1. zero initial trust (the paper's choice);
2. naive fixed benefit-of-the-doubt (what whitewashers exploit);
3. the dynamic policy: benefit of the doubt that decays as identity
   churn rises.

Run:
    python examples/whitewashing_defence.py
"""

from repro.attacks.whitewashing import WhitewashingModel
from repro.trust.matrix import TrustMatrix
from repro.trust.newcomer_policy import DynamicNewcomerPolicy
from repro.utils.tables import format_table


def simulate_policy(newcomer_trust: float, dynamic: bool = False) -> float:
    """Average trust a serial whitewasher enjoys right after each reset.

    A 50-node network; node 0 misbehaves (earns trust 0.05 from its 10
    observers), then whitewashes every epoch for 8 epochs. Returns the
    mean post-reset trust its observers grant it — the whitewasher's
    payoff.
    """
    policy = DynamicNewcomerPolicy(max_initial_trust=newcomer_trust) if dynamic else None
    payoffs = []
    trust = TrustMatrix(50)
    for epoch in range(8):
        # The whitewasher misbehaves: observers rate it 0.05.
        for observer in range(1, 11):
            trust.set(observer, 0, 0.05)
        if policy is not None:
            policy.observe_join(now=float(epoch), population=50)
            grant = policy.initial_trust(now=float(epoch))
        else:
            grant = newcomer_trust
        model = WhitewashingModel(newcomer_trust=grant)
        model.whitewash(trust, 0)
        post_reset = sum(trust.get(observer, 0) for observer in range(1, 11)) / 10
        payoffs.append(post_reset)
    return sum(payoffs) / len(payoffs)


def main() -> None:
    zero = simulate_policy(0.0)
    naive = simulate_policy(0.3)
    dynamic = simulate_policy(0.3, dynamic=True)

    print(
        format_table(
            ["policy", "whitewasher's mean post-reset trust"],
            [
                ["zero initial trust (paper)", zero],
                ["fixed benefit of the doubt 0.3", naive],
                ["dynamic (decays with churn)", dynamic],
            ],
            title="What a serial whitewasher gains under each newcomer policy",
        )
    )
    print()
    print("zero and dynamic policies both deny the whitewasher its laundered")
    print("reputation; the dynamic policy additionally lets *honest* newcomers")
    print("bootstrap while the network is quiet — the trade-off the paper")
    print("points at but leaves unstudied.")
    assert zero <= dynamic <= naive


if __name__ == "__main__":
    main()
