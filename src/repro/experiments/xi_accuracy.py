"""Supplementary experiment — the ξ → achieved-accuracy mapping.

The paper's ξ bounds the *one-step* movement of a node's estimate, not
its distance to the fixpoint; how final accuracy tracks ξ depends on the
mixing rate (the same structure as Theorem 5.2's
``(log2 N)^2 + log2(1/ξ)`` bound). This experiment measures that mapping
directly — final max/mean relative estimation error vs ξ, with error
bars over seeds — and doubles as the evidence base for this
reproduction's stopping-rule notes (patience + warmup; see
EXPERIMENTS.md): with them, achieved error tracks ξ rather than
plateauing at percent level.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.analysis.sweeps import replicate
from repro.core.backend import GossipConfig
from repro.experiments.runner import ExperimentResult, Stopwatch
from repro.facade import aggregate
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.rng import as_generator

XIS: Sequence[float] = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6)


def run(
    *,
    num_nodes: int = 500,
    xis: Sequence[float] = XIS,
    repetitions: int = 5,
    seed: int = 37,
    m: int = 2,
    backend: str = "auto",
) -> ExperimentResult:
    """Measure achieved estimation error vs the stopping tolerance ξ."""
    root = as_generator(seed)
    graph = preferential_attachment_graph(num_nodes, m=m, rng=as_generator(int(root.integers(2**62))))
    values = as_generator(int(root.integers(2**62))).random(num_nodes)
    truth = float(values.mean())

    def make_measure(xi: float):
        def measure(run_seed: int):
            outcome = aggregate(
                graph, values, GossipConfig(xi=xi, rng=run_seed), backend=backend
            )
            errors = np.abs(outcome.estimates.reshape(-1) - truth) / abs(truth)
            return {
                "max_error": float(errors.max()),
                "mean_error": float(errors.mean()),
                "steps": float(outcome.steps),
            }

        return measure

    rows: List[list] = []
    with Stopwatch() as watch:
        for xi in xis:
            metrics = replicate(
                make_measure(xi), repetitions=repetitions, seed=int(root.integers(2**62))
            )
            rows.append(
                [
                    f"{xi:g}",
                    metrics["max_error"].format(6),
                    metrics["mean_error"].format(6),
                    metrics["steps"].format(1),
                ]
            )

    return ExperimentResult(
        experiment_id="xi_accuracy",
        title=f"ξ → achieved accuracy (N={num_nodes}, {repetitions} seeds per cell)",
        headers=["xi", "max rel error (±95%)", "mean rel error (±95%)", "steps (±95%)"],
        rows=rows,
        notes=[
            "achieved error must shrink monotonically with xi (it tracks, not equals, xi)",
            "steps grow ~log(1/xi) while error falls ~linearly in xi — the Theorem-5.2 trade",
            "with the paper-literal stopping rule (patience=1, no warmup) max error plateaus at percent level regardless of xi; see EXPERIMENTS.md",
        ],
        elapsed_seconds=watch.elapsed,
    )
