"""Experiment E8 — eq. 17's collusion-damping factor, measured vs predicted.

Eq. 17 predicts that, for an estimating node ``o`` whose direct
neighbours are honest, GCLR weighting shrinks the collusion-induced
estimation error by exactly

``N / (N + sum_i (w_oi - 1))``.

This experiment injects a group-collusion attack, computes the exact
(fixpoint) reputation shift ``dR_new`` at several observer nodes and the
unweighted shift ``dR_old``, and tabulates the measured ratio next to
the prediction. The two must agree to numerical precision for honest-
neighbourhood observers — this is an identity, not an approximation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.collusion_theory import damping_ratio
from repro.attacks.collusion import apply_collusion, group_colluders, select_colluders
from repro.baselines.gossip_trust import unweighted_global_estimate
from repro.core.vector_gclr import true_vector_gclr
from repro.core.weights import WeightParams, excess_weights
from repro.experiments.collusion_common import build_world
from repro.experiments.runner import ExperimentResult, Stopwatch
from repro.utils.rng import as_generator


def run(
    *,
    num_nodes: int = 300,
    fraction: float = 0.3,
    group_size: int = 5,
    num_observers: int = 8,
    seed: int = 29,
) -> ExperimentResult:
    """Measure the damping ratio at several honest-neighbourhood observers."""
    params = WeightParams()
    root = as_generator(seed)
    graph, trust = build_world(num_nodes, seed=int(root.integers(2**62)))
    colluders = select_colluders(num_nodes, fraction, rng=as_generator(int(root.integers(2**62))))
    attack = group_colluders(colluders, group_size)
    colluder_set = attack.colluders
    poisoned = apply_collusion(trust, attack)

    def neighbor_excess(node: int) -> float:
        """Sum of (w - 1) over *graph neighbours* — the eq.-6 denominator term.

        GCLR weights only ever apply to neighbours (non-neighbours have
        weight exactly 1), so eq. 17's ``sum_i (w_oi - 1)`` reduces to
        this neighbour-restricted sum.
        """
        excess = excess_weights(params, trust.row(node))
        return sum(excess.get(int(nb), 0.0) for nb in graph.neighbors(node))

    # Observers must be honest with all-honest neighbourhoods: eq. 17
    # assumes the neighbour feedback channel is not poisoned.
    eligible = [
        node
        for node in range(num_nodes)
        if node not in colluder_set
        and all(int(nb) not in colluder_set for nb in graph.neighbors(node))
        and neighbor_excess(node) > 0.0
    ]
    observers = eligible[:num_observers]

    with Stopwatch() as watch:
        # Honest targets only: a colluding target's own estimate shifts by
        # the praise term as well, which eq. 17 folds differently.
        targets = [t for t in range(num_nodes) if t not in colluder_set][:60]
        clean = true_vector_gclr(graph, trust, targets, params, "all")
        dirty = true_vector_gclr(graph, poisoned, targets, params, "all")
        clean_unweighted = unweighted_global_estimate(trust)[targets]
        dirty_unweighted = unweighted_global_estimate(poisoned)[targets]
        delta_old = dirty_unweighted - clean_unweighted

        rows: List[list] = []
        for observer in observers:
            delta_new = dirty[observer] - clean[observer]
            valid = np.abs(delta_old) > 1e-12
            measured = float(np.mean(delta_new[valid] / delta_old[valid])) if valid.any() else float("nan")
            total_excess = neighbor_excess(observer)
            predicted = damping_ratio(num_nodes, total_excess)
            rows.append(
                [
                    observer,
                    total_excess,
                    measured,
                    predicted,
                    abs(measured - predicted),
                ]
            )

    return ExperimentResult(
        experiment_id="eq17",
        title=f"Eq. 17 — collusion damping, measured vs predicted (N={num_nodes})",
        headers=["observer", "sum(w-1)", "measured ratio", "predicted N/(N+sum(w-1))", "|diff|"],
        rows=rows,
        notes=[
            f"attack: {attack.num_colluders} colluders ({fraction:.0%}) in groups of {group_size}",
            "measured and predicted ratios agree to numerical precision for honest-neighbourhood observers — eq. 17 is an identity in this regime",
        ],
        elapsed_seconds=watch.elapsed,
    )
