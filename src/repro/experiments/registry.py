"""Registry mapping experiment ids to their ``run`` callables."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    attack_sweeps,
    eq17,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
    table2,
    theorem52,
    tournament,
    xi_accuracy,
)
from repro.experiments.runner import ExperimentResult

ExperimentRunner = Callable[..., ExperimentResult]

#: Experiment id -> runner. Ids match DESIGN.md's experiment index,
#: plus the attack-robustness sweeps (attack_*) beyond the paper.
EXPERIMENTS: Dict[str, ExperimentRunner] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "theorem52": theorem52.run,
    "eq17": eq17.run,
    "xi_accuracy": xi_accuracy.run,
    "attack_slander": attack_sweeps.run_slander,
    "attack_sybil": attack_sweeps.run_sybil,
    "tournament": tournament.run,
}


def get_experiment(experiment_id: str) -> ExperimentRunner:
    """Look up an experiment runner; raise ``KeyError`` with the catalogue."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        available = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available}"
        ) from None
