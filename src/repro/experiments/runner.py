"""Shared experiment infrastructure.

Every experiment returns an :class:`ExperimentResult` — a titled table
plus free-form notes — so the CLI, the benchmarks and EXPERIMENTS.md all
render the same rows the paper reports.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.utils.tables import Cell, format_table

#: Environment variable that switches sweeps to the paper's full scale.
FULL_SCALE_ENV = "REPRO_FULL_SCALE"


def full_scale_enabled() -> bool:
    """Whether full-scale (50 000-node) sweeps were requested."""
    return os.environ.get(FULL_SCALE_ENV, "").strip() in {"1", "true", "yes"}


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    Attributes
    ----------
    experiment_id:
        Registry key ("table2", "fig3", ...).
    title:
        Human-readable title matching the paper artefact.
    headers:
        Column names.
    rows:
        Table body; floats are rendered at the paper's precision.
    notes:
        Extra context: parameters used, expected shape, caveats.
    elapsed_seconds:
        Wall-clock cost of the run.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]]
    notes: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def to_text(self, *, float_fmt: str = ".4f") -> str:
        """Render the result as the table + notes block."""
        parts = [format_table(self.headers, self.rows, float_fmt=float_fmt, title=self.title)]
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {note}" for note in self.notes)
        if self.elapsed_seconds:
            parts.append(f"  elapsed: {self.elapsed_seconds:.2f}s")
        return "\n".join(parts)


class Stopwatch:
    """Tiny context manager for elapsed-time accounting."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
