"""Experiment E4 — paper Figure 4.

*"Gossip step counts for N=10000 with different error bounds xi for
different packet loss probability."* Peer-to-peer overlays run above
TCP, so a push is only lost when its receiver has churned away; the
sender then re-pushes the pair to itself, conserving mass (Section 5.3).
The paper observes a *small* increase in steps as loss probability
rises — lost pushes slow mixing but never destroy mass, so convergence
degrades gracefully.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.backend import GossipConfig
from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled
from repro.facade import aggregate
from repro.network.churn import PacketLossModel
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.rng import as_generator

LOSS_PROBABILITIES: Sequence[float] = (0.0, 0.1, 0.2, 0.3)
XIS: Sequence[float] = (1e-2, 1e-3, 1e-4, 1e-5)
QUICK_N = 2000
FULL_N = 10_000


def run(
    *,
    num_nodes: Optional[int] = None,
    loss_probabilities: Sequence[float] = LOSS_PROBABILITIES,
    xis: Sequence[float] = XIS,
    seed: int = 13,
    m: int = 2,
    backend: str = "auto",
) -> ExperimentResult:
    """Regenerate Figure 4 (one row per loss probability, one column per xi)."""
    if num_nodes is None:
        num_nodes = FULL_N if full_scale_enabled() else QUICK_N
    root = as_generator(seed)
    graph_rng = as_generator(int(root.integers(2**62)))
    graph = preferential_attachment_graph(num_nodes, m=m, rng=graph_rng)
    values = graph_rng.random(num_nodes)

    rows: List[list] = []
    with Stopwatch() as watch:
        for loss in loss_probabilities:
            row: list = [f"p={loss:g}"]
            for xi in xis:
                loss_model = PacketLossModel(loss, rng=as_generator(int(root.integers(2**62))))
                outcome = aggregate(
                    graph,
                    values,
                    GossipConfig(
                        xi=xi,
                        loss_model=loss_model,
                        rng=as_generator(int(root.integers(2**62))),
                    ),
                    backend=backend,
                )
                row.append(outcome.steps)
            rows.append(row)

    return ExperimentResult(
        experiment_id="fig4",
        title=f"Figure 4 — gossip steps under packet loss (N={num_nodes})",
        headers=["loss"] + [f"xi={xi:g}" for xi in xis],
        rows=rows,
        notes=[
            "lost pushes are re-pushed to the sender (mass conserved), so step counts rise only mildly with loss probability",
            f"paper uses N=10000; quick scale runs N={QUICK_N} (REPRO_FULL_SCALE=1 for full)",
        ],
        elapsed_seconds=watch.elapsed,
    )
