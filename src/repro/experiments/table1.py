"""Experiment E1 — paper Table 1.

*"Aggregated value after every iteration at each node"* for the 10-node
example network of Figure 2. Every node starts with one direct
observation (the paper's ``itr=1`` row doubles as our initial values)
and gossip weight 1; the message-level engine then produces the
per-iteration trace, which must converge to the mean of the initial
values (0.4498) within a handful of iterations — the paper's run settles
around its initial-row mean by iteration 8.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.engine import MessageLevelGossip
from repro.experiments.runner import ExperimentResult, Stopwatch
from repro.network.topology_example import (
    EXAMPLE_INITIAL_VALUES,
    EXAMPLE_K_VALUES,
    example_network,
)
from repro.utils.rng import RngLike


def run(*, xi: float = 0.005, seed: RngLike = 2016, max_iterations: int = 30) -> ExperimentResult:
    """Regenerate Table 1.

    Parameters
    ----------
    xi:
        Convergence tolerance; the paper's run stops after 8 iterations,
        which a tolerance of a few 1e-3 reproduces.
    seed:
        Gossip randomness seed.
    max_iterations:
        Rows to print at most (the run usually stops well before).
    """
    graph = example_network()
    initial = np.asarray(EXAMPLE_INITIAL_VALUES, dtype=np.float64)
    with Stopwatch() as watch:
        engine = MessageLevelGossip(graph, rng=seed)
        outcome = engine.run(
            initial,
            np.ones(graph.num_nodes),
            xi=xi,
            max_steps=1000,
            track_history=True,
        )

    headers = ["itr"] + [f"node {i + 1}" for i in range(graph.num_nodes)]
    rows: List[list] = [
        ["degree"] + [int(d) for d in graph.degrees],
        ["k"] + [int(k) for k in EXAMPLE_K_VALUES],
        ["itr=0"] + [float(v) for v in initial],
    ]
    history = outcome.ratio_history or []
    for iteration, snapshot in enumerate(history[:max_iterations], start=1):
        rows.append([f"itr={iteration}"] + [float(v) for v in snapshot.reshape(-1)])

    target = float(initial.mean())
    final = outcome.estimates.reshape(-1)
    rows.append(["final"] + [float(v) for v in final])

    return ExperimentResult(
        experiment_id="table1",
        title="Table 1 — aggregated value after every iteration (Fig. 2 example network)",
        headers=headers,
        rows=rows,
        notes=[
            f"initial values = paper's itr=1 row; their mean {target:.4f} is the convergence target",
            f"converged in {outcome.steps} iterations (paper: 8) with xi={xi:g}",
            f"max |estimate - mean| at stop = {float(np.abs(final - target).max()):.4g}",
            "degree row and k row match the paper exactly (k=3 for the hub, 1 elsewhere)",
        ],
        elapsed_seconds=watch.elapsed,
    )
