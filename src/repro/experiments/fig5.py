"""Experiment E5 — paper Figure 5.

*"Average RMS error with different size colluding groups for different
percentage of colluding peers."* Colluders form groups of size ``G``,
praise group-mates (report 1) and badmouth everyone else (report 0);
the plot sweeps the colluding fraction for several ``G``.

Expected shape (paper): Differential Gossip Trust's RMS error stays
small even at high colluding fractions, and the group size makes only a
small difference. The unweighted comparator column shows what the same
attack does to a plain global average — the gap is eq. 17's damping.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.collusion_common import sweep_collusion
from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled

FRACTIONS: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
GROUP_SIZES: Sequence[int] = (2, 5, 10)
QUICK_N = 250
FULL_N = 1000


def run(
    *,
    num_nodes: Optional[int] = None,
    fractions: Sequence[float] = FRACTIONS,
    group_sizes: Sequence[int] = GROUP_SIZES,
    use_gossip: bool = True,
    seed: int = 17,
    backend: str = "auto",
) -> ExperimentResult:
    """Regenerate Figure 5 (rows: colluding fraction; column pair per G).

    ``backend`` names any registered gossip engine (message / dense /
    sparse / sharded); ``"auto"`` follows the size policy — the
    measurement itself runs through the family-agnostic
    :func:`repro.attacks.evaluate.attack_impact`.
    """
    if num_nodes is None:
        num_nodes = FULL_N if full_scale_enabled() else QUICK_N
    with Stopwatch() as watch:
        measurements = sweep_collusion(
            num_nodes,
            fractions,
            group_sizes,
            use_gossip=use_gossip,
            seed=seed,
            backend=backend,
        )

    by_key = {(m.group_size, m.fraction): m for m in measurements}
    rows: List[list] = []
    for fraction in fractions:
        row: list = [f"{fraction:.0%}"]
        for group_size in group_sizes:
            m = by_key[(group_size, fraction)]
            row.extend([m.rms_gclr, m.rms_unweighted])
        rows.append(row)

    headers = ["% colluders"]
    for group_size in group_sizes:
        headers.extend([f"G={group_size} DGT", f"G={group_size} unweighted"])

    return ExperimentResult(
        experiment_id="fig5",
        title=f"Figure 5 — average RMS error under group collusion (N={num_nodes})",
        headers=headers,
        rows=rows,
        notes=[
            "DGT columns (differential gossip trust, GCLR weights) must stay low and grow slowly with the colluding fraction",
            "group size G shifts the curves only slightly (paper's observation)",
            "unweighted columns show the same attack against a plain global average — the gap is eq. 17's damping",
            f"{'gossip' if use_gossip else 'exact fixpoint'} aggregation; identical seeds for clean/poisoned runs",
        ],
        elapsed_seconds=watch.elapsed,
    )
