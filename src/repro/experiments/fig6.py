"""Experiment E6 — paper Figure 6.

*"Average RMS error with individual peers for different percentage of
colluding peers."* The individual-collusion case is group size
``G = 1``: lone malicious peers cannot praise anyone (a group of one has
no group-mates to inflate) so their entire lever is badmouthing — they
report 0 about every other node. The paper finds the impact even
smaller than group collusion.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.collusion_common import sweep_collusion
from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled

FRACTIONS: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
QUICK_N = 250
FULL_N = 1000


def run(
    *,
    num_nodes: Optional[int] = None,
    fractions: Sequence[float] = FRACTIONS,
    use_gossip: bool = True,
    seed: int = 19,
    backend: str = "auto",
) -> ExperimentResult:
    """Regenerate Figure 6 (rows: colluding fraction; G fixed at 1).

    ``backend`` names any registered gossip engine (message / dense /
    sparse / sharded); ``"auto"`` follows the size policy — the
    measurement itself runs through the family-agnostic
    :func:`repro.attacks.evaluate.attack_impact`.
    """
    if num_nodes is None:
        num_nodes = FULL_N if full_scale_enabled() else QUICK_N
    with Stopwatch() as watch:
        measurements = sweep_collusion(
            num_nodes,
            fractions,
            group_sizes=(1,),
            use_gossip=use_gossip,
            seed=seed,
            backend=backend,
        )

    rows: List[list] = [
        [f"{m.fraction:.0%}", m.num_colluders, m.rms_gclr, m.rms_unweighted]
        for m in measurements
    ]

    return ExperimentResult(
        experiment_id="fig6",
        title=f"Figure 6 — average RMS error under individual collusion (N={num_nodes})",
        headers=["% colluders", "C", "DGT", "unweighted"],
        rows=rows,
        notes=[
            "G=1: badmouthing only — no praise channel, so errors sit below the group-collusion curves of Figure 5",
            "DGT stays near-flat across colluding fractions (paper's headline robustness claim)",
        ],
        elapsed_seconds=watch.elapsed,
    )
