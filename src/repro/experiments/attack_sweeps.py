"""Experiments A1/A2 — attack-robustness sweeps beyond the paper's figures.

The paper measures only collusion (Figures 5–6). These sweeps run the
same eq.-18 clean-vs-poisoned measurement for two families from the
wider adversary registry (:mod:`repro.attacks.models`): targeted
slandering/bad-mouthing (Absolute Trust's adversary, arXiv:1601.01419)
and sybil join floods. Both are fully seeded, so their small shapes are
pinned by golden fixtures (``tests/data/golden/``) exactly like
fig3/fig4/table2 — a refactor that shifts the attack numerics fails
review instead of drifting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.metrics import attack_amplification
from repro.attacks.evaluate import _CleanRunCache, attack_impact
from repro.attacks.models import SlanderingModel, SybilFloodModel
from repro.core.backend import GossipConfig
from repro.experiments.collusion_common import build_world
from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled
from repro.utils.rng import as_generator

QUICK_N = 250
FULL_N = 1000


def _world_and_targets(num_nodes: int, num_targets: int, seed: int) -> tuple:
    root = as_generator(seed)
    graph, trust = build_world(num_nodes, seed=int(root.integers(2**62)))
    target_rng = as_generator(int(root.integers(2**62)))
    count = min(num_targets, num_nodes)
    targets = sorted(
        int(t) for t in target_rng.choice(num_nodes, size=count, replace=False)
    )
    return root, graph, trust, targets


def run_slander(
    *,
    num_nodes: Optional[int] = None,
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    victim_fraction: float = 0.15,
    num_targets: int = 40,
    use_gossip: bool = True,
    xi: float = 1e-5,
    seed: int = 23,
    backend: str = "auto",
) -> ExperimentResult:
    """Sweep the slanderer fraction (rows) at a fixed victim set size.

    One gossip seed is drawn for the whole sweep, so the clean run is
    identical across rows (and computed once); the slanderer cast is
    re-drawn per row. Targets are shared, so the columns stay
    comparable.
    """
    if num_nodes is None:
        num_nodes = FULL_N if full_scale_enabled() else QUICK_N
    with Stopwatch() as watch:
        root, graph, trust, targets = _world_and_targets(num_nodes, num_targets, seed)
        gossip_config = GossipConfig(xi=xi, rng=int(root.integers(2**62)))
        clean_cache = _CleanRunCache()
        rows: List[list] = []
        for fraction in fractions:
            model = SlanderingModel(
                fraction=fraction,
                victim_fraction=victim_fraction,
                seed=int(root.integers(2**62)),
            )
            impact = attack_impact(
                graph,
                trust,
                model,
                targets=targets,
                use_gossip=use_gossip,
                config=gossip_config,
                backend=backend,
                _clean_cache=clean_cache,
            )
            slanderers, victims = model.cast(num_nodes)
            rows.append(
                [
                    f"{fraction:.0%}",
                    int(slanderers.size),
                    int(victims.size),
                    impact.rms_gclr,
                    impact.rms_unweighted,
                    attack_amplification(impact.rms_unweighted, impact.rms_gclr),
                ]
            )

    return ExperimentResult(
        experiment_id="attack_slander",
        title=f"Attack sweep — targeted slandering/bad-mouthing (N={num_nodes})",
        headers=[
            "% slanderers",
            "slanderers",
            "victims",
            "DGT rms",
            "unweighted rms",
            "amplification",
        ],
        rows=rows,
        notes=[
            f"victim set: {victim_fraction:.0%} of peers, zero-trust reports, "
            "slanderers keep their honest opinions otherwise",
            "amplification = unweighted rms / DGT rms (eq.-17 damping)",
            f"{'gossip' if use_gossip else 'exact fixpoint'} aggregation; "
            "identical seeds for clean/poisoned runs",
        ],
        elapsed_seconds=watch.elapsed,
    )


def run_sybil(
    *,
    num_nodes: Optional[int] = None,
    sybil_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
    attach_m: int = 2,
    num_targets: int = 40,
    use_gossip: bool = True,
    xi: float = 1e-5,
    seed: int = 29,
    backend: str = "auto",
) -> ExperimentResult:
    """Sweep the sybil swarm size (rows) relative to the honest population.

    Each row floods a fresh swarm into a copy of the same honest world.
    One gossip seed is drawn for the whole sweep, so the clean run is
    bit-identical across rows (and computed once) and the columns trace
    pure swarm-size response.
    """
    if num_nodes is None:
        num_nodes = FULL_N if full_scale_enabled() else QUICK_N
    with Stopwatch() as watch:
        root, graph, trust, targets = _world_and_targets(num_nodes, num_targets, seed)
        gossip_config = GossipConfig(xi=xi, rng=int(root.integers(2**62)))
        clean_cache = _CleanRunCache()
        rows: List[list] = []
        for fraction in sybil_fractions:
            model = SybilFloodModel(
                sybil_fraction=fraction,
                attach_m=attach_m,
                seed=int(root.integers(2**62)),
            )
            impact = attack_impact(
                graph,
                trust,
                model,
                targets=targets,
                use_gossip=use_gossip,
                config=gossip_config,
                backend=backend,
                _clean_cache=clean_cache,
            )
            rows.append(
                [
                    f"{fraction:.0%}",
                    model.sybil_count(num_nodes),
                    impact.num_nodes_dirty,
                    impact.rms_gclr,
                    impact.rms_unweighted,
                ]
            )

    return ExperimentResult(
        experiment_id="attack_sybil",
        title=f"Attack sweep — sybil join flood (N={num_nodes})",
        headers=["sybils/N", "swarm", "dirty N", "DGT rms", "unweighted rms"],
        rows=rows,
        notes=[
            f"swarm joins by preferential attachment (m={attach_m}), praises its "
            "operator, badmouths sampled honest peers",
            "honest peers hold no opinion about the strangers — the paper's "
            "zero-initial-trust defence",
            f"{'gossip' if use_gossip else 'exact fixpoint'} aggregation; "
            "identical seeds for clean/poisoned runs",
        ],
        elapsed_seconds=watch.elapsed,
    )
