"""Experiment E2 — paper Table 2.

*"Number of messages per node per step transmitted due to gossiping"*
over the (N, xi) grid. The paper reports values between ~1.11 and ~1.21
that decrease slightly with larger N and with tighter xi — per-node
overhead is dominated by the differential ratio ``k_i``, whose
population mean shrinks as the PA graph grows, and longer runs amortise
the all-nodes-active early steps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.backend import GossipConfig
from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled
from repro.facade import aggregate
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.rng import as_generator

QUICK_SIZES: Sequence[int] = (100, 500, 1000)
FULL_SIZES: Sequence[int] = (100, 500, 1000, 10_000, 50_000)
XIS: Sequence[float] = (1e-2, 1e-3, 1e-4, 1e-5)


def run(
    *,
    sizes: Optional[Sequence[int]] = None,
    xis: Sequence[float] = XIS,
    seed: int = 7,
    m: int = 2,
    backend: str = "auto",
) -> ExperimentResult:
    """Regenerate Table 2 over the requested grid.

    Parameters
    ----------
    sizes:
        Network sizes N (default: quick grid, or the paper's full grid
        when ``REPRO_FULL_SCALE=1``).
    xis:
        Error tolerances (paper: 1e-2 .. 1e-5).
    seed:
        Base seed; each (N, xi) cell derives its own child stream.
    m:
        PA attachment parameter.
    backend:
        Registered gossip backend the rounds run on (or ``"auto"``).
    """
    if sizes is None:
        sizes = FULL_SIZES if full_scale_enabled() else QUICK_SIZES
    root = as_generator(seed)

    rows: List[list] = []
    with Stopwatch() as watch:
        for n in sizes:
            graph_rng = as_generator(int(root.integers(2**62)))
            graph = preferential_attachment_graph(n, m=m, rng=graph_rng)
            # Uniform-gossip setting (Theorem 5.2): every node holds one
            # observation and weight 1; messages are counted by the engine.
            values = graph_rng.random(n)
            row: list = [n]
            for xi in xis:
                outcome = aggregate(
                    graph,
                    values,
                    GossipConfig(xi=xi, rng=as_generator(int(root.integers(2**62)))),
                    backend=backend,
                )
                row.append(outcome.messages_per_node_per_step)
            rows.append(row)

    headers = ["N"] + [f"xi={xi:g}" for xi in xis]
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2 — messages per node per step (differential gossip, PA graphs)",
        headers=headers,
        rows=rows,
        notes=[
            "paper values: 1.112..1.212, decreasing with N and with smaller xi",
            "normal push gossip would be exactly 1.0 per node per step; the excess is the hubs' k_i > 1",
            f"m={m}; quick grid by default, REPRO_FULL_SCALE=1 adds N=10000, 50000",
        ],
        elapsed_seconds=watch.elapsed,
    )
