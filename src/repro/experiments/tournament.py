"""Tournament: every algorithm × scenario slice × attack family leaderboard.

The paper's headline claim is comparative; this experiment makes the
comparison a single committed artifact. Every registered algorithm
(:mod:`repro.algorithms`) runs on the same scenario-derived worlds and
faces the same seeded adversaries, producing one row per (algorithm ×
scenario × backend) cell with the unified metric columns — accuracy
(RMS vs the algorithm's own exact aggregate), rounds-to-converge, total
messages (per-adapter counting rule), wall-clock, and per-attack-family
eq.-18 shift + eq.-17 amplification. Backend-routed algorithms
(``uses_backend``) additionally sweep the requested gossip backends;
exact solvers run once per world.

Seeds derive statelessly from ``(seed, scenario, algorithm/family)``
crc32 mixes, so any subset rerun reproduces the committed cells
bit-for-bit, and all algorithms face byte-identical adversaries per
(scenario, family) pair. The full leaderboard is written to
``BENCH_tournament.json`` (override with ``REPRO_TOURNAMENT_OUT``)
stamped with :func:`repro.utils.hardware.host_metadata`.

Run it::

    python -m repro.experiments tournament --small
    PYTHONPATH=src python benchmarks/bench_tournament.py --small
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import zlib
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled

#: Where the experiment entry point writes the leaderboard artifact.
OUTPUT_ENV = "REPRO_TOURNAMENT_OUT"
DEFAULT_OUTPUT = "BENCH_tournament.json"

#: The seven built-in algorithms, in catalogue order.
DEFAULT_ALGORITHMS: Tuple[str, ...] = (
    "diff-gossip",
    "push-sum",
    "push-pull",
    "gossip-trust",
    "eigentrust",
    "absolute-trust",
    "flooding",
)

#: Scenario slices providing the tournament worlds (topology +
#: observation pattern + scale); the algorithms replace the scenarios'
#: own execution.
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "static-powerlaw",
    "collusion-under-churn",
    "slander-under-churn",
)

#: Adversaries every algorithm faces (byte-identical per scenario).
DEFAULT_ATTACKS: Dict[str, dict] = {
    "collusion": dict(fraction=0.3, group_size=5),
    "slandering": dict(fraction=0.25, victim_fraction=0.15),
}

#: Backend sweep for ``uses_backend`` algorithms.
DEFAULT_BACKENDS: Tuple[str, ...] = ("dense", "sparse")

#: Full-scale worlds are capped here — the tournament measures relative
#: algorithm behaviour, not scale ceilings (BENCH_sharded.json does that).
FULL_SCALE_CAP = 2000


def _subseed(*parts) -> np.random.Generator:
    """Stateless per-cell generator from (seed, names...) — subset reruns
    reproduce any committed cell bit-for-bit."""
    entropy = [parts[0]] + [zlib.crc32(str(p).encode()) for p in parts[1:]]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def _scenario_world(name: str, *, seed: int, small: bool):
    """(graph, trust, n) for one scenario slice, fully seeded."""
    from repro.scenarios import get_scenario  # imports the seeded catalogue
    from repro.trust.matrix import complete_trust_matrix, random_trust_matrix
    from repro.utils.rng import as_generator

    scenario = get_scenario(name)
    topology = scenario.topology
    if not small and topology.num_nodes > FULL_SCALE_CAP:
        topology = dataclasses.replace(topology, num_nodes=FULL_SCALE_CAP)
    root = _subseed(seed, "world", name)
    graph = topology.build(as_generator(int(root.integers(2**62))), small=small)
    n = graph.num_nodes
    if scenario.workload.observations == "complete":
        trust = complete_trust_matrix(n, rng=as_generator(int(root.integers(2**62))))
    else:
        trust = random_trust_matrix(graph, rng=as_generator(int(root.integers(2**62))))
    return graph, trust, n


def build_leaderboard(
    *,
    seed: int = 2016,
    small: bool = True,
    xi: float = 1e-4,
    num_targets: int = 20,
    algorithms: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    attacks: Optional[Dict[str, dict]] = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    progress: bool = False,
) -> Dict[str, object]:
    """Run the full cross product; return the JSON-ready record.

    ``cells`` holds one entry per (scenario × algorithm × backend) with
    the unified columns plus per-attack-family robustness; the
    ``leaderboard`` aggregates cells per (algorithm × backend) across
    scenarios, ranked by mean eq.-17 amplification (higher = the
    algorithm damps attacks more relative to the unweighted global
    estimate), tie-broken by mean accuracy.
    """
    from repro.algorithms import get_algorithm, resolve_algorithm_name
    from repro.analysis.metrics import attack_amplification
    from repro.attacks.evaluate import _CleanRunCache, attack_impact
    from repro.attacks.models import make_attack
    from repro.core.backend import GossipConfig

    algorithm_names = [
        resolve_algorithm_name(a) for a in (algorithms or DEFAULT_ALGORITHMS)
    ]
    scenario_names = list(scenarios or DEFAULT_SCENARIOS)
    attack_params = dict(attacks if attacks is not None else DEFAULT_ATTACKS)
    backend_names = list(backends)

    cells = []
    scenario_meta: Dict[str, dict] = {}
    for scenario_name in scenario_names:
        graph, trust, n = _scenario_world(scenario_name, seed=seed, small=small)
        target_rng = _subseed(seed, "targets", scenario_name)
        count = min(num_targets, n)
        targets = sorted(
            int(t) for t in target_rng.choice(n, size=count, replace=False)
        )
        scenario_meta[scenario_name] = {
            "num_nodes": n,
            "num_edges": graph.num_edges,
            "num_targets": count,
        }
        # One adversary per (scenario, family), shared by every
        # algorithm — the whole field faces the same poisoned matrix.
        models = {
            family: make_attack(
                family,
                seed=int(_subseed(seed, "attack", scenario_name, family).integers(2**62)),
                **params,
            )
            for family, params in attack_params.items()
        }
        for algorithm_name in algorithm_names:
            algorithm = get_algorithm(algorithm_name)
            gossip_seed = int(
                _subseed(seed, "gossip", scenario_name, algorithm_name).integers(2**62)
            )
            config = GossipConfig(xi=xi, rng=gossip_seed)
            cell_backends = backend_names if algorithm.uses_backend else [None]
            for backend in cell_backends:
                prepared = algorithm.prepare(
                    graph, trust, config, targets=targets,
                    backend=backend if backend is not None else "auto",
                )
                clean = prepared.run()  # rng=None replays config's seed
                attack_cells: Dict[str, dict] = {}
                for family, model in models.items():
                    # The timed clean run doubles as the attack
                    # engine's cached clean side: run(rng=None) with
                    # config.rng == derived seed is the identical run.
                    cache = _CleanRunCache()
                    cache["clean_algo"] = clean
                    if backend is not None:
                        cache["resolved"] = backend
                    impact = attack_impact(
                        graph, trust, model,
                        targets=targets,
                        config=config,
                        backend=backend if backend is not None else "auto",
                        algorithm=algorithm,
                        _clean_cache=cache,
                    )
                    attack_cells[family] = {
                        "shift_rms": round(impact.rms_gclr, 8),
                        "shift_unweighted": round(impact.rms_unweighted, 8),
                        "amplification": round(
                            attack_amplification(impact.rms_unweighted, impact.rms_gclr),
                            4,
                        ),
                    }
                cells.append(
                    {
                        "scenario": scenario_name,
                        "algorithm": algorithm_name,
                        "backend": backend if backend is not None else "n/a",
                        "accuracy_rms": round(clean.rms_error, 10),
                        "accuracy_max_abs": round(clean.max_abs_error, 10),
                        "rounds": clean.rounds,
                        "messages": clean.messages,
                        "messages_per_node": round(clean.messages_per_node, 4),
                        "wall_clock_seconds": round(clean.wall_clock_seconds, 4),
                        "converged": bool(clean.converged),
                        "attacks": attack_cells,
                    }
                )
                if progress:
                    print(
                        f"  {scenario_name:22s} {algorithm_name:15s} "
                        f"{backend or 'n/a':8s} rounds={clean.rounds:5d} "
                        f"msgs={clean.messages:9d} rms={clean.rms_error:.2e} "
                        f"({clean.wall_clock_seconds:.2f}s)"
                    )

    leaderboard = []
    for algorithm_name in algorithm_names:
        algorithm = get_algorithm(algorithm_name)
        for backend in backend_names if algorithm.uses_backend else ["n/a"]:
            rows = [
                c for c in cells
                if c["algorithm"] == algorithm_name and c["backend"] == backend
            ]
            if not rows:
                continue
            amplifications = [
                a["amplification"] for c in rows for a in c["attacks"].values()
            ]
            leaderboard.append(
                {
                    "algorithm": algorithm_name,
                    "backend": backend,
                    "mean_accuracy_rms": round(
                        float(np.mean([c["accuracy_rms"] for c in rows])), 10
                    ),
                    "mean_rounds": round(float(np.mean([c["rounds"] for c in rows])), 2),
                    "mean_messages_per_node": round(
                        float(np.mean([c["messages_per_node"] for c in rows])), 2
                    ),
                    "mean_amplification": round(float(np.mean(amplifications)), 4),
                    "total_wall_clock_seconds": round(
                        float(np.sum([c["wall_clock_seconds"] for c in rows])), 4
                    ),
                    "all_converged": all(c["converged"] for c in rows),
                }
            )
    leaderboard.sort(
        key=lambda row: (-row["mean_amplification"], row["mean_accuracy_rms"])
    )

    return {
        "benchmark": "tournament",
        "seed": seed,
        "small": small,
        "xi": xi,
        "num_targets": num_targets,
        "full_scale_cap": FULL_SCALE_CAP,
        "algorithms": algorithm_names,
        "backends": backend_names,
        "scenarios": scenario_meta,
        "attack_params": attack_params,
        "cells": cells,
        "leaderboard": leaderboard,
    }


def strip_timing(record: Dict[str, object]) -> Dict[str, object]:
    """A deep copy with every wall-clock field removed.

    Everything else in the record is bit-deterministic from ``seed``;
    comparing two stripped records is the determinism check the CI
    smoke leg runs.
    """
    clean = json.loads(json.dumps(record))
    for cell in clean.get("cells", []):
        cell.pop("wall_clock_seconds", None)
    for row in clean.get("leaderboard", []):
        row.pop("total_wall_clock_seconds", None)
    for key in ("host_cpus", "parallelism_expressible", "elapsed_seconds"):
        clean.pop(key, None)
    return clean


def write_record(record: Dict[str, object], path: str) -> None:
    """Commit-format JSON: sorted keys, indent 2, trailing newline."""
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run(seed: Optional[int] = None) -> ExperimentResult:
    """Experiment entry point: leaderboard table + committed artifact."""
    from repro.utils.hardware import host_metadata

    actual_seed = 2016 if seed is None else seed
    small = not full_scale_enabled()
    with Stopwatch() as watch:
        record = build_leaderboard(seed=actual_seed, small=small, progress=False)
    record.update(host_metadata())
    record["elapsed_seconds"] = round(watch.elapsed, 2)
    out = os.environ.get(OUTPUT_ENV, "").strip() or DEFAULT_OUTPUT
    write_record(record, out)

    headers = [
        "algorithm", "backend", "mean rms", "mean rounds",
        "msgs/node", "amplification", "converged",
    ]
    rows = [
        [
            row["algorithm"],
            row["backend"],
            row["mean_accuracy_rms"],
            row["mean_rounds"],
            row["mean_messages_per_node"],
            row["mean_amplification"],
            "yes" if row["all_converged"] else "no",
        ]
        for row in record["leaderboard"]
    ]
    notes = [
        f"{len(record['cells'])} cells: "
        f"{len(record['algorithms'])} algorithms x {len(record['scenarios'])} "
        f"scenario slices x {len(record['attack_params'])} attack families "
        f"(+ backend sweep for backend-routed algorithms)",
        "accuracy is measured against each algorithm's own exact aggregate "
        "(adapters document the reference and the message counting rule)",
        "amplification is eq. 17's unweighted/algorithm shift ratio: higher "
        "= the algorithm damps the attack more",
        f"leaderboard written to {out}",
    ]
    return ExperimentResult(
        experiment_id="tournament",
        title=f"Tournament leaderboard ({'small' if small else 'full'}, seed {actual_seed})",
        headers=headers,
        rows=rows,
        notes=notes,
        elapsed_seconds=watch.elapsed,
    )
