"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import FULL_SCALE_ENV


def main(argv=None) -> int:
    """Run one experiment (or ``list``/``all``) and print its table."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
        epilog=(
            "Docs: docs/architecture.md (module-to-paper-section map), "
            "docs/benchmarks.md (BENCH_*.json artifact reference), "
            "docs/service.md (the serving layer)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'list' to enumerate, or 'all' to run everything",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the experiment seed")
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--full",
        action="store_true",
        help=f"full-scale sweeps (equivalent to {FULL_SCALE_ENV}=1); N up to 50000",
    )
    scale.add_argument(
        "--small",
        action="store_true",
        help="force CI-smoke scale even if the environment requests full scale "
        f"(equivalent to {FULL_SCALE_ENV}=0)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="fan experiments out over N worker processes (0 = all CPUs); "
        "results are identical to a serial run",
    )
    args = parser.parse_args(argv)
    if args.parallel < 0:
        parser.error("--parallel must be >= 0")

    if args.full:
        os.environ[FULL_SCALE_ENV] = "1"
    elif args.small:
        os.environ[FULL_SCALE_ENV] = "0"

    if args.experiment == "list":
        for experiment_id in sorted(EXPERIMENTS):
            doc = sys.modules[EXPERIMENTS[experiment_id].__module__].__doc__ or ""
            first_line = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{experiment_id:12s} {first_line}")
        return 0

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for experiment_id in ids:
            get_experiment(experiment_id)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2

    from repro.experiments.parallel import iter_experiments

    # iter_experiments streams for any process count (processes=1 runs
    # serially in-process): each table prints the moment its experiment
    # finishes, so a multi-hour --full sweep keeps its completed output
    # if a later experiment fails.
    processes = None if args.parallel == 0 else args.parallel
    for result in iter_experiments(ids, processes=processes, seed=args.seed):
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
