"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import FULL_SCALE_ENV


def main(argv=None) -> int:
    """Run one experiment (or ``list``/``all``) and print its table."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'list' to enumerate, or 'all' to run everything",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the experiment seed")
    parser.add_argument(
        "--full",
        action="store_true",
        help=f"full-scale sweeps (equivalent to {FULL_SCALE_ENV}=1); N up to 50000",
    )
    args = parser.parse_args(argv)

    if args.full:
        os.environ[FULL_SCALE_ENV] = "1"

    if args.experiment == "list":
        for experiment_id in sorted(EXPERIMENTS):
            doc = sys.modules[EXPERIMENTS[experiment_id].__module__].__doc__ or ""
            first_line = doc.strip().splitlines()[0] if doc.strip() else ""
            print(f"{experiment_id:12s} {first_line}")
        return 0

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        try:
            runner = get_experiment(experiment_id)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        kwargs = {}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = runner(**kwargs)
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
