"""Experiment E3 — paper Figure 3.

*"Gossip step counts with different number of nodes (N) and different
error bounds xi"* — the convergence-speed headline. For each network
size and tolerance we run one full differential-gossip round and record
the steps until every node stopped, alongside the normal-push (k = 1)
baseline and the ``(log2 N)^2 + log2(1/xi)`` bound shape of Theorem 5.2.

Expected shape: steps grow polylogarithmically in N (nowhere near
linear); tighter xi adds an additive ``log2(1/xi)``-ish increment;
differential push needs no more steps than normal push while its
*total* message cost stays competitive (Table 2 territory — here we also
report total messages so the crossover is visible: for N >= 1000 the
faster convergence more than pays for the hubs' extra pushes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.theory import convergence_steps_bound
from repro.core.backend import GossipConfig
from repro.experiments.runner import ExperimentResult, Stopwatch, full_scale_enabled
from repro.facade import aggregate
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.rng import as_generator

QUICK_SIZES: Sequence[int] = (100, 500, 1000, 2000)
FULL_SIZES: Sequence[int] = (100, 500, 1000, 10_000, 50_000)
XIS: Sequence[float] = (1e-2, 1e-3, 1e-4, 1e-5)


def run(
    *,
    sizes: Optional[Sequence[int]] = None,
    xis: Sequence[float] = XIS,
    seed: int = 11,
    m: int = 2,
    backend: str = "auto",
) -> ExperimentResult:
    """Regenerate Figure 3 as a table (one row per (N, xi) pair).

    ``backend`` names any registered gossip backend (or ``"auto"``);
    both the differential run and the normal-push baseline go through
    the :func:`repro.aggregate` facade.
    """
    if sizes is None:
        sizes = FULL_SIZES if full_scale_enabled() else QUICK_SIZES
    root = as_generator(seed)

    rows: List[list] = []
    with Stopwatch() as watch:
        for n in sizes:
            graph_rng = as_generator(int(root.integers(2**62)))
            graph = preferential_attachment_graph(n, m=m, rng=graph_rng)
            values = graph_rng.random(n)
            for xi in xis:
                diff = aggregate(
                    graph,
                    values,
                    GossipConfig(xi=xi, rng=as_generator(int(root.integers(2**62)))),
                    backend=backend,
                )
                push = aggregate(
                    graph,
                    values,
                    GossipConfig(xi=xi, k=1, rng=as_generator(int(root.integers(2**62)))),
                    backend=backend,
                )
                rows.append(
                    [
                        n,
                        f"{xi:g}",
                        diff.steps,
                        push.steps,
                        diff.push_messages,
                        push.push_messages,
                        convergence_steps_bound(n, xi),
                    ]
                )

    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3 — gossip steps to convergence vs N and xi",
        headers=[
            "N",
            "xi",
            "steps (differential)",
            "steps (normal push)",
            "msgs (differential)",
            "msgs (normal push)",
            "(log2 N)^2 + log2(1/xi)",
        ],
        rows=rows,
        notes=[
            "steps must grow ~polylog(N), far below linear (paper Fig. 3)",
            "differential converges in no more steps than normal push; for larger N its total messages undercut normal push despite k_i > 1 per step",
            f"m={m}; REPRO_FULL_SCALE=1 extends to N=50000",
        ],
        elapsed_seconds=watch.elapsed,
    )
