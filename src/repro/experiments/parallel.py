"""Parallel sweep execution over a multiprocessing pool.

Every figure/table experiment is a sweep: the same measurement repeated
over a grid of points (network sizes, collusion fractions, loss rates)
that never communicate — embarrassingly parallel work the serial
runner executes one point at a time. :func:`run_sweep` fans those
points out over worker processes while keeping results *byte-identical*
to a serial run:

- each point gets its own :class:`numpy.random.SeedSequence`, spawned
  from the master seed by index
  (:func:`repro.utils.rng.spawn_seed_sequences`), so a point's random
  stream never depends on which worker runs it or in what order;
- results are returned in point order regardless of completion order.

:func:`run_experiments` applies the same machinery one level up — whole
registry experiments as the unit of work — and is what
``python -m repro.experiments all --parallel N`` uses.

Workers must be module-level callables (the pool pickles them by
qualified name). Worker processes inherit ``REPRO_FULL_SCALE`` and the
rest of the environment from the parent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import spawn_seed_sequences

#: A sweep worker: ``worker(point, seed_sequence) -> result``.
SweepWorker = Callable[[Any, np.random.SeedSequence], Any]


def default_processes() -> int:
    """Worker count used when callers pass ``processes=None``.

    Uses the CPUs actually *available* to this process (cgroup quota /
    affinity mask) where the platform exposes that, falling back to the
    raw CPU count — a 2-core container slice on a 64-core host gets 2
    workers, not 64.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        available = os.cpu_count() or 1
    return max(1, available)


def _call_worker(job: Tuple[SweepWorker, Any, np.random.SeedSequence]) -> Any:
    """Top-level pool target (must be picklable by qualified name)."""
    worker, point, seed = job
    return worker(point, seed)


def _resolve_context(mp_context: Optional[str]):
    """Optional start-method name -> multiprocessing context (or None)."""
    if mp_context is None:
        return None
    import multiprocessing

    return multiprocessing.get_context(mp_context)


def run_sweep(
    worker: SweepWorker,
    points: Sequence[Any],
    *,
    master_seed: "int | np.random.SeedSequence | None" = 0,
    processes: Optional[int] = 1,
    mp_context: Optional[str] = None,
) -> List[Any]:
    """Map ``worker`` over ``points`` with per-point seeded RNG streams.

    Parameters
    ----------
    worker:
        Module-level callable ``worker(point, seed_sequence)``. Build a
        generator inside the worker with
        ``numpy.random.default_rng(seed_sequence)``.
    points:
        Sweep grid; any picklable values.
    master_seed:
        Root seed; child ``i``'s stream depends only on this and ``i``.
    processes:
        Worker processes. ``1`` (the default) runs serially in-process;
        ``None`` uses every CPU. Any value yields identical results.
    mp_context:
        Optional :func:`multiprocessing.get_context` method name
        (``"fork"``, ``"spawn"``, ...); ``None`` uses the platform
        default.

    Returns
    -------
    list
        One result per point, in point order.

    Examples
    --------
    >>> def double(point, seed):
    ...     return point * 2
    >>> run_sweep(double, [1, 2, 3], master_seed=0)
    [2, 4, 6]
    """
    points = list(points)
    seeds = spawn_seed_sequences(master_seed, len(points))
    jobs = [(worker, point, seed) for point, seed in zip(points, seeds)]
    if processes is None:
        processes = default_processes()
    if processes < 1:
        raise ValueError(f"processes must be >= 1 (or None), got {processes}")
    if processes == 1 or len(jobs) <= 1:
        return [_call_worker(job) for job in jobs]
    pool = ProcessPoolExecutor(
        max_workers=min(processes, len(jobs)), mp_context=_resolve_context(mp_context)
    )
    try:
        futures = [pool.submit(_call_worker, job) for job in jobs]
        results = [future.result() for future in futures]
    except BaseException:
        # First failure: drop queued points instead of finishing the
        # whole sweep before the exception can surface.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


def _run_registry_experiment(job: Tuple[str, Dict[str, Any]]) -> Any:
    """Pool target for :func:`run_experiments` (registry lookup in-worker)."""
    from repro.experiments.registry import get_experiment

    experiment_id, kwargs = job
    return get_experiment(experiment_id)(**kwargs)


def iter_experiments(
    experiment_ids: Sequence[str],
    *,
    processes: Optional[int] = 1,
    seed: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> Iterator[Any]:
    """Yield registry experiment results in input order as they complete.

    Streaming matters for long sweeps: with ``--full``, nine finished
    multi-hour experiments must not be discarded because a tenth raised.
    Consumers that print as they iterate keep every completed result;
    the exception from a failed experiment surfaces at its position.

    Parameters
    ----------
    experiment_ids:
        Registry keys (see ``repro.experiments.registry.EXPERIMENTS``).
    processes:
        Worker processes; ``1`` runs serially, ``None`` uses every
        available CPU.
    seed:
        Optional seed override forwarded to every experiment.
    mp_context:
        Optional multiprocessing start-method name.

    Yields
    ------
    repro.experiments.runner.ExperimentResult
        One per id, in input order.
    """
    from repro.experiments.registry import get_experiment

    for experiment_id in experiment_ids:
        get_experiment(experiment_id)  # fail fast on unknown ids, before forking
    kwargs: Dict[str, Any] = {} if seed is None else {"seed": seed}
    jobs = [(experiment_id, kwargs) for experiment_id in experiment_ids]
    if processes is None:
        processes = default_processes()
    if processes < 1:
        raise ValueError(f"processes must be >= 1 (or None), got {processes}")
    if processes == 1 or len(jobs) <= 1:
        for job in jobs:
            yield _run_registry_experiment(job)
        return
    pool = ProcessPoolExecutor(
        max_workers=min(processes, len(jobs)), mp_context=_resolve_context(mp_context)
    )
    try:
        futures = [pool.submit(_run_registry_experiment, job) for job in jobs]
        for future in futures:
            yield future.result()
    except BaseException:
        # A failed experiment (or an abandoned consumer) must not sit
        # through hours of queued sweeps: drop everything not yet
        # started and surface immediately. Jobs already running in
        # workers finish on their own.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)


def run_experiments(
    experiment_ids: Sequence[str],
    *,
    processes: Optional[int] = 1,
    seed: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> List[Any]:
    """Like :func:`iter_experiments`, but collected into a list."""
    return list(
        iter_experiments(experiment_ids, processes=processes, seed=seed, mp_context=mp_context)
    )
