"""Experiment E7 — Theorem 5.2 / appendix potential-decay check.

Not a numbered figure, but the load-bearing claim behind Figure 3's
shape: the appendix proves the contribution-spread potential obeys
``E[psi_{n+1}] <= psi_n / (p+1) + 1/(4 (p+1)^2)``, i.e. decays
geometrically to a small floor. This experiment measures ``psi_n`` on a
real PA graph — for the differential rule and for the plain-push (p=1)
worst case the proof reduces to — and tabulates it against the analytic
bound sequence. Expected shape: measured potential sits at or below the
p=1 bound and the differential rule decays at least as fast.
"""

from __future__ import annotations

from typing import List

from repro.analysis.potential import measure_potential_trajectory
from repro.analysis.theory import potential_bound_sequence
from repro.core.differential import fixed_push_counts
from repro.experiments.runner import ExperimentResult, Stopwatch
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.utils.rng import as_generator


def run(*, num_nodes: int = 128, steps: int = 24, seed: int = 23, m: int = 2) -> ExperimentResult:
    """Measure potential decay vs the analytic bound.

    Parameters
    ----------
    num_nodes:
        Kept moderate — the instrument tracks the full (N, N)
        contribution matrix.
    steps:
        Gossip steps to observe.
    seed, m:
        World controls.
    """
    root = as_generator(seed)
    graph = preferential_attachment_graph(num_nodes, m=m, rng=as_generator(int(root.integers(2**62))))
    with Stopwatch() as watch:
        differential = measure_potential_trajectory(
            graph, steps, rng=as_generator(int(root.integers(2**62)))
        )
        plain = measure_potential_trajectory(
            graph,
            steps,
            push_counts=fixed_push_counts(graph, 1),
            rng=as_generator(int(root.integers(2**62))),
        )
    bounds = potential_bound_sequence(num_nodes, steps, p=1)

    rows: List[list] = [
        [n, differential.psi[n], plain.psi[n], bounds[n]]
        for n in range(steps + 1)
    ]

    return ExperimentResult(
        experiment_id="theorem52",
        title=f"Theorem 5.2 — potential decay on a PA graph (N={num_nodes})",
        headers=["step", "psi (differential)", "psi (plain push)", "bound (p=1)"],
        rows=rows,
        notes=[
            "psi_0 = N - 1 exactly (eq. 28)",
            "both measured trajectories must decay geometrically; the p=1 recurrence bound dominates plain push in expectation",
            f"mass audit: weight sum = {differential.weight_sum:.6f} (must equal N = {num_nodes})",
        ],
        elapsed_seconds=watch.elapsed,
    )
