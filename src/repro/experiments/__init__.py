"""Experiment harness: regenerate every table and figure of the paper.

Each module owns one artefact and exposes ``run(...) -> ExperimentResult``:

==========  ===================================================
module      paper artefact
==========  ===================================================
table1      Table 1 — per-iteration values on the Fig. 2 network
table2      Table 2 — messages/node/step vs N and xi
fig3        Figure 3 — gossip steps vs N per xi (vs normal push)
fig4        Figure 4 — gossip steps vs xi under packet loss
fig5        Figure 5 — RMS error vs %colluders, group collusion
fig6        Figure 6 — RMS error vs %colluders, individual
theorem52   Theorem 5.2 — potential decay vs analytic bound
eq17        Eq. 17 — measured vs predicted collusion damping
==========  ===================================================

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments table2
    python -m repro.experiments fig3 --full --seed 7

``--full`` (or ``REPRO_FULL_SCALE=1``) enables the paper's full 50 000
node sweeps; the default "quick" scale preserves every qualitative shape
at laptop-friendly sizes.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import ExperimentResult, full_scale_enabled

__all__ = ["EXPERIMENTS", "get_experiment", "ExperimentResult", "full_scale_enabled"]
