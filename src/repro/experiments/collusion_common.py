"""Shared machinery for the collusion experiments (Figures 5–6, eq. 17).

One measurement = two aggregation runs over the *same* topology and the
same gossip randomness — once with the honest trust matrix, once with
the colluder-poisoned copy — compared by the paper's eq.-18 average RMS
error. Sharing the seed between the two runs cancels gossip noise, so
the measured error isolates the collusion effect, which is what
Figures 5 and 6 plot.

The experiments use the ``"all"`` denominator convention (divide by
``N``): that is the convention of the collusion analysis (eqs. 8–17),
under which "report 0" and "no report" coincide for the numerator but
colluders cannot manipulate the denominator by merely showing up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.attacks.collusion import CollusionAttack, group_colluders, select_colluders
from repro.attacks.evaluate import collusion_impact
from repro.core.backend import GossipConfig
from repro.core.weights import WeightParams
from repro.network.graph import Graph
from repro.network.preferential_attachment import preferential_attachment_graph
from repro.trust.matrix import TrustMatrix, complete_trust_matrix, random_trust_matrix
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class CollusionMeasurement:
    """Eq.-18 RMS errors from one attack configuration.

    Attributes
    ----------
    fraction:
        Colluding fraction of the population.
    group_size:
        ``G``.
    rms_gclr:
        Average RMS error of Differential Gossip Trust (GCLR-weighted).
    rms_unweighted:
        Average RMS error of the unweighted global average (the "old"
        scheme of eqs. 8–12) on the same attack — the comparator that
        shows the weighting's damping.
    num_colluders:
        Realised ``C``.
    """

    fraction: float
    group_size: int
    rms_gclr: float
    rms_unweighted: float
    num_colluders: int


def build_world(
    num_nodes: int,
    *,
    m: int = 2,
    observations_per_node: Optional[int] = None,
    seed: int = 0,
) -> tuple:
    """One collusion-experiment world: PA graph + honest trust matrix.

    The paper's system model assumes a *heavily loaded* network — every
    peer has pending transactions with everyone, so by default the trust
    matrix is fully observed (every ordered pair holds an opinion).
    With sparse observation (say, only the ~2m overlay neighbours) a
    handful of badmouthing colluders can zero out a column, and eq. 18's
    relative error would measure observation scarcity rather than the
    attack. Pass ``observations_per_node`` to study exactly that sparse
    regime instead.
    """
    root = as_generator(seed)
    graph = preferential_attachment_graph(num_nodes, m=m, rng=as_generator(int(root.integers(2**62))))
    if observations_per_node is None:
        trust = complete_trust_matrix(num_nodes, rng=as_generator(int(root.integers(2**62))))
    else:
        trust = random_trust_matrix(
            graph,
            extra_pairs=observations_per_node * num_nodes,
            rng=as_generator(int(root.integers(2**62))),
        )
    return graph, trust


def measure_collusion(
    graph: Graph,
    trust: TrustMatrix,
    attack: CollusionAttack,
    *,
    params: WeightParams = WeightParams(),
    targets: Optional[Sequence[int]] = None,
    use_gossip: bool = True,
    xi: float = 1e-5,
    seed: int = 0,
    backend: str = "auto",
) -> tuple:
    """Measure eq.-18 RMS error for one concrete attack.

    Thin wrapper over :func:`repro.attacks.evaluate.attack_impact` (via
    the :func:`~repro.attacks.evaluate.collusion_impact` compatibility
    name), kept for the tuple return shape the figure experiments
    consume. ``attack`` may equally be any
    :class:`repro.attacks.models.AttackModel` — the measurement is
    family-agnostic.

    Parameters
    ----------
    graph, trust:
        The honest world.
    attack:
        The collusion instance to inject.
    params:
        GCLR weighting constants.
    targets:
        Tracked reputation columns (default: every node).
    use_gossip:
        ``True`` runs the actual differential gossip (identical seeds
        for clean/poisoned, so gossip noise cancels); ``False`` uses the
        exact eq.-6 fixpoint, which the gossip provably approaches —
        handy for large sweeps and repeated benchmark iterations.
    xi, seed:
        Gossip controls (ignored when ``use_gossip`` is False).
    backend:
        Registered gossip backend the rounds run on; the default
        ``"auto"`` follows :func:`repro.core.backend.choose_backend_name`
        instead of silently pinning the dense engine.

    Returns
    -------
    (rms_gclr, rms_unweighted):
        Eq.-18 errors for the weighted scheme and the unweighted
        comparator.
    """
    impact = collusion_impact(
        graph,
        trust,
        attack,
        params=params,
        targets=targets,
        use_gossip=use_gossip,
        config=GossipConfig(xi=xi, rng=seed),
        backend=backend,
    )
    return impact.rms_gclr, impact.rms_unweighted


def sweep_collusion(
    num_nodes: int,
    fractions: Sequence[float],
    group_sizes: Sequence[int],
    *,
    params: WeightParams = WeightParams(),
    num_targets: int = 40,
    use_gossip: bool = True,
    xi: float = 1e-5,
    seed: int = 0,
    m: int = 2,
    backend: str = "auto",
) -> list:
    """Full (fraction x group size) sweep; returns CollusionMeasurement list."""
    root = as_generator(seed)
    graph, trust = build_world(num_nodes, m=m, seed=int(root.integers(2**62)))
    target_rng = as_generator(int(root.integers(2**62)))
    num_targets = min(num_targets, num_nodes)
    targets = sorted(
        int(t) for t in target_rng.choice(num_nodes, size=num_targets, replace=False)
    )

    measurements = []
    for group_size in group_sizes:
        for fraction in fractions:
            colluders = select_colluders(
                num_nodes, fraction, rng=as_generator(int(root.integers(2**62)))
            )
            attack = group_colluders(colluders, group_size)
            rms_gclr, rms_unweighted = measure_collusion(
                graph,
                trust,
                attack,
                params=params,
                targets=targets,
                use_gossip=use_gossip,
                xi=xi,
                seed=int(root.integers(2**62)),
                backend=backend,
            )
            measurements.append(
                CollusionMeasurement(
                    fraction=fraction,
                    group_size=group_size,
                    rms_gclr=rms_gclr,
                    rms_unweighted=rms_unweighted,
                    num_colluders=attack.num_colluders,
                )
            )
    return measurements
