"""The file-sharing world: requests, reputation-gated service, learning.

This ties every substrate together into the system the paper describes
in Section 3:

1. peers issue download requests (Zipf-popular files, Poisson arrivals);
2. a request floods to bounded depth looking for a holder of the file;
3. the chosen provider looks up the requester's reputation — direct
   trust if they have history, the aggregated GCLR estimate otherwise —
   and allocates service quality accordingly (free riders starve);
4. the requester scores the transaction and updates its trust estimate
   of the provider;
5. periodically, the network runs a Differential-Gossip-Trust
   aggregation round, refreshing everyone's calibrated reputations;
6. whitewashers periodically shed their identity, testing the
   zero-initial-trust defence.

Everything is driven by the discrete-event scheduler, so request
interleavings, aggregation timing and whitewashing are all explicit in
simulated time and reproducible from one seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.attacks.whitewashing import WhitewashingModel
from repro.core.vector_gclr import aggregate_vector_gclr, true_vector_gclr
from repro.core.weights import WeightParams
from repro.network.graph import Graph
from repro.simulation.events import EventScheduler
from repro.simulation.peer import PeerProfile
from repro.simulation.workload import FileCatalog
from repro.trust.estimation import SuccessRatioEstimator, TransactionOutcome
from repro.trust.matrix import TrustMatrix
from repro.trust.reputation_table import ReputationTable
from repro.utils.rng import RngLike, as_generator, spawn_child
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the file-sharing world.

    Attributes
    ----------
    num_files:
        Catalogue size.
    zipf_exponent:
        Request-popularity skew.
    files_per_peer:
        Nominal library size of a fully sharing peer.
    query_ttl:
        Max overlay hops a lookup travels (Gnutella-style bounded flood).
    request_rate:
        Mean requests per peer per time unit (Poisson arrivals).
    aggregation_interval:
        Simulated time between reputation-aggregation rounds.
    horizon:
        Simulation end time.
    reputation_threshold:
        Reputation at which a requester earns full service; below it,
        service degrades linearly (Section 3: service "as per its
        contribution").
    newcomer_service_probability:
        Floor on the service-allocation factor so strangers can
        bootstrap (a pure zero floor plus zero initial trust would
        deadlock the whole network, paper Section 4.1.2's note on
        dynamically adjusting the initial value).
    gclr_params:
        Weighting constants for the aggregation rounds.
    aggregation_backend:
        ``None`` (default) computes each round's reputations as the
        exact eq.-6 fixpoint; a registered gossip backend name (or
        ``"auto"``) runs the actual differential gossip round through
        :func:`repro.aggregate` instead, so gossip noise reaches the
        service-allocation decisions.
    aggregation_xi:
        Gossip tolerance when ``aggregation_backend`` is set.
    """

    num_files: int = 200
    zipf_exponent: float = 0.9
    files_per_peer: float = 12.0
    query_ttl: int = 3
    request_rate: float = 1.0
    aggregation_interval: float = 25.0
    horizon: float = 100.0
    reputation_threshold: float = 0.4
    newcomer_service_probability: float = 0.15
    gclr_params: WeightParams = field(default_factory=WeightParams)
    aggregation_backend: Optional[str] = None
    aggregation_xi: float = 1e-4

    def __post_init__(self) -> None:
        check_positive(self.num_files, "num_files")
        check_positive(self.files_per_peer, "files_per_peer")
        check_positive(self.request_rate, "request_rate")
        check_positive(self.aggregation_interval, "aggregation_interval")
        check_positive(self.horizon, "horizon")
        check_probability(self.reputation_threshold, "reputation_threshold")
        check_probability(self.newcomer_service_probability, "newcomer_service_probability")
        check_positive(self.aggregation_xi, "aggregation_xi")
        if self.query_ttl < 1:
            raise ValueError(f"query_ttl must be >= 1, got {self.query_ttl}")
        if self.zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {self.zipf_exponent}")


@dataclass
class PeerState:
    """Mutable per-peer simulation state."""

    peer_id: int
    profile: PeerProfile
    library: Set[int]
    table: ReputationTable
    requests_made: int = 0
    downloads_succeeded: int = 0
    lookup_failures: int = 0
    satisfaction_sum: float = 0.0
    uploads_served: int = 0
    uploads_declined: int = 0


@dataclass
class ProfileSummary:
    """Aggregated outcomes for one behaviour profile."""

    profile_name: str
    peers: int
    requests: int
    downloads: int
    lookup_failures: int
    mean_satisfaction: float
    uploads_served: int
    uploads_declined: int

    @property
    def download_success_rate(self) -> float:
        """Fraction of requests that ended in a served transfer."""
        return self.downloads / self.requests if self.requests else 0.0


@dataclass
class SimulationReport:
    """Final report of a simulation run.

    Attributes
    ----------
    by_profile:
        Summary per behaviour profile name.
    aggregation_rounds:
        Reputation-aggregation rounds executed.
    whitewash_events:
        Identity resets that occurred.
    transactions:
        Total service transactions attempted (served + declined).
    """

    by_profile: Dict[str, ProfileSummary]
    aggregation_rounds: int
    whitewash_events: int
    transactions: int

    def success_ratio(self, profile_a: str, profile_b: str) -> float:
        """Download-success ratio of profile A over profile B.

        The headline free-riding metric: with reputation enforcement,
        ``success_ratio('cooperative', 'free_rider')`` should be well
        above 1.
        """
        a = self.by_profile[profile_a].download_success_rate
        b = self.by_profile[profile_b].download_success_rate
        if b == 0.0:
            return float("inf") if a > 0 else 1.0
        return a / b


class FileSharingSimulation:
    """Reputation-managed P2P file-sharing simulation.

    Parameters
    ----------
    graph:
        Overlay topology (typically a PA graph).
    profiles:
        One :class:`PeerProfile` per node.
    config:
        World parameters.
    rng:
        Seed / generator; one seed reproduces the entire run.
    use_reputation:
        When False, providers ignore reputation entirely (the anarchy
        baseline that shows free riding paying off).

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> from repro.simulation.peer import cooperative_profile, free_rider_profile
    >>> g = preferential_attachment_graph(30, m=2, rng=0)
    >>> profiles = [free_rider_profile() if i % 5 == 0 else cooperative_profile()
    ...             for i in range(30)]
    >>> sim = FileSharingSimulation(g, profiles, SimulationConfig(horizon=20.0), rng=1)
    >>> report = sim.run()
    >>> report.transactions > 0
    True
    """

    def __init__(
        self,
        graph: Graph,
        profiles: Sequence[PeerProfile],
        config: SimulationConfig = SimulationConfig(),
        *,
        rng: RngLike = None,
        use_reputation: bool = True,
    ):
        if len(profiles) != graph.num_nodes:
            raise ValueError(
                f"need one profile per node: {graph.num_nodes} nodes, {len(profiles)} profiles"
            )
        self._graph = graph
        self._config = config
        self._use_reputation = use_reputation
        root = as_generator(rng)
        self._rng_workload = spawn_child(root, key=1)
        self._rng_service = spawn_child(root, key=2)
        self._rng_arrivals = spawn_child(root, key=3)
        self._rng_gossip = spawn_child(root, key=4)

        self._catalog = FileCatalog(config.num_files, zipf_exponent=config.zipf_exponent)
        sharing = np.array([p.sharing_fraction for p in profiles])
        libraries = self._catalog.place_files(
            graph.num_nodes,
            files_per_peer=config.files_per_peer,
            sharing_fraction=sharing,
            rng=self._rng_workload,
        )
        self._peers: List[PeerState] = [
            PeerState(
                peer_id=i,
                profile=profiles[i],
                library=set(libraries[i]),
                table=ReputationTable(i, estimator_factory=SuccessRatioEstimator),
            )
            for i in range(graph.num_nodes)
        ]
        self._scheduler = EventScheduler()
        self._whitewash = WhitewashingModel()
        self._reputation_matrix: Optional[np.ndarray] = None
        self._aggregation_rounds = 0
        self._transactions = 0

    # -- public API --------------------------------------------------------------

    @property
    def peers(self) -> Sequence[PeerState]:
        """Per-peer state (read-mostly; mutating it voids the warranty)."""
        return self._peers

    @property
    def reputation_matrix(self) -> Optional[np.ndarray]:
        """Latest aggregated ``Rep_I,j`` matrix (None before first round)."""
        return self._reputation_matrix

    def trust_matrix(self) -> TrustMatrix:
        """Snapshot of all direct-trust tables as one :class:`TrustMatrix`."""
        matrix = TrustMatrix(self._graph.num_nodes)
        for peer in self._peers:
            for target, value in peer.table.items():
                matrix.set(peer.peer_id, target, value)
        return matrix

    def run(self) -> SimulationReport:
        """Execute the simulation to the horizon and summarise."""
        config = self._config
        for peer in self._peers:
            self._schedule_next_request(peer.peer_id)
            if peer.profile.whitewash_interval is not None:
                self._scheduler.schedule(
                    peer.profile.whitewash_interval,
                    self._make_whitewash_event(peer.peer_id),
                )
        aggregation_time = config.aggregation_interval
        while aggregation_time <= config.horizon:
            self._scheduler.schedule(aggregation_time, self._aggregation_event)
            aggregation_time += config.aggregation_interval

        self._scheduler.run(until=config.horizon)
        return self._build_report()

    # -- event construction ---------------------------------------------------------

    def _schedule_next_request(self, peer_id: int) -> None:
        delay = float(self._rng_arrivals.exponential(1.0 / self._config.request_rate))
        next_time = self._scheduler.now + delay
        if next_time <= self._config.horizon:
            self._scheduler.schedule(next_time, self._make_request_event(peer_id))

    def _make_request_event(self, peer_id: int):
        def fire(_scheduler: EventScheduler) -> None:
            self._handle_request(peer_id)
            self._schedule_next_request(peer_id)

        return fire

    def _make_whitewash_event(self, peer_id: int):
        def fire(scheduler: EventScheduler) -> None:
            self._handle_whitewash(peer_id)
            interval = self._peers[peer_id].profile.whitewash_interval
            next_time = scheduler.now + interval
            if next_time <= self._config.horizon:
                scheduler.schedule(next_time, self._make_whitewash_event(peer_id))

        return fire

    # -- request handling -------------------------------------------------------------

    def _handle_request(self, requester_id: int) -> None:
        requester = self._peers[requester_id]
        requester.requests_made += 1
        file_id = self._catalog.sample_request(self._rng_workload)
        if file_id in requester.library:
            # Already held; counts as a trivially satisfied request.
            requester.downloads_succeeded += 1
            requester.satisfaction_sum += 1.0
            return
        provider_id = self._locate_provider(requester_id, file_id)
        if provider_id is None:
            requester.lookup_failures += 1
            return
        self._transact(requester_id, provider_id, file_id)

    def _locate_provider(self, requester_id: int, file_id: int) -> Optional[int]:
        """Bounded BFS for the nearest holder of ``file_id`` (random tie-break)."""
        graph = self._graph
        ttl = self._config.query_ttl
        visited = {requester_id}
        frontier = deque([(requester_id, 0)])
        candidates: List[int] = []
        candidate_depth: Optional[int] = None
        while frontier:
            node, depth = frontier.popleft()
            if candidate_depth is not None and depth >= candidate_depth:
                break
            if depth >= ttl:
                continue
            for neighbor in graph.neighbors(node):
                neighbor = int(neighbor)
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                if file_id in self._peers[neighbor].library:
                    candidates.append(neighbor)
                    candidate_depth = depth + 1
                frontier.append((neighbor, depth + 1))
        if not candidates:
            return None
        return int(candidates[int(self._rng_workload.integers(len(candidates)))])

    def _reputation_of(self, provider_id: int, requester_id: int) -> float:
        """What the provider believes about the requester (Section 3 lookup)."""
        provider = self._peers[provider_id]
        if provider.table.knows(requester_id):
            return provider.table.trust_of(requester_id)
        if self._reputation_matrix is not None:
            return float(self._reputation_matrix[provider_id, requester_id])
        return 0.0  # stranger before any aggregation: paper's initial value

    def _allocation_factor(self, reputation: float) -> float:
        """Service scaling: full at/above threshold, linear below, floored."""
        config = self._config
        factor = min(1.0, reputation / config.reputation_threshold) if config.reputation_threshold > 0 else 1.0
        return max(config.newcomer_service_probability, factor)

    def _transact(self, requester_id: int, provider_id: int, file_id: int) -> None:
        self._transactions += 1
        requester = self._peers[requester_id]
        provider = self._peers[provider_id]
        profile = provider.profile

        if self._use_reputation:
            factor = self._allocation_factor(self._reputation_of(provider_id, requester_id))
        else:
            factor = 1.0
        p_serve = profile.serve_probability * factor

        if self._rng_service.random() < p_serve:
            # Served: satisfaction concentrates around the provider's quality.
            quality = profile.service_quality
            concentration = 10.0
            satisfaction = float(
                self._rng_service.beta(
                    1e-9 + quality * concentration,
                    1e-9 + (1.0 - quality) * concentration,
                )
            )
            requester.library.add(file_id)
            requester.downloads_succeeded += 1
            requester.satisfaction_sum += satisfaction
            provider.uploads_served += 1
            outcome = TransactionOutcome(satisfaction=min(1.0, max(0.0, satisfaction)))
        else:
            provider.uploads_declined += 1
            outcome = TransactionOutcome(satisfaction=0.0)
        requester.table.record_transaction(provider_id, outcome, now=self._scheduler.now)

    # -- aggregation & whitewashing -----------------------------------------------------

    def _aggregation_event(self, _scheduler: EventScheduler) -> None:
        """One Differential-Gossip-Trust round over current direct trust.

        By default the exact eq.-6 fixpoint is used rather than a full
        gossip simulation: the gossip engines are validated to converge
        to it (see tests), and the workload simulation only needs the
        result. With ``config.aggregation_backend`` set, the round runs
        real differential gossip on that backend instead.
        """
        trust = self.trust_matrix()
        if self._config.aggregation_backend is None:
            self._reputation_matrix = true_vector_gclr(
                self._graph,
                trust,
                targets=range(self._graph.num_nodes),
                params=self._config.gclr_params,
            )
        else:
            self._reputation_matrix = aggregate_vector_gclr(
                self._graph,
                trust,
                targets=range(self._graph.num_nodes),
                params=self._config.gclr_params,
                xi=self._config.aggregation_xi,
                rng=int(self._rng_gossip.integers(2**62)),
                backend=self._config.aggregation_backend,
            ).reputations
        self._aggregation_rounds += 1

    def _handle_whitewash(self, peer_id: int) -> None:
        for peer in self._peers:
            if peer.peer_id != peer_id:
                peer.table.forget(peer_id)
        if self._reputation_matrix is not None:
            self._reputation_matrix[:, peer_id] = 0.0
        self._whitewash.reset_counts[peer_id] = (
            self._whitewash.reset_counts.get(peer_id, 0) + 1
        )

    # -- reporting ------------------------------------------------------------------------

    def _build_report(self) -> SimulationReport:
        groups: Dict[str, List[PeerState]] = {}
        for peer in self._peers:
            groups.setdefault(peer.profile.name, []).append(peer)
        by_profile: Dict[str, ProfileSummary] = {}
        for name, members in groups.items():
            downloads = sum(p.downloads_succeeded for p in members)
            by_profile[name] = ProfileSummary(
                profile_name=name,
                peers=len(members),
                requests=sum(p.requests_made for p in members),
                downloads=downloads,
                lookup_failures=sum(p.lookup_failures for p in members),
                mean_satisfaction=(
                    sum(p.satisfaction_sum for p in members) / downloads if downloads else 0.0
                ),
                uploads_served=sum(p.uploads_served for p in members),
                uploads_declined=sum(p.uploads_declined for p in members),
            )
        return SimulationReport(
            by_profile=by_profile,
            aggregation_rounds=self._aggregation_rounds,
            whitewash_events=self._whitewash.total_resets(),
            transactions=self._transactions,
        )
