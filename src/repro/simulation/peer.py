"""Peer behaviour profiles.

Section 3's rational peers "maximise downloads and minimise uploads";
the behaviours below span that spectrum:

- **cooperative** — shares a full library, serves willingly and well;
- **free rider** — shares (almost) nothing and serves poorly on the
  rare occasions it serves at all;
- **whitewasher** — a free rider that periodically discards its
  identity to shed its (deservedly bad) reputation;
- **colluder** — serves its clique well and everyone else poorly, and
  lies in its *reports* (handled by :mod:`repro.attacks.collusion`).

A profile is data, not behaviour-by-subclassing: the simulation reads
the knobs, which keeps profiles composable (a whitewashing colluder is
just a profile with both fields set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import check_probability


@dataclass(frozen=True)
class PeerProfile:
    """Behavioural parameters of one peer.

    Attributes
    ----------
    name:
        Profile label used in reports ("cooperative", "free_rider"...).
    serve_probability:
        Probability of accepting a service request at full capability.
        Declines still return a (failed, satisfaction-0) transaction —
        the requester learns something either way.
    service_quality:
        Mean satisfaction delivered when serving (Beta-distributed
        around this mean by the simulation).
    sharing_fraction:
        Fraction of the nominal library size this peer shares (drives
        how often it is even *eligible* to serve).
    whitewash_interval:
        Discard identity every this many time units (``None`` = never).
    collusion_group:
        Id of the colluding clique this peer belongs to (``None`` =
        honest reporter).
    """

    name: str
    serve_probability: float
    service_quality: float
    sharing_fraction: float
    whitewash_interval: Optional[float] = None
    collusion_group: Optional[int] = None

    def __post_init__(self) -> None:
        check_probability(self.serve_probability, "serve_probability")
        check_probability(self.service_quality, "service_quality")
        check_probability(self.sharing_fraction, "sharing_fraction")
        if self.whitewash_interval is not None and self.whitewash_interval <= 0:
            raise ValueError(
                f"whitewash_interval must be positive, got {self.whitewash_interval}"
            )

    @property
    def is_free_riding(self) -> bool:
        """Heuristic label: shares little and serves rarely."""
        return self.sharing_fraction <= 0.2 and self.serve_probability <= 0.3


def cooperative_profile(
    *, serve_probability: float = 0.95, service_quality: float = 0.9
) -> PeerProfile:
    """A well-behaved peer: full library, reliable high-quality service."""
    return PeerProfile(
        name="cooperative",
        serve_probability=serve_probability,
        service_quality=service_quality,
        sharing_fraction=1.0,
    )


def free_rider_profile(
    *, serve_probability: float = 0.1, service_quality: float = 0.3
) -> PeerProfile:
    """A free rider: shares a token library, rarely serves, serves badly."""
    return PeerProfile(
        name="free_rider",
        serve_probability=serve_probability,
        service_quality=service_quality,
        sharing_fraction=0.1,
    )


def whitewasher_profile(
    *, whitewash_interval: float = 50.0, serve_probability: float = 0.1
) -> PeerProfile:
    """A free rider that sheds its identity every ``whitewash_interval``."""
    return PeerProfile(
        name="whitewasher",
        serve_probability=serve_probability,
        service_quality=0.3,
        sharing_fraction=0.1,
        whitewash_interval=whitewash_interval,
    )


def colluder_profile(group: int, *, service_quality: float = 0.4) -> PeerProfile:
    """A colluding peer in clique ``group``.

    Colluders serve mediocre quality to the open network (their real
    value comes from the clique's mutual praise, injected at the
    reporting layer by :mod:`repro.attacks.collusion`).
    """
    if group < 0:
        raise ValueError(f"collusion group id must be >= 0, got {group}")
    return PeerProfile(
        name="colluder",
        serve_probability=0.6,
        service_quality=service_quality,
        sharing_fraction=0.5,
        collusion_group=group,
    )
