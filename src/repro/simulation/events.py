"""Discrete-event scheduler.

A minimal priority-queue scheduler in the classic style: events carry a
firing time and a callback; ties break by insertion order so runs are
fully deterministic for a given seed. The file-sharing simulation
drives peer requests and periodic reputation-aggregation rounds with it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

EventCallback = Callable[["EventScheduler"], Any]


@dataclass(order=True)
class _QueuedEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _QueuedEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled."""
        return self._event.cancelled


class EventScheduler:
    """Priority-queue discrete-event loop.

    Examples
    --------
    >>> sched = EventScheduler()
    >>> fired = []
    >>> _ = sched.schedule(2.0, lambda s: fired.append(('b', s.now)))
    >>> _ = sched.schedule(1.0, lambda s: fired.append(('a', s.now)))
    >>> sched.run()
    2
    >>> fired
    [('a', 1.0), ('b', 2.0)]
    """

    def __init__(self):
        self._queue: List[_QueuedEvent] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``.

        Scheduling in the past (before :attr:`now`) is rejected —
        time travel in a DES is always a bug at the call site.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before current time {self._now}")
        event = _QueuedEvent(time=float(time), sequence=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback)

    def step(self) -> Optional[Tuple[float, Any]]:
        """Fire the next pending event; returns ``(time, callback result)``.

        Returns ``None`` when the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            return event.time, event.callback(self)
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Fire events until the queue drains / ``until`` / ``max_events``.

        Parameters
        ----------
        until:
            Stop before firing any event scheduled after this time; the
            clock is then advanced to ``until``.
        max_events:
            Hard cap on fired events (guards runaway self-scheduling).

        Returns
        -------
        int
            Number of events fired.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            # Peek: respect `until` without firing.
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if self.step() is not None:
                fired += 1
        if until is not None and self._now < until:
            self._now = until
        return fired
