"""Content catalogue and workload generation.

File-sharing request popularity is famously heavy-tailed; the standard
model (and the one consistent with the paper's Gnutella framing) is a
Zipf distribution over a fixed catalogue: the ``r``-th most popular file
is requested with probability proportional to ``r^-s``.

Placement follows popularity too — popular files are replicated on many
peers — with every file seeded on at least one peer so each request has
at least one provider somewhere.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


class FileCatalog:
    """Zipf-popular catalogue of ``num_files`` files (ids ``0..F-1``).

    Parameters
    ----------
    num_files:
        Catalogue size.
    zipf_exponent:
        Popularity skew ``s`` (0 = uniform; ~0.8–1.2 typical for P2P).

    Examples
    --------
    >>> catalog = FileCatalog(100, zipf_exponent=1.0)
    >>> bool(catalog.popularity[0] > catalog.popularity[99])
    True
    >>> float(catalog.popularity.sum()).__round__(9)
    1.0
    """

    def __init__(self, num_files: int, *, zipf_exponent: float = 1.0):
        if num_files < 1:
            raise ValueError(f"num_files must be >= 1, got {num_files}")
        if zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {zipf_exponent}")
        self._num_files = int(num_files)
        ranks = np.arange(1, num_files + 1, dtype=np.float64)
        raw = ranks ** (-float(zipf_exponent))
        self._popularity = raw / raw.sum()

    @property
    def num_files(self) -> int:
        """Catalogue size."""
        return self._num_files

    @property
    def popularity(self) -> np.ndarray:
        """Request probability per file id (descending, sums to 1)."""
        view = self._popularity.view()
        view.flags.writeable = False
        return view

    def sample_request(self, rng: RngLike = None) -> int:
        """Draw one requested file id from the popularity law."""
        generator = as_generator(rng)
        return int(generator.choice(self._num_files, p=self._popularity))

    def sample_requests(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``size`` requested file ids."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        generator = as_generator(rng)
        return generator.choice(self._num_files, size=size, p=self._popularity)

    def place_files(
        self,
        num_peers: int,
        *,
        files_per_peer: float = 10.0,
        sharing_fraction: np.ndarray = None,
        rng: RngLike = None,
    ) -> List[FrozenSet[int]]:
        """Assign an initial library to every peer.

        Each peer draws ``round(files_per_peer * sharing_fraction[p])``
        files (popularity-weighted, without replacement per peer); then
        any file held by nobody is seeded on one uniformly random peer,
        so no request is globally unsatisfiable.

        Parameters
        ----------
        num_peers:
            Number of peers.
        files_per_peer:
            Mean library size for a fully sharing peer.
        sharing_fraction:
            Optional per-peer multiplier in [0, 1] — free riders share
            little or nothing (their profile sets this near 0).
        rng:
            Seed / generator.
        """
        check_positive(files_per_peer, "files_per_peer")
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        generator = as_generator(rng)
        if sharing_fraction is None:
            sharing_fraction = np.ones(num_peers, dtype=np.float64)
        sharing_fraction = np.asarray(sharing_fraction, dtype=np.float64)
        if sharing_fraction.shape != (num_peers,):
            raise ValueError(
                f"sharing_fraction must have shape ({num_peers},), got {sharing_fraction.shape}"
            )

        libraries: List[Set[int]] = []
        for peer in range(num_peers):
            count = int(round(files_per_peer * float(sharing_fraction[peer])))
            count = min(count, self._num_files)
            if count <= 0:
                libraries.append(set())
                continue
            files = generator.choice(
                self._num_files, size=count, replace=False, p=self._popularity
            )
            libraries.append(set(int(f) for f in files))

        held: Set[int] = set().union(*libraries) if libraries else set()
        for file_id in range(self._num_files):
            if file_id not in held:
                libraries[int(generator.integers(num_peers))].add(file_id)
        return [frozenset(lib) for lib in libraries]


def holders_index(libraries: List[FrozenSet[int]]) -> Dict[int, List[int]]:
    """Invert peer libraries into ``file id -> sorted list of holders``."""
    index: Dict[int, List[int]] = {}
    for peer, library in enumerate(libraries):
        for file_id in library:
            index.setdefault(file_id, []).append(peer)
    for holders in index.values():
        holders.sort()
    return index
