"""P2P file-sharing workload simulation.

The paper motivates Differential Gossip Trust with a file-sharing
network suffering free riding (Sections 1 and 3). This package builds
that world so the examples and end-to-end tests can show the system
*doing its job* — discriminating free riders, resisting whitewashing —
rather than only aggregating synthetic matrices:

- :mod:`repro.simulation.events` — a discrete-event scheduler;
- :mod:`repro.simulation.workload` — Zipf content catalogue and file
  placement;
- :mod:`repro.simulation.peer` — behaviour profiles (cooperative, free
  rider, whitewasher, colluder);
- :mod:`repro.simulation.filesharing` — the simulation tying overlay,
  workload, trust estimation and reputation-based service together.
"""

from repro.simulation.events import EventScheduler
from repro.simulation.filesharing import FileSharingSimulation, SimulationConfig, SimulationReport
from repro.simulation.peer import (
    PeerProfile,
    colluder_profile,
    cooperative_profile,
    free_rider_profile,
    whitewasher_profile,
)
from repro.simulation.workload import FileCatalog

__all__ = [
    "EventScheduler",
    "FileCatalog",
    "PeerProfile",
    "cooperative_profile",
    "free_rider_profile",
    "whitewasher_profile",
    "colluder_profile",
    "FileSharingSimulation",
    "SimulationConfig",
    "SimulationReport",
]
