"""Composable scenario specifications.

A scenario is the cross product the ROADMAP asks for: **topology ×
workload × churn × attack × backend**, captured as data. Each axis is a
small frozen spec; :func:`run_scenario` interprets the combination
through the :func:`repro.aggregate` facade, so any scenario runs on any
registered gossip backend without new plumbing — adding a workload or a
topology kind here opens it to every backend at once.

Every scenario has a full-scale shape and a ``--small`` shape (the CI
smoke size); both are fully seeded, so a scenario run is reproducible
from ``(name, seed, small)`` alone.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import AggregationAlgorithm
    from repro.attacks.models import AttackModel
    from repro.network.conditions import EpochPartition, LatencySpec, LinkModel

from repro.core.backend import GossipConfig, choose_backend_name, resolve_backend_name
from repro.facade import aggregate
from repro.network.graph import Graph
from repro.utils.rng import as_generator

TOPOLOGY_KINDS = (
    "powerlaw",
    "powerlaw-fast",
    "erdos-renyi",
    "random-regular",
    "regional",
    "example",
)
WORKLOAD_KINDS = ("mean", "trust-global", "trust-gclr", "free-riding", "dual-rank")
NETWORK_KINDS = ("uniform", "regional")


@dataclass(frozen=True)
class TopologySpec:
    """Which overlay graph the scenario runs on.

    ``small_num_nodes`` is the ``--small`` (CI smoke) size; everything
    else about the topology is scale-invariant.
    """

    kind: str = "powerlaw"
    num_nodes: int = 1000
    small_num_nodes: int = 200
    m: int = 2  # preferential attachment
    p: float = 0.02  # erdos-renyi edge probability
    degree: int = 4  # random-regular
    num_regions: int = 4  # regional (planted partition)
    intra_p: float = 0.2  # regional: same-region edge probability
    inter_p: float = 0.01  # regional: cross-region edge probability

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(f"topology kind must be one of {TOPOLOGY_KINDS}, got {self.kind!r}")
        if self.num_regions < 1:
            raise ValueError(f"num_regions must be >= 1, got {self.num_regions}")

    def size(self, small: bool) -> int:
        """Node count at the requested scale."""
        return self.small_num_nodes if small else self.num_nodes

    def build(self, rng, *, small: bool = False) -> Graph:
        """Construct the graph at the requested scale."""
        n = self.size(small)
        if self.kind == "powerlaw":
            from repro.network.preferential_attachment import preferential_attachment_graph

            return preferential_attachment_graph(n, m=self.m, rng=rng)
        if self.kind == "powerlaw-fast":
            from repro.network.preferential_attachment import preferential_attachment_graph_fast

            return preferential_attachment_graph_fast(n, m=self.m, rng=rng)
        if self.kind == "erdos-renyi":
            from repro.network.random_graphs import erdos_renyi_graph

            return erdos_renyi_graph(n, self.p, rng=rng)
        if self.kind == "random-regular":
            from repro.network.random_graphs import random_regular_graph

            return random_regular_graph(n, self.degree, rng=rng)
        if self.kind == "regional":
            from repro.network.random_graphs import regional_graph

            return regional_graph(
                n,
                self.num_regions,
                intra_probability=self.intra_p,
                inter_probability=self.inter_p,
                rng=rng,
            )
        from repro.network.topology_example import example_network

        return example_network()


@dataclass(frozen=True)
class WorkloadSpec:
    """What gets aggregated.

    - ``"mean"``: every node holds one uniform random observation; the
      round estimates the global mean (Section 5.1's uniform-gossip
      setting).
    - ``"trust-global"``: a trust matrix is aggregated with the
      vector-global variant over sampled target columns.
    - ``"trust-gclr"``: full Differential Gossip Trust (vector-gclr)
      measured as eq.-18 RMS error of a poisoned run against a clean
      run (requires an :class:`AttackSpec`).
    - ``"free-riding"``: nodes carry contribution scores with a
      free-riding minority; the round estimates the network-wide mean
      contribution each node compares itself against.
    - ``"dual-rank"``: Golem-style computing + delegating reputations —
      two independent trust matrices gossiped as two channels of one
      ``num_channels = 2`` vector-global pass (every sampling draw
      shared). Supports an optional attack; a cross-channel family
      poisons one rank while the other must stay clean (containment).
    """

    kind: str = "mean"
    num_targets: int = 20
    observations: str = "edge-local"  # edge-local | complete
    free_rider_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"workload kind must be one of {WORKLOAD_KINDS}, got {self.kind!r}")
        if self.observations not in ("edge-local", "complete"):
            raise ValueError(
                f"observations must be 'edge-local' or 'complete', got {self.observations!r}"
            )
        if not 0.0 < self.free_rider_fraction < 1.0:
            raise ValueError(
                f"free_rider_fraction must be in (0, 1), got {self.free_rider_fraction}"
            )


@dataclass(frozen=True)
class ChurnSpec:
    """Message-layer churn: per-push loss probability (Section 5.3)."""

    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(f"loss_probability must be in [0, 1], got {self.loss_probability}")


@dataclass(frozen=True)
class NetworkSpec:
    """Network-conditions axis: link models for the scenario's pushes.

    Where :class:`ChurnSpec` keeps the paper's uniform instant loss,
    this axis reaches the full :mod:`repro.network.conditions` surface:
    per-edge latency distributions, bandwidth caps, region structure
    and scheduled partitions. Two kinds:

    - ``"uniform"``: every edge shares ``loss`` and one latency
      distribution (``latency_kind``/``latency_mean``/
      ``latency_spread``). With zero latency this is exactly the
      legacy loss path (:class:`~repro.network.conditions.InstantLink`).
    - ``"regional"``: peers split into ``num_regions`` contiguous
      blocks — LAN conditions inside a region (``loss``,
      ``latency_mean``), WAN conditions across (``inter_loss``,
      ``inter_latency_mean``, optional ``inter_bandwidth`` cap), an
      optionally flaky region, and an optional scheduled partition
      window (``partition_start`` .. ``+ partition_duration``) that
      heals.

    For static scenarios the spec builds a
    :class:`~repro.network.conditions.LinkModel` handed to
    ``GossipConfig(network=...)`` — latency-bearing models steer
    ``"auto"`` to the event-driven async backend. For dynamic scenarios
    only the partition fields apply (:meth:`epoch_partition` replays
    cut-and-heal through the mutable overlay; ``partition_start`` and
    ``partition_duration`` are then epoch counts).
    """

    kind: str = "uniform"
    loss: float = 0.0  # uniform loss; intra-region loss for "regional"
    latency_kind: str = "exponential"
    latency_mean: float = 0.0  # uniform latency; intra-region for "regional"
    latency_spread: float = 0.0
    num_regions: int = 4
    inter_loss: float = 0.0
    inter_latency_mean: float = 0.0
    inter_bandwidth: Optional[float] = None
    flaky_region: Optional[int] = None
    flaky_loss: float = 0.5
    partition_start: Optional[float] = None  # simulated time (static) / epoch (dynamic)
    partition_duration: float = 0.0
    partition_groups: int = 2

    def __post_init__(self) -> None:
        if self.kind not in NETWORK_KINDS:
            raise ValueError(f"network kind must be one of {NETWORK_KINDS}, got {self.kind!r}")
        for name in ("loss", "inter_loss", "flaky_loss"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("latency_mean", "latency_spread", "inter_latency_mean"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.num_regions < 1:
            raise ValueError(f"num_regions must be >= 1, got {self.num_regions}")
        if self.partition_start is not None and self.partition_duration <= 0:
            raise ValueError(
                f"partition_duration must be positive with partition_start set, "
                f"got {self.partition_duration}"
            )
        if self.partition_groups < 2:
            raise ValueError(f"partition_groups must be >= 2, got {self.partition_groups}")
        if self.kind == "uniform" and self.partition_start is not None:
            raise ValueError(
                "partition windows need region structure; use kind='regional'"
            )

    def _latency(self, mean: float) -> "LatencySpec":
        from repro.network.conditions import INSTANT, LatencySpec

        if mean == 0.0:
            return INSTANT
        spread = self.latency_spread
        if self.latency_kind == "uniform":
            spread = min(spread, mean)
        return LatencySpec(kind=self.latency_kind, mean=mean, spread=spread)

    @property
    def has_latency(self) -> bool:
        """Whether the built link model forces the event-driven backend."""
        return self.build_link().has_latency

    def build_link(self) -> "LinkModel":
        """The :class:`~repro.network.conditions.LinkModel` this spec names."""
        from repro.network.conditions import (
            HomogeneousLink,
            InstantLink,
            PartitionWindow,
            RegionalLinkModel,
        )

        if self.kind == "uniform":
            latency = self._latency(self.latency_mean)
            if latency.is_instant:
                return InstantLink(self.loss)
            return HomogeneousLink(self.loss, latency=latency)
        partitions = (
            (PartitionWindow(self.partition_start, self.partition_duration),)
            if self.partition_start is not None
            else ()
        )
        return RegionalLinkModel(
            self.num_regions,
            intra_loss=self.loss,
            inter_loss=self.inter_loss,
            intra_latency=self._latency(self.latency_mean),
            inter_latency=self._latency(self.inter_latency_mean),
            inter_bandwidth=self.inter_bandwidth,
            flaky_region=self.flaky_region,
            flaky_loss=self.flaky_loss if self.flaky_region is not None else 0.0,
            partitions=partitions,
        )

    def epoch_partition(self) -> "Optional[EpochPartition]":
        """The dynamic-runtime partition schedule, or ``None``.

        ``partition_start``/``partition_duration`` are read as epoch
        counts: active from ``start`` until healing at
        ``start + duration``.
        """
        if self.partition_start is None:
            return None
        from repro.network.conditions import EpochPartition

        start = int(self.partition_start)
        return EpochPartition(
            start_epoch=start,
            heal_epoch=start + int(self.partition_duration),
            num_groups=self.partition_groups,
        )


@dataclass(frozen=True)
class AttackSpec:
    """Adversary axis: one registered attack family plus its parameters.

    ``kind`` names any family in the attack registry
    (:mod:`repro.attacks.models`; aliases resolve). Unused parameters
    are ignored by :meth:`build`, so one spec shape covers every
    family:

    - ``"collusion"`` — ``fraction``, ``group_size`` (Section 5.2);
    - ``"slandering"`` — ``fraction``, ``victim_fraction``, ``value``,
      ``max_victims``;
    - ``"whitewashing"`` — ``fraction``, ``newcomer_trust``;
    - ``"on-off"`` — ``fraction``, ``period``, ``on_epochs``, wrapping
      a slandering inner attack (``victim_fraction``/``value``/
      ``max_victims``) so the duty cycle stays sparse at any scale;
    - ``"sybil"`` — ``sybil_fraction``, ``attach_m``;
    - ``"cross-channel-slander"`` — the slandering parameters plus
      ``target_channel`` (which reputation channel of a multi-channel
      workload the coalition poisons; the others stay honest).
    """

    kind: str = "collusion"
    fraction: float = 0.3
    group_size: int = 5
    victim_fraction: float = 0.1
    value: float = 0.0
    max_victims: Optional[int] = None
    period: int = 2
    on_epochs: int = 1
    sybil_fraction: float = 0.1
    attach_m: int = 2
    newcomer_trust: float = 0.0
    target_channel: int = 0

    def __post_init__(self) -> None:
        from repro.attacks.models import resolve_attack_name

        resolve_attack_name(self.kind)  # raises UnknownAttackError early
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {self.fraction}")
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        # Per-family parameters fail at spec construction, not mid-run:
        # a registered scenario with a bad duty cycle or victim cap
        # should never survive to topology building.
        if not 0.0 <= self.victim_fraction < 1.0:
            raise ValueError(f"victim_fraction must be in [0, 1), got {self.victim_fraction}")
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(f"value must be in [0, 1], got {self.value}")
        if self.max_victims is not None and self.max_victims < 1:
            raise ValueError(f"max_victims must be >= 1, got {self.max_victims}")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not 0 < self.on_epochs <= self.period:
            raise ValueError(
                f"on_epochs must be in 1..period ({self.period}), got {self.on_epochs}"
            )
        if not 0.0 < self.sybil_fraction < 1.0:
            raise ValueError(f"sybil_fraction must be in (0, 1), got {self.sybil_fraction}")
        if self.attach_m < 1:
            raise ValueError(f"attach_m must be >= 1, got {self.attach_m}")
        if not 0.0 <= self.newcomer_trust <= 1.0:
            raise ValueError(f"newcomer_trust must be in [0, 1], got {self.newcomer_trust}")
        if self.target_channel < 0:
            raise ValueError(f"target_channel must be >= 0, got {self.target_channel}")

    def _slander_params(self) -> Dict:
        """Slandering kwargs; ``max_victims=None`` defers to the family's
        default cap rather than lifting it."""
        params: Dict = dict(
            fraction=self.fraction,
            victim_fraction=self.victim_fraction,
            value=self.value,
        )
        if self.max_victims is not None:
            params["max_victims"] = self.max_victims
        return params

    def build(self, *, seed: int) -> "AttackModel":
        """Instantiate the family with this spec's parameters and ``seed``."""
        from repro.attacks.models import make_attack, resolve_attack_name

        kind = resolve_attack_name(self.kind)
        if kind == "collusion":
            return make_attack(
                kind, fraction=self.fraction, group_size=self.group_size, seed=seed
            )
        if kind == "slandering":
            return make_attack(kind, seed=seed, **self._slander_params())
        if kind == "cross-channel-slander":
            return make_attack(
                kind, seed=seed, target_channel=self.target_channel,
                **self._slander_params(),
            )
        if kind == "whitewashing":
            return make_attack(
                kind, fraction=self.fraction, newcomer_trust=self.newcomer_trust, seed=seed
            )
        if kind == "on-off":
            inner = make_attack("slandering", seed=seed, **self._slander_params())
            return make_attack(
                kind,
                fraction=self.fraction,
                period=self.period,
                on_epochs=self.on_epochs,
                inner=inner,
                seed=seed,
            )
        if kind == "sybil":
            return make_attack(
                kind, sybil_fraction=self.sybil_fraction, attach_m=self.attach_m, seed=seed
            )
        # Third-party families run with their registered defaults.
        return make_attack(kind, seed=seed)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Aggregation-algorithm axis: which registered algorithm executes.

    ``kind`` names any algorithm in the registry
    (:mod:`repro.algorithms`; aliases resolve). Setting this on a
    scenario replaces the default vector-global gossip of the
    ``"trust-global"`` workload with the named algorithm's adapter —
    the same world (topology, trust matrix, sampled targets, seed)
    measured through :class:`repro.algorithms.base.AlgorithmOutcome`,
    so a scenario can pin a comparator (or a sweep can vary this axis)
    without new plumbing.
    """

    kind: str = "diff-gossip"

    def __post_init__(self) -> None:
        from repro.algorithms import resolve_algorithm_name

        resolve_algorithm_name(self.kind)  # raises UnknownAlgorithmError early

    @property
    def canonical(self) -> str:
        """Canonical registry name (aliases resolved)."""
        from repro.algorithms import resolve_algorithm_name

        return resolve_algorithm_name(self.kind)

    def build(self) -> "AggregationAlgorithm":
        """The registered adapter this spec names."""
        from repro.algorithms import get_algorithm

        return get_algorithm(self.kind)


@dataclass(frozen=True)
class DynamicSpec:
    """Session churn driving the epoch runtime (:mod:`repro.runtime`).

    Setting this on a scenario switches execution from one static
    gossip round to :func:`repro.runtime.run_dynamic`: the topology
    becomes a :class:`repro.network.mutable.MutableOverlay`, peers join
    (preferential attachment) and leave per a seeded
    :class:`repro.runtime.trace.ChurnTrace`, and each epoch's round
    warm-starts from the last. Only the ``"mean"`` workload runs
    dynamically (per-peer reputation scores averaged network-wide).
    """

    epochs: int = 8
    join_rate: float = 0.002
    leave_rate: float = 0.002
    flash: bool = False  # flash-crowd trace instead of steady rates
    spike_epoch: int = 1
    spike_fraction: float = 0.3
    warm_start: bool = True
    stop_rule: str = "accuracy"
    epoch_tol: float = 1e-3
    opinion_drift: float = 0.01
    drift_scale: float = 0.1
    newcomer_trust: Optional[float] = None  # DynamicNewcomerPolicy grant; None = uniform opinions

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        for name in ("join_rate", "leave_rate", "opinion_drift"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.epoch_tol <= 0:
            raise ValueError(f"epoch_tol must be positive, got {self.epoch_tol}")
        if self.newcomer_trust is not None and not 0.0 <= self.newcomer_trust <= 1.0:
            raise ValueError(f"newcomer_trust must be in [0, 1], got {self.newcomer_trust}")

    def build_trace(self, population: int, seed: int) -> "ChurnTrace":
        """The seeded churn schedule for a ``population``-peer overlay."""
        from repro.runtime.trace import ChurnTrace

        if self.flash:
            return ChurnTrace.flash_crowd(
                self.epochs,
                population=population,
                base_rate=max(self.join_rate, self.leave_rate),
                spike_epoch=self.spike_epoch,
                spike_fraction=self.spike_fraction,
                seed=seed,
            )
        return ChurnTrace.steady(
            self.epochs,
            population=population,
            join_rate=self.join_rate,
            leave_rate=self.leave_rate,
            seed=seed,
        )


@dataclass(frozen=True)
class ServiceSpec:
    """Streaming soak of the serving layer (:mod:`repro.service`).

    Setting this on a scenario switches execution to a
    :class:`repro.service.service.ReputationService` soak: a seeded
    synthetic report stream is submitted in chunks against a bounded
    ingest queue (watermark shedding included), the service folds
    batches and advances warm-start epochs tick by tick, and the run
    reports ingest throughput, staleness, and lock-free query rate.
    """

    num_reports: int = 20_000
    small_num_reports: int = 1_500
    batch_size: int = 512
    high_watermark: int = 2_048
    submit_chunk: int = 256
    noise: float = 0.1
    query_samples: int = 2_000

    def __post_init__(self) -> None:
        for name in ("num_reports", "small_num_reports", "query_samples"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("batch_size", "high_watermark", "submit_chunk"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.noise < 0:
            raise ValueError(f"noise must be >= 0, got {self.noise}")

    def size(self, small: bool) -> int:
        """Report count at the requested scale."""
        return self.small_num_reports if small else self.num_reports


@dataclass(frozen=True)
class Scenario:
    """One named point in topology × workload × churn × attack × backend."""

    name: str
    description: str
    topology: TopologySpec
    workload: WorkloadSpec
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    network: Optional[NetworkSpec] = None
    attack: Optional[AttackSpec] = None
    dynamic: Optional[DynamicSpec] = None
    service: Optional["ServiceSpec"] = None
    algorithm: Optional[AlgorithmSpec] = None
    backend: str = "auto"
    xi: float = 1e-5
    max_steps: int = 20_000
    seed: int = 2016
    num_shards: Optional[int] = None
    shard_workers: "Optional[int | str]" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.workload.kind == "trust-gclr" and self.attack is None:
            raise ValueError("trust-gclr scenarios measure an attack; provide AttackSpec")
        if self.algorithm is not None and self.workload.kind != "trust-global":
            raise ValueError(
                "the algorithm axis replaces the 'trust-global' workload's "
                f"aggregation; got workload {self.workload.kind!r}"
            )
        if self.dynamic is not None and self.workload.kind != "mean":
            raise ValueError(
                "dynamic scenarios run the 'mean' workload (per-peer reputation scores); "
                f"got {self.workload.kind!r}"
            )
        if self.service is not None:
            if self.dynamic is not None:
                raise ValueError(
                    "service scenarios drive their own epoch loop; 'dynamic' and "
                    "'service' are mutually exclusive"
                )
            if self.workload.kind != "mean":
                raise ValueError(
                    "service scenarios fold trust reports into per-peer reputations "
                    f"(the 'mean' workload); got {self.workload.kind!r}"
                )
        if self.network is not None:
            if self.churn.loss_probability > 0.0:
                raise ValueError(
                    "the network axis subsumes the churn loss knob; put the loss "
                    "on NetworkSpec and drop ChurnSpec.loss_probability"
                )
            if self.dynamic is not None or self.service is not None:
                if self.network.epoch_partition() is None:
                    raise ValueError(
                        "dynamic/service scenarios use the network axis only for "
                        "scheduled partitions; set partition_start/partition_duration"
                    )
                if (
                    self.network.latency_mean > 0.0
                    or self.network.inter_latency_mean > 0.0
                    or self.network.inter_bandwidth is not None
                    or self.network.loss > 0.0
                    or self.network.inter_loss > 0.0
                ):
                    raise ValueError(
                        "epoch-driven runs have no simulated-time axis; dynamic "
                        "network specs must carry only the partition schedule "
                        "(zero latency/loss, no bandwidth cap)"
                    )
            elif self.network.has_latency and self.workload.kind != "mean":
                raise ValueError(
                    "latency-bearing network models run on the event-driven "
                    "'async' backend, which gossips the scalar 'mean' workload "
                    f"only; got {self.workload.kind!r}"
                )


@dataclass
class ScenarioResult:
    """What one scenario run produced."""

    name: str
    backend: str
    small: bool
    num_nodes: int
    num_edges: int
    steps: int
    push_messages: int
    converged_fraction: float
    metrics: Dict[str, float]
    elapsed_seconds: float
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Human-readable report block."""
        lines = [
            f"scenario: {self.name}{'  [small]' if self.small else ''}",
            f"  backend={self.backend}  N={self.num_nodes}  E={self.num_edges}",
            f"  steps={self.steps}  push_messages={self.push_messages}  "
            f"converged={self.converged_fraction:.1%}",
        ]
        for key in sorted(self.metrics):
            lines.append(f"  {key} = {self.metrics[key]:.6g}")
        lines.extend(f"  note: {note}" for note in self.notes)
        lines.append(f"  elapsed: {self.elapsed_seconds:.2f}s")
        return "\n".join(lines)


# -- registry ---------------------------------------------------------------

_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, overwrite: bool = False) -> Scenario:
    """Add ``scenario`` to the catalogue (returned for chaining)."""
    if not overwrite and scenario.name in _SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario; KeyError lists the catalogue."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        available = ", ".join(sorted(_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; available: {available}") from None


def available_scenarios() -> Tuple[str, ...]:
    """Names of all registered scenarios, sorted."""
    return tuple(sorted(_SCENARIOS))


# -- execution --------------------------------------------------------------


def run_scenario(
    scenario: Union[Scenario, str],
    *,
    small: bool = False,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
) -> ScenarioResult:
    """Execute one scenario and summarise it.

    Parameters
    ----------
    scenario:
        A :class:`Scenario` or a registered name.
    small:
        Run the scenario's CI-smoke shape instead of full scale.
    seed:
        Override the scenario's seed (one seed determines the whole
        run: topology, workload, gossip, churn, attack).
    backend:
        Override the scenario's backend (any registered name or
        ``"auto"``).
    workers:
        Override the scenario's sharded-backend worker count (a
        throughput knob only — sharded outcomes are byte-identical
        across worker counts).
    executor:
        Override the sharded-backend executor (``"inline"``,
        ``"threads"`` or ``"processes"``; byte-identical outcomes for
        any choice). Mutually exclusive with ``workers``.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if workers is not None and executor is not None:
        raise ValueError(
            "pass either workers (a count under the default executor policy) "
            "or executor (a named scheduling strategy), not both"
        )
    root = as_generator(scenario.seed if seed is None else seed)
    graph = scenario.topology.build(
        as_generator(int(root.integers(2**62))), small=small
    )
    backend_name = backend if backend is not None else scenario.backend
    shard_workers = workers if workers is not None else executor
    # Dynamic/service runs replay the network axis through the overlay
    # (epoch partitions), not through a per-push link model.
    network = (
        scenario.network.build_link()
        if scenario.network is not None
        and scenario.dynamic is None
        and scenario.service is None
        else None
    )
    config = GossipConfig(
        xi=scenario.xi,
        max_steps=scenario.max_steps,
        loss_probability=scenario.churn.loss_probability,
        network=network,
        rng=int(root.integers(2**62)),
        num_shards=scenario.num_shards,
        shard_workers=shard_workers if shard_workers is not None else scenario.shard_workers,
    )

    if scenario.dynamic is not None:
        # The runtime resolves the name itself: its "auto" policy steers
        # towards run_to_max-capable engines for the accuracy stop rule.
        return _run_dynamic(scenario, graph, config, backend_name, root, small=small)

    if scenario.service is not None:
        # The service resolves the name the same way (it embeds the
        # dynamic runtime for its per-tick epochs).
        return _run_service(scenario, graph, config, backend_name, root, small=small)

    if scenario.algorithm is not None:
        # The algorithm axis executes the trust-global workload through
        # a registered adapter; backend resolution only applies to
        # backend-routed algorithms and happens inside.
        return _run_algorithm(scenario, graph, config, backend_name, root, small=small)

    kind = scenario.workload.kind
    if backend_name == "auto":
        # Dual-rank gossips num_channels=2 state, which the message
        # engine cannot run — let the auto policy see that constraint.
        # The config always rides along so latency-bearing network
        # models steer to the event-driven async backend.
        auto_config = (
            dataclasses.replace(config, num_channels=2) if kind == "dual-rank" else config
        )
        resolved = choose_backend_name(graph, auto_config)
    else:
        resolved = resolve_backend_name(backend_name)
    start = time.perf_counter()
    if kind == "mean":
        outcome, metrics, notes = _run_mean(scenario, graph, config, resolved, root)
    elif kind == "trust-global":
        outcome, metrics, notes = _run_trust_global(scenario, graph, config, resolved, root)
    elif kind == "trust-gclr":
        outcome, metrics, notes = _run_trust_gclr(scenario, graph, config, resolved, root)
    elif kind == "dual-rank":
        outcome, metrics, notes = _run_dual_rank(scenario, graph, config, resolved, root)
    else:
        outcome, metrics, notes = _run_free_riding(scenario, graph, config, resolved, root)
    elapsed = time.perf_counter() - start

    return ScenarioResult(
        name=scenario.name,
        backend=resolved,
        small=small,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        steps=outcome.steps,
        push_messages=outcome.push_messages,
        converged_fraction=float(np.mean(outcome.converged)),
        metrics=metrics,
        elapsed_seconds=elapsed,
        notes=notes,
    )


def _run_dynamic(scenario, graph, config, backend, root, *, small):
    """Epoch-driven dynamic run: churn trace over a mutable overlay."""
    from repro.network.mutable import MutableOverlay
    from repro.runtime.dynamics import run_dynamic
    from repro.trust.newcomer_policy import DynamicNewcomerPolicy

    spec = scenario.dynamic
    trace = spec.build_trace(graph.num_nodes, int(root.integers(2**62)))
    policy = (
        DynamicNewcomerPolicy(max_initial_trust=spec.newcomer_trust)
        if spec.newcomer_trust is not None
        else None
    )
    attack = (
        scenario.attack.build(seed=int(root.integers(2**62)))
        if scenario.attack is not None
        else None
    )
    partition = (
        scenario.network.epoch_partition() if scenario.network is not None else None
    )
    start = time.perf_counter()
    result = run_dynamic(
        MutableOverlay.from_graph(graph),
        trace,
        config,
        backend=backend,
        warm_start=spec.warm_start,
        stop_rule=spec.stop_rule,
        epoch_tol=spec.epoch_tol,
        newcomer_policy=policy,
        opinion_drift=spec.opinion_drift,
        drift_scale=spec.drift_scale,
        attachment_m=scenario.topology.m,
        attack=attack,
        partition=partition,
    )
    elapsed = time.perf_counter() - start
    final = result.final_record
    metrics = {
        "epochs": float(len(result.records)),
        "total_arrivals": float(trace.total_arrivals),
        "total_departures": float(trace.total_departures),
        "steady_state_steps": result.steady_state_steps,
        "cold_bootstrap_steps": float(result.records[0].steps),
        "final_mean_abs_error": final.mean_abs_error,
        "final_num_peers": float(final.num_peers),
    }
    if attack is not None:
        metrics["total_attack_events"] = float(
            sum(r.attack_events for r in result.records)
        )
    if partition is not None:
        metrics["partition_epochs"] = float(
            sum(1 for r in result.records if partition.active(r.epoch))
        )
    notes = [
        f"{'warm' if spec.warm_start else 'cold'}-start epochs under the "
        f"'{spec.stop_rule}' stop rule (tol={spec.epoch_tol:g})",
        f"churn trace: {'flash-crowd' if spec.flash else 'steady'} "
        f"(+{trace.total_arrivals}/-{trace.total_departures} sessions over {len(trace)} epochs)",
    ]
    if partition is not None:
        notes.append(
            f"scheduled partition: {partition.num_groups} groups cut over epochs "
            f"[{partition.start_epoch}, {partition.heal_epoch}), then healed"
        )
    return ScenarioResult(
        name=scenario.name,
        backend=result.backend,
        small=small,
        num_nodes=final.num_peers,
        num_edges=final.num_edges,
        steps=result.total_steps,
        push_messages=result.total_push_messages,
        converged_fraction=final.converged_fraction,
        metrics=metrics,
        elapsed_seconds=elapsed,
        notes=notes,
    )


def _run_service(scenario, graph, config, backend, root, *, small):
    """Streaming service soak: ingest → fold → epoch → snapshot, measured."""
    from repro.network.mutable import MutableOverlay
    from repro.service.reports import generate_reports
    from repro.service.service import ReputationService

    spec = scenario.service
    num_reports = spec.size(small)
    reports = generate_reports(
        num_reports,
        graph.num_nodes,
        rng=as_generator(int(root.integers(2**62))),
        noise=spec.noise,
    )
    service = ReputationService(
        MutableOverlay.from_graph(graph),
        config=config,
        backend=backend,
        seed=int(root.integers(2**62)),
        high_watermark=spec.high_watermark,
        batch_size=spec.batch_size,
    )

    start = time.perf_counter()
    ticks = []
    shed_events = 0
    cursor = 0
    while cursor < len(reports):
        chunk = reports[cursor : cursor + spec.submit_chunk]
        accepted = service.submit_batch(chunk)
        cursor += accepted
        if accepted < len(chunk):
            # Watermark shed: fold a batch, then resubmit the remainder —
            # the deterministic single-driver version of "retry after the
            # service loop drains".
            shed_events += 1
            ticks.append(service.tick())
    ticks.extend(service.drain_pending())
    ingest_elapsed = time.perf_counter() - start

    # Lock-free query path, measured against the final snapshot.
    pids = service.overlay.peer_ids()
    query_start = time.perf_counter()
    for i in range(spec.query_samples):
        service.get_reputation(int(pids[i % len(pids)]))
    query_elapsed = time.perf_counter() - query_start

    snapshot = service.snapshot()
    elapsed = time.perf_counter() - start
    staleness = [t.staleness for t in ticks]
    metrics = {
        "reports_folded": float(snapshot.reports_folded),
        "ticks": float(len(ticks)),
        "final_version": float(snapshot.version),
        "ingest_reports_per_second": num_reports / ingest_elapsed if ingest_elapsed else 0.0,
        "query_per_second": spec.query_samples / query_elapsed if query_elapsed else 0.0,
        "max_staleness": float(max(staleness, default=0)),
        "mean_staleness": float(np.mean(staleness)) if staleness else 0.0,
        "shed_events": float(shed_events),
        "queue_rejected_total": float(service.queue.rejected_total),
        "network_estimate": snapshot.network_estimate,
    }
    notes = [
        f"soak: {num_reports} reports in chunks of {spec.submit_chunk}, "
        f"batch={spec.batch_size}, watermark={spec.high_watermark}",
        "every shed chunk was retried after a tick; final fold is batch-order independent",
    ]
    last = ticks[-1]
    return ScenarioResult(
        name=scenario.name,
        backend=service.backend,
        small=small,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        steps=sum(t.epoch_steps for t in ticks),
        push_messages=sum(t.push_messages for t in ticks),
        converged_fraction=last.converged_fraction,
        metrics=metrics,
        elapsed_seconds=elapsed,
        notes=notes,
    )


def _run_algorithm(scenario, graph, config, backend_name, root, *, small):
    """Trust-global workload executed by a registered algorithm adapter.

    Builds the *same* world as :func:`_run_trust_global` (identical RNG
    draw order: trust matrix, then target sampling), then hands it to
    the scenario's pinned algorithm. ``steps``/``push_messages`` on the
    result carry the adapter's unified ``rounds``/``messages`` columns
    (each adapter's docstring states its counting rule).
    """
    from repro.trust.matrix import complete_trust_matrix, random_trust_matrix

    algo = scenario.algorithm.build()
    n = graph.num_nodes
    if scenario.workload.observations == "complete":
        trust = complete_trust_matrix(n, rng=as_generator(int(root.integers(2**62))))
    else:
        trust = random_trust_matrix(graph, rng=as_generator(int(root.integers(2**62))))
    num_targets = min(scenario.workload.num_targets, n)
    target_rng = as_generator(int(root.integers(2**62)))
    targets = sorted(int(t) for t in target_rng.choice(n, size=num_targets, replace=False))

    if algo.uses_backend:
        resolved = (
            choose_backend_name(graph, config)
            if backend_name == "auto"
            else resolve_backend_name(backend_name)
        )
    else:
        resolved = "n/a"  # the adapter owns its execution entirely

    start = time.perf_counter()
    outcome = algo.prepare(
        graph, trust, config, targets=targets,
        backend=resolved if algo.uses_backend else "auto",
    ).run()
    elapsed = time.perf_counter() - start

    metrics = {
        "num_targets": float(num_targets),
        "accuracy_rms": outcome.rms_error,
        "max_abs_error": outcome.max_abs_error,
        "messages_per_node": outcome.messages_per_node,
    }
    notes = [
        f"algorithm '{outcome.algorithm}' via the registry adapter; "
        f"{scenario.workload.observations} trust observations",
        "steps/push_messages are the adapter's rounds/messages columns "
        "(counting rule in the adapter docstring)",
    ]
    return ScenarioResult(
        name=scenario.name,
        backend=resolved,
        small=small,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        steps=outcome.rounds,
        push_messages=outcome.messages,
        converged_fraction=float(outcome.converged),
        metrics=metrics,
        elapsed_seconds=elapsed,
        notes=notes,
    )


def _run_mean(scenario, graph, config, backend, root):
    """Uniform-gossip mean estimation (optionally under churn)."""
    n = graph.num_nodes
    values = as_generator(int(root.integers(2**62))).random(n)
    truth = float(values.mean())
    outcome = aggregate(graph, values, config, backend=backend)
    errors = np.abs(outcome.estimates.reshape(-1) - truth)
    metrics = {
        "true_mean": truth,
        "max_abs_error": float(errors.max()),
        "mean_abs_error": float(errors.mean()),
        "loss_probability": scenario.churn.loss_probability,
    }
    notes = ["mass-conserving self-push repair keeps the estimate exact under churn"]
    if scenario.network is not None:
        notes.append(f"network conditions: {config.network!r}")
    return outcome, metrics, notes


def _run_trust_global(scenario, graph, config, backend, root):
    """Vector-global reputation aggregation over sampled targets."""
    from repro.trust.matrix import complete_trust_matrix, random_trust_matrix

    n = graph.num_nodes
    if scenario.workload.observations == "complete":
        trust = complete_trust_matrix(n, rng=as_generator(int(root.integers(2**62))))
    else:
        trust = random_trust_matrix(graph, rng=as_generator(int(root.integers(2**62))))
    num_targets = min(scenario.workload.num_targets, n)
    target_rng = as_generator(int(root.integers(2**62)))
    targets = sorted(int(t) for t in target_rng.choice(n, size=num_targets, replace=False))
    outcome = aggregate(
        graph, trust, config, backend=backend, variant="vector-global", targets=targets
    )
    true_values = np.array([trust.column_mean_over_observers(t) for t in targets])
    scale = np.where(np.abs(true_values) > 0, np.abs(true_values), 1.0)
    rel = np.abs(outcome.estimates - true_values[None, :]) / scale[None, :]
    metrics = {
        "num_targets": float(num_targets),
        "max_rel_error": float(rel.max()),
        "mean_rel_error": float(rel.mean()),
    }
    return outcome, metrics, [f"{scenario.workload.observations} trust observations"]


def _run_trust_gclr(scenario, graph, config, backend, root):
    """Full DGT under a registered attack (eq.-18 RMS error), clean vs dirty."""
    from repro.attacks.evaluate import _CleanRunCache, attack_impact
    from repro.attacks.models import CollusionModel, OnOffModel
    from repro.trust.matrix import complete_trust_matrix, random_trust_matrix

    n = graph.num_nodes
    if scenario.workload.observations == "complete":
        trust = complete_trust_matrix(n, rng=as_generator(int(root.integers(2**62))))
    else:
        trust = random_trust_matrix(graph, rng=as_generator(int(root.integers(2**62))))
    model = scenario.attack.build(seed=int(root.integers(2**62)))
    num_targets = min(scenario.workload.num_targets, n)
    target_rng = as_generator(int(root.integers(2**62)))
    targets = sorted(int(t) for t in target_rng.choice(n, size=num_targets, replace=False))
    # Slander-type attacks poison a bounded victim set; uniformly
    # sampled target columns would almost never intersect it at scale
    # and eq. 18 would measure second-order weight noise instead of the
    # attack. Steer half the tracked columns onto seeded victims.
    probe = model.inner if isinstance(model, OnOffModel) and model.inner is not None else model
    if hasattr(probe, "cast"):
        _, victims = probe.cast(n)
        if victims.size:
            half = max(1, num_targets // 2)
            picked = set(
                int(v)
                for v in (
                    victims
                    if victims.size <= half
                    else target_rng.choice(victims, size=half, replace=False)
                )
            )
            # Victims are kept unconditionally; the uniform draw only
            # fills the remaining slots (truncating the sorted union
            # could drop every steered victim again).
            fill = [t for t in targets if t not in picked]
            targets = sorted(picked | set(fill[: max(0, num_targets - len(picked))]))
    clean_cache = _CleanRunCache()
    impact = attack_impact(
        graph, trust, model, targets=targets, config=config, backend=backend,
        _clean_cache=clean_cache,
    )
    metrics = {
        "rms_gclr": impact.rms_gclr,
        "rms_unweighted": impact.rms_unweighted,
        "num_nodes_dirty": float(impact.num_nodes_dirty),
        "loss_probability": scenario.churn.loss_probability,
    }
    if isinstance(model, CollusionModel):
        metrics["num_colluders"] = float(model.attack_for(n).num_colluders)
    if isinstance(model, OnOffModel) and model.on_epochs < model.period:
        # The duty cycle's honest phase: with identical seeds the poison
        # vanishes entirely, so rms must collapse to ~0 — recorded so an
        # oscillating adversary's two faces sit side by side. The shared
        # cache reuses the on-phase clean run; only the (trivially
        # clean-identical) dirty side runs again, as the actual check.
        off = attack_impact(
            graph,
            trust,
            model,
            targets=targets,
            config=config,
            backend=backend,
            epoch=model.on_epochs,
            _clean_cache=clean_cache,
        )
        metrics["rms_gclr_off"] = off.rms_gclr
    notes = [
        f"attack family '{model.name}' ({scenario.attack.kind}); "
        "identical seeds for clean/poisoned runs (gossip noise cancels)",
        f"{scenario.workload.observations} trust observations",
    ]
    return impact.clean_outcome, metrics, notes


def _run_dual_rank(scenario, graph, config, backend, root):
    """Golem-style dual rank: two trust channels gossiped in one V=2 pass."""
    from repro.trust.matrix import complete_trust_matrix, random_trust_matrix

    n = graph.num_nodes

    def build_trust():
        rng = as_generator(int(root.integers(2**62)))
        if scenario.workload.observations == "complete":
            return complete_trust_matrix(n, rng=rng)
        return random_trust_matrix(graph, rng=rng)

    # Two independent opinion worlds: how well peers compute for others,
    # and how well they delegate/pay — Golem's two reputation ranks.
    labels = ("computing", "delegating")
    channels = (build_trust(), build_trust())
    num_targets = min(scenario.workload.num_targets, n)
    target_rng = as_generator(int(root.integers(2**62)))
    targets = sorted(int(t) for t in target_rng.choice(n, size=num_targets, replace=False))

    model = (
        scenario.attack.build(seed=int(root.integers(2**62)))
        if scenario.attack is not None
        else None
    )
    if model is not None and hasattr(model, "cast"):
        # Steer half the tracked columns onto seeded victims, as in
        # trust-gclr: uniformly sampled targets would rarely intersect a
        # bounded victim set and the shift metrics would measure noise.
        _, victims = model.cast(n)
        if victims.size:
            half = max(1, num_targets // 2)
            picked = set(
                int(v)
                for v in (
                    victims
                    if victims.size <= half
                    else target_rng.choice(victims, size=half, replace=False)
                )
            )
            fill = [t for t in targets if t not in picked]
            targets = sorted(picked | set(fill[: max(0, num_targets - len(picked))]))

    # Clean per-channel ground truth *before* the attack poisons reports.
    clean_truth = {
        label: np.array([ch.column_mean_over_observers(t) for t in targets])
        for label, ch in zip(labels, channels)
    }
    notes = [
        "computing + delegating ranks gossiped as 2 channels of one pass "
        "(every sampling draw shared)"
    ]
    if model is not None:
        if hasattr(model, "apply_channels"):
            channels, _ = model.apply_channels(channels, None, epoch=0)
        else:
            poisoned, _ = model.apply(channels[0], None, epoch=0)
            channels = (poisoned,) + channels[1:]
        notes.append(
            f"attack family '{model.name}' poisons one rank; the other channel's "
            "reports stay honest"
        )

    outcome = aggregate(
        graph, list(channels), config, backend=backend,
        variant="vector-global", targets=targets,
    )
    metrics = {
        "num_targets": float(len(targets)),
        "num_channels": float(outcome.num_channels),
    }
    for index, label in enumerate(labels):
        estimates = outcome.channel_estimates(index)
        # Gossip accuracy: against the channel's own (post-attack) truth.
        truth = np.array([channels[index].column_mean_over_observers(t) for t in targets])
        scale = np.where(np.abs(truth) > 0, np.abs(truth), 1.0)
        rel = np.abs(estimates - truth[None, :]) / scale[None, :]
        metrics[f"{label}_max_rel_error"] = float(rel.max())
        metrics[f"{label}_mean_rel_error"] = float(rel.mean())
        # Rank shift: how far the learned rank moved off the *clean*
        # truth — the slander-containment measure.
        clean = clean_truth[label]
        clean_scale = np.where(np.abs(clean) > 0, np.abs(clean), 1.0)
        shift = np.abs(estimates.mean(axis=0) - clean) / clean_scale
        metrics[f"{label}_rank_shift"] = float(shift.max())
    if model is not None:
        poisoned_index = int(getattr(model, "target_channel", 0))
        honest = [label for i, label in enumerate(labels) if i != poisoned_index]
        metrics["slander_shift_poisoned"] = metrics[f"{labels[poisoned_index]}_rank_shift"]
        metrics["slander_shift_contained"] = max(
            metrics[f"{label}_rank_shift"] for label in honest
        )
        notes.append(
            "containment: slander_shift_contained stays at gossip-noise level "
            "while slander_shift_poisoned carries the attack"
        )
    return outcome, metrics, notes


def _run_free_riding(scenario, graph, config, backend, root):
    """Free-riding detection: each node compares itself to the gossiped mean."""
    n = graph.num_nodes
    rng = as_generator(int(root.integers(2**62)))
    free_riders = rng.random(n) < scenario.workload.free_rider_fraction
    # Contribution scores: cooperative peers share generously, free
    # riders barely at all (the Section-3 rational-peer spectrum).
    scores = 0.55 + 0.45 * rng.random(n)
    scores[free_riders] = 0.15 * rng.random(int(free_riders.sum()))
    truth = float(scores.mean())
    outcome = aggregate(graph, scores, config, backend=backend)
    estimates = outcome.estimates.reshape(-1)
    # A node "starves" a requester whose contribution sits far below the
    # network mean it learned via gossip.
    flagged = scores < 0.5 * estimates
    detection = float(flagged[free_riders].mean()) if free_riders.any() else 0.0
    false_pos = float(flagged[~free_riders].mean()) if (~free_riders).any() else 0.0
    metrics = {
        "true_mean_contribution": truth,
        "max_abs_error": float(np.abs(estimates - truth).max()),
        "free_rider_fraction": float(free_riders.mean()),
        "detection_rate": detection,
        "false_positive_rate": false_pos,
    }
    notes = ["free riders flagged by their own locally gossiped mean-contribution estimate"]
    return outcome, metrics, notes
