"""The seeded scenario catalogue.

Sixteen scenarios ship with the repro, spanning the design space the
ROADMAP names; each composes the same axes (topology × workload ×
churn × network × attack × dynamics × service × algorithm × backend),
so new scenarios are a registration call away — no new plumbing. The two
dynamic scenarios (``flash-crowd``, ``steady-churn-100k``) run the
epoch runtime of :mod:`repro.runtime` instead of a single static round,
``service-soak`` streams a seeded report workload through the serving
layer of :mod:`repro.service` (bounded ingest, snapshot swaps,
backpressure), ``million-peer-sharded`` exercises the multi-process
sharded backend at the scale it exists for, three adversary scenarios
(``slander-under-churn``, ``sybil-flood-100k``,
``oscillating-colluders-sharded``) sweep the attack registry of
:mod:`repro.attacks.models` across the backend spectrum,
``computing-vs-delegating`` gossips Golem-style computing + delegating
dual ranks as two channels of a single multi-channel pass under a
cross-channel slander coalition (the honest rank must stay clean), and
three network-conditions scenarios (``wan-vs-lan``, ``flaky-region``,
``partition-under-attack``) drive the link models of
:mod:`repro.network.conditions` — regional latency on the event-driven
async backend, a lossy region, and a scheduled partition healing under
an active adversary. ``absolute-trust-powerlaw`` pins the algorithm
axis: the static-powerlaw world executed by the Absolute Trust fixpoint
through the registry of :mod:`repro.algorithms`.
"""

from __future__ import annotations

from repro.scenarios.spec import (
    AlgorithmSpec,
    AttackSpec,
    ChurnSpec,
    DynamicSpec,
    NetworkSpec,
    Scenario,
    ServiceSpec,
    TopologySpec,
    WorkloadSpec,
    register_scenario,
)

STATIC_POWERLAW = register_scenario(
    Scenario(
        name="static-powerlaw",
        description=(
            "Baseline: vector-global reputation aggregation over sampled targets "
            "on a static preferential-attachment overlay, backend auto-selected."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=200, m=2),
        workload=WorkloadSpec(kind="trust-global", num_targets=20, observations="edge-local"),
        backend="auto",
        xi=1e-5,
        seed=411,
    )
)

CHURN_HEAVY = register_scenario(
    Scenario(
        name="churn-heavy",
        description=(
            "Uniform mean gossip with 30% of pushes lost to churn; the "
            "mass-conserving self-push repair must keep the estimate exact."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=250, m=2),
        workload=WorkloadSpec(kind="mean"),
        churn=ChurnSpec(loss_probability=0.3),
        backend="auto",
        xi=1e-5,
        seed=412,
    )
)

COLLUSION_UNDER_CHURN = register_scenario(
    Scenario(
        name="collusion-under-churn",
        description=(
            "Full DGT (vector-gclr) against 30% colluders in groups of 5 while "
            "20% of pushes are lost — eq.-18 RMS error, clean vs poisoned runs "
            "under identical seeds."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=250, small_num_nodes=80, m=2),
        workload=WorkloadSpec(kind="trust-gclr", num_targets=20, observations="complete"),
        churn=ChurnSpec(loss_probability=0.2),
        attack=AttackSpec(fraction=0.3, group_size=5),
        backend="auto",
        xi=1e-4,
        seed=413,
    )
)

FLASH_CROWD = register_scenario(
    Scenario(
        name="flash-crowd",
        description=(
            "Dynamic network: a 30% arrival surge hits at epoch 2 and churns back "
            "out; epochs warm-start from the pre-surge reputation state."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=5000, small_num_nodes=400, m=2),
        workload=WorkloadSpec(kind="mean"),
        dynamic=DynamicSpec(
            epochs=8,
            join_rate=0.005,
            leave_rate=0.005,
            flash=True,
            spike_epoch=2,
            spike_fraction=0.3,
            opinion_drift=0.01,
            newcomer_trust=0.2,
        ),
        backend="auto",
        xi=1e-5,
        max_steps=400,
        seed=415,
    )
)

STEADY_CHURN_100K = register_scenario(
    Scenario(
        name="steady-churn-100k",
        description=(
            "Dynamic network at 100 000 peers on the sparse CSR backend: 0.2% of "
            "sessions join/leave per epoch, 1% of opinions drift, and warm-start "
            "epochs re-converge in a fraction of the cold-start rounds."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=100_000, small_num_nodes=2000, m=2),
        workload=WorkloadSpec(kind="mean"),
        dynamic=DynamicSpec(
            epochs=6,
            join_rate=0.002,
            leave_rate=0.002,
            opinion_drift=0.01,
            newcomer_trust=0.2,
        ),
        backend="sparse",
        xi=1e-5,
        max_steps=400,
        seed=416,
    )
)

MILLION_PEER_SHARDED = register_scenario(
    Scenario(
        name="million-peer-sharded",
        description=(
            "Scale-out ceiling: uniform mean gossip over a 1M-peer, ~8M-edge "
            "power-law overlay on the multi-process sharded backend (4 workers, "
            "byte-identical for any worker count)."
        ),
        topology=TopologySpec(
            kind="powerlaw-fast", num_nodes=1_000_000, small_num_nodes=3000, m=8
        ),
        workload=WorkloadSpec(kind="mean"),
        backend="sharded",
        xi=1e-4,
        max_steps=50_000,
        seed=417,
        shard_workers=4,
    )
)

SLANDER_UNDER_CHURN = register_scenario(
    Scenario(
        name="slander-under-churn",
        description=(
            "Targeted bad-mouthing while 20% of pushes are lost: 25% slanderers "
            "plant zero-trust reports about a 15% victim set — eq.-18 RMS error, "
            "clean vs poisoned runs under identical seeds."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=250, small_num_nodes=80, m=2),
        workload=WorkloadSpec(kind="trust-gclr", num_targets=30, observations="complete"),
        churn=ChurnSpec(loss_probability=0.2),
        attack=AttackSpec(kind="slandering", fraction=0.25, victim_fraction=0.15),
        backend="auto",
        xi=1e-4,
        seed=418,
    )
)

SYBIL_FLOOD_100K = register_scenario(
    Scenario(
        name="sybil-flood-100k",
        description=(
            "Sybil join flood at 100 000 peers on the sparse CSR backend: a 10% "
            "sybil swarm joins by preferential attachment, praises its operator "
            "and badmouths sampled honest peers; honest peers grant the "
            "strangers the paper's zero initial trust."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=100_000, small_num_nodes=2000, m=2),
        workload=WorkloadSpec(kind="trust-gclr", num_targets=20, observations="edge-local"),
        attack=AttackSpec(kind="sybil", sybil_fraction=0.1, attach_m=2),
        backend="sparse",
        xi=1e-3,
        max_steps=50_000,
        seed=419,
    )
)

OSCILLATING_COLLUDERS_SHARDED = register_scenario(
    Scenario(
        name="oscillating-colluders-sharded",
        description=(
            "On-off adversaries on the sharded backend: 5% oscillators slander a "
            "capped victim set on even epochs and behave honestly on odd ones; "
            "the off-phase rms collapses to 0 under shared seeds (rms_gclr_off)."
        ),
        topology=TopologySpec(
            kind="powerlaw-fast", num_nodes=100_000, small_num_nodes=1500, m=2
        ),
        workload=WorkloadSpec(kind="trust-gclr", num_targets=20, observations="edge-local"),
        attack=AttackSpec(
            kind="on-off",
            fraction=0.05,
            victim_fraction=0.1,
            max_victims=50,
            period=2,
            on_epochs=1,
        ),
        backend="sharded",
        xi=1e-3,
        max_steps=50_000,
        seed=420,
    )
)

SERVICE_SOAK = register_scenario(
    Scenario(
        name="service-soak",
        description=(
            "Serving-layer soak: a seeded report stream is pushed through the "
            "reputation service's bounded ingest queue in chunks (watermark "
            "shedding included); every tick folds a batch, runs one warm-start "
            "epoch and swaps an immutable snapshot — measured for ingest "
            "throughput, staleness, and lock-free query rate."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=150, m=2),
        workload=WorkloadSpec(kind="mean"),
        service=ServiceSpec(
            num_reports=20_000,
            small_num_reports=1_200,
            batch_size=512,
            high_watermark=768,  # < stream size at both scales: shedding is exercised
            submit_chunk=256,
        ),
        backend="auto",
        xi=1e-4,
        max_steps=400,
        seed=421,
    )
)

COMPUTING_VS_DELEGATING = register_scenario(
    Scenario(
        name="computing-vs-delegating",
        description=(
            "Golem-style dual rank: independent computing and delegating trust "
            "matrices gossiped as two reputation channels of one V=2 pass "
            "(every sampling draw shared) while a 20% cross-channel slander "
            "coalition bad-mouths a 10% victim set on the computing rank only — "
            "the delegating rank's shift must stay at gossip-noise level."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=200, m=2),
        workload=WorkloadSpec(kind="dual-rank", num_targets=20, observations="edge-local"),
        attack=AttackSpec(
            kind="cross-channel-slander",
            fraction=0.2,
            victim_fraction=0.1,
            target_channel=0,
        ),
        backend="auto",
        xi=1e-5,
        seed=422,
    )
)

WAN_VS_LAN = register_scenario(
    Scenario(
        name="wan-vs-lan",
        description=(
            "Network realism on the event-driven async backend: a regional "
            "overlay (dense LAN blocks, sparse WAN links) where intra-region "
            "pushes land after a short exponential delay and cross-region "
            "pushes take 10x longer through a bandwidth-capped WAN pipe — "
            "mass stays exactly conserved across all in-flight traffic."
        ),
        topology=TopologySpec(
            kind="regional",
            num_nodes=1000,
            small_num_nodes=150,
            num_regions=4,
            intra_p=0.08,
            inter_p=0.005,
        ),
        workload=WorkloadSpec(kind="mean"),
        network=NetworkSpec(
            kind="regional",
            num_regions=4,
            latency_kind="exponential",
            latency_mean=0.05,
            inter_latency_mean=0.5,
            inter_bandwidth=50.0,
        ),
        backend="auto",  # latency steers this to "async"
        xi=1e-4,
        max_steps=5_000,
        seed=423,
    )
)

FLAKY_REGION = register_scenario(
    Scenario(
        name="flaky-region",
        description=(
            "One region of four drops 40% of the pushes it sends or receives "
            "(on top of mild uniform loss) while everyone gossips the network "
            "mean: the mass-conserving self-redirect keeps the estimate exact, "
            "the flaky region just converges last."
        ),
        topology=TopologySpec(
            kind="regional",
            num_nodes=1000,
            small_num_nodes=150,
            num_regions=4,
            intra_p=0.08,
            inter_p=0.005,
        ),
        workload=WorkloadSpec(kind="mean"),
        network=NetworkSpec(
            kind="regional",
            num_regions=4,
            loss=0.02,
            inter_loss=0.05,
            latency_kind="exponential",
            latency_mean=0.05,
            inter_latency_mean=0.2,
            flaky_region=2,
            flaky_loss=0.4,
        ),
        backend="auto",
        xi=1e-4,
        max_steps=5_000,
        seed=424,
    )
)

PARTITION_UNDER_ATTACK = register_scenario(
    Scenario(
        name="partition-under-attack",
        description=(
            "A scheduled partition splits the dynamic overlay into two groups "
            "for epochs 3-6 while on-off slanderers keep poisoning reports; "
            "overlay repair stays group-scoped during the window, the cut "
            "edges heal at epoch 7, and the re-joined network re-converges "
            "warm to one global estimate."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=300, m=2),
        workload=WorkloadSpec(kind="mean"),
        network=NetworkSpec(
            kind="regional",
            num_regions=2,
            partition_start=3,
            partition_duration=4,
            partition_groups=2,
        ),
        attack=AttackSpec(
            kind="on-off",
            fraction=0.05,
            victim_fraction=0.1,
            max_victims=20,
            period=2,
            on_epochs=1,
        ),
        dynamic=DynamicSpec(
            epochs=10,
            join_rate=0.005,
            leave_rate=0.005,
            opinion_drift=0.01,
            newcomer_trust=0.2,
        ),
        backend="auto",
        xi=1e-5,
        max_steps=400,
        seed=425,
    )
)

ABSOLUTE_TRUST_POWERLAW = register_scenario(
    Scenario(
        name="absolute-trust-powerlaw",
        description=(
            "Algorithm axis: the static-powerlaw trust-global world executed by "
            "the Absolute Trust fixpoint baseline (arXiv:1601.01419) through the "
            "algorithm registry — seeded random start, oscillation-damped "
            "iteration, messages counted as iterations x explicit reports."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=200, m=2),
        workload=WorkloadSpec(kind="trust-global", num_targets=20, observations="edge-local"),
        algorithm=AlgorithmSpec(kind="absolute-trust"),
        backend="auto",
        xi=1e-5,
        seed=426,
    )
)

FREE_RIDING_500K = register_scenario(
    Scenario(
        name="free-riding-500k",
        description=(
            "Free-riding detection at 500 000 nodes on the sparse CSR backend: "
            "every node gossips its contribution score and flags itself against "
            "the learned network mean."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=500_000, small_num_nodes=2000, m=2),
        workload=WorkloadSpec(kind="free-riding", free_rider_fraction=0.2),
        backend="sparse",
        xi=1e-3,
        max_steps=50_000,
        seed=414,
    )
)
