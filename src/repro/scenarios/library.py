"""The seeded scenario catalogue.

Four scenarios ship with the repro, one per corner of the design space
the ROADMAP names; each composes the same five axes (topology ×
workload × churn × attack × backend), so new scenarios are a
registration call away — no new plumbing.
"""

from __future__ import annotations

from repro.scenarios.spec import (
    AttackSpec,
    ChurnSpec,
    Scenario,
    TopologySpec,
    WorkloadSpec,
    register_scenario,
)

STATIC_POWERLAW = register_scenario(
    Scenario(
        name="static-powerlaw",
        description=(
            "Baseline: vector-global reputation aggregation over sampled targets "
            "on a static preferential-attachment overlay, backend auto-selected."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=200, m=2),
        workload=WorkloadSpec(kind="trust-global", num_targets=20, observations="edge-local"),
        backend="auto",
        xi=1e-5,
        seed=411,
    )
)

CHURN_HEAVY = register_scenario(
    Scenario(
        name="churn-heavy",
        description=(
            "Uniform mean gossip with 30% of pushes lost to churn; the "
            "mass-conserving self-push repair must keep the estimate exact."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=2000, small_num_nodes=250, m=2),
        workload=WorkloadSpec(kind="mean"),
        churn=ChurnSpec(loss_probability=0.3),
        backend="auto",
        xi=1e-5,
        seed=412,
    )
)

COLLUSION_UNDER_CHURN = register_scenario(
    Scenario(
        name="collusion-under-churn",
        description=(
            "Full DGT (vector-gclr) against 30% colluders in groups of 5 while "
            "20% of pushes are lost — eq.-18 RMS error, clean vs poisoned runs "
            "under identical seeds."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=250, small_num_nodes=80, m=2),
        workload=WorkloadSpec(kind="trust-gclr", num_targets=20, observations="complete"),
        churn=ChurnSpec(loss_probability=0.2),
        attack=AttackSpec(fraction=0.3, group_size=5),
        backend="dense",
        xi=1e-4,
        seed=413,
    )
)

FREE_RIDING_500K = register_scenario(
    Scenario(
        name="free-riding-500k",
        description=(
            "Free-riding detection at 500 000 nodes on the sparse CSR backend: "
            "every node gossips its contribution score and flags itself against "
            "the learned network mean."
        ),
        topology=TopologySpec(kind="powerlaw", num_nodes=500_000, small_num_nodes=2000, m=2),
        workload=WorkloadSpec(kind="free-riding", free_rider_fraction=0.2),
        backend="sparse",
        xi=1e-3,
        max_steps=50_000,
        seed=414,
    )
)
