"""Command-line entry point: ``python -m repro.scenarios run <name>``."""

from __future__ import annotations

import argparse
import sys

from repro.scenarios import available_scenarios, get_scenario, run_scenario


def main(argv=None) -> int:
    """Run or list scenarios; print each result block."""
    epilog = (
        "Docs: docs/architecture.md (layer map + the scenario catalogue), "
        "docs/service.md (the service-soak serving layer), "
        "docs/benchmarks.md (artifact reference)."
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run composable gossip scenarios (topology x workload x churn x attack x backend).",
        epilog=epilog,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios", epilog=epilog)

    run_parser = sub.add_parser("run", help="run one scenario (or 'all')", epilog=epilog)
    run_parser.add_argument("name", help="scenario name (see 'list'), or 'all'")
    run_parser.add_argument(
        "--small",
        action="store_true",
        help="CI-smoke shape: the scenario's small node count",
    )
    run_parser.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    run_parser.add_argument(
        "--backend",
        default=None,
        help="override the scenario backend (any registered name, or 'auto')",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sharded backend: worker count (outcomes are identical for any value)",
    )
    run_parser.add_argument(
        "--executor",
        choices=("inline", "threads", "processes"),
        default=None,
        help="sharded backend: shard executor (outcomes are identical for any choice)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in available_scenarios():
            print(f"{name:24s} {get_scenario(name).description}")
        return 0

    names = list(available_scenarios()) if args.name == "all" else [args.name]
    try:
        for name in names:
            get_scenario(name)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    for name in names:
        result = run_scenario(
            name,
            small=args.small,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
            executor=args.executor,
        )
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
