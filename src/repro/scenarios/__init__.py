"""Composable scenario layer: topology × workload × churn × attack × backend.

Scenarios are data (:class:`~repro.scenarios.spec.Scenario`), executed
through the :func:`repro.aggregate` facade so every registered gossip
backend can carry every workload; dynamic scenarios drive the epoch
runtime of :mod:`repro.runtime` and ``service-soak`` drives the serving
layer of :mod:`repro.service`. The seeded catalogue lives in
:mod:`repro.scenarios.library` (see
:func:`~repro.scenarios.spec.available_scenarios` or
``python -m repro.scenarios list``); register more with
:func:`~repro.scenarios.spec.register_scenario`.

Run from the command line::

    python -m repro.scenarios list
    python -m repro.scenarios run static-powerlaw --small
    python -m repro.scenarios run all --small --seed 7
"""

from repro.scenarios.spec import (
    AlgorithmSpec,
    AttackSpec,
    ChurnSpec,
    DynamicSpec,
    NetworkSpec,
    Scenario,
    ScenarioResult,
    ServiceSpec,
    TopologySpec,
    WorkloadSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
)
from repro.scenarios import library  # noqa: F401  (registers the seeded catalogue)

__all__ = [
    "AlgorithmSpec",
    "AttackSpec",
    "ChurnSpec",
    "DynamicSpec",
    "NetworkSpec",
    "Scenario",
    "ScenarioResult",
    "ServiceSpec",
    "TopologySpec",
    "WorkloadSpec",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "run_scenario",
]
