"""Composable scenario layer: topology × workload × churn × attack × backend.

Scenarios are data (:class:`~repro.scenarios.spec.Scenario`), executed
through the :func:`repro.aggregate` facade so every registered gossip
backend can carry every workload. Four scenarios ship seeded
(``static-powerlaw``, ``churn-heavy``, ``collusion-under-churn``,
``free-riding-500k``); register more with
:func:`~repro.scenarios.spec.register_scenario`.

Run from the command line::

    python -m repro.scenarios list
    python -m repro.scenarios run static-powerlaw --small
    python -m repro.scenarios run all --small --seed 7
"""

from repro.scenarios.spec import (
    AttackSpec,
    ChurnSpec,
    DynamicSpec,
    Scenario,
    ScenarioResult,
    TopologySpec,
    WorkloadSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
)
from repro.scenarios import library  # noqa: F401  (registers the seeded catalogue)

__all__ = [
    "AttackSpec",
    "ChurnSpec",
    "DynamicSpec",
    "Scenario",
    "ScenarioResult",
    "TopologySpec",
    "WorkloadSpec",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "run_scenario",
]
