"""Result records returned by the gossip engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.state import ratios


@dataclass
class GossipOutcome:
    """Everything a gossip round produced.

    Attributes
    ----------
    values:
        Final gossip values, shape ``(N, d)``.
    weights:
        Final gossip weights, shape ``(N, d)``.
    extras:
        Final values of any extra components gossiped alongside (e.g.
        Algorithm 2's ``count``), keyed by name.
    steps:
        Gossip steps executed until every node stopped.
    push_messages:
        Gossip pushes transmitted (self-pushes excluded; pushes lost to
        churn are counted — they were sent).
    protocol_messages:
        Non-push protocol traffic: the round-start degree announcements
        (each node pushes its degree to every neighbour, enabling the
        differential ratio) and the per-node convergence announcements.
    converged:
        Per-node convergence flags at termination.
    num_channels:
        Number of independent reputation channels ``V`` gossiped in
        this round (channel-major column layout: channel ``c`` owns
        columns ``[c * d/V, (c+1) * d/V)``). 1 for classic
        single-channel gossip.
    channel_converged:
        Optional ``(N, V)`` per-channel convergence latches at
        termination (multi-channel rounds only).
    ratio_history:
        Optional per-step snapshots of the ``(N, d)`` ratio array
        (present only when history tracking was requested).

    Examples
    --------
    >>> import numpy as np
    >>> outcome = GossipOutcome(
    ...     values=np.array([[4.0], [5.0]]), weights=np.array([[2.0], [2.0]]),
    ...     extras={}, steps=3, push_messages=6,
    ...     converged=np.array([True, True]))
    >>> outcome.estimates.tolist()
    [[2.0], [2.5]]
    >>> outcome.num_nodes
    2
    """

    values: np.ndarray
    weights: np.ndarray
    extras: Dict[str, np.ndarray]
    steps: int
    push_messages: int
    converged: np.ndarray
    protocol_messages: int = 0
    active_node_steps: int = 0
    ratio_history: Optional[List[np.ndarray]] = field(default=None, repr=False)
    num_channels: int = 1
    channel_converged: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_nodes(self) -> int:
        """Number of nodes that gossiped."""
        return int(self.values.shape[0])

    @property
    def num_components(self) -> int:
        """Number of gossiped components ``d``."""
        return int(self.values.shape[1]) if self.values.ndim == 2 else 1

    @property
    def components_per_channel(self) -> int:
        """Columns owned by each reputation channel (``d / V``)."""
        return self.num_components // self.num_channels

    def channel_slice(self, channel: int) -> slice:
        """Column slice of ``values``/``weights`` owned by ``channel``."""
        if not 0 <= channel < self.num_channels:
            raise IndexError(
                f"channel {channel} outside 0..{self.num_channels - 1}"
            )
        width = self.components_per_channel
        return slice(channel * width, (channel + 1) * width)

    def channel_estimates(self, channel: int) -> np.ndarray:
        """Per-node estimates restricted to one reputation channel."""
        return self.estimates[:, self.channel_slice(channel)]

    @property
    def estimates(self) -> np.ndarray:
        """Per-node estimates ``y / g`` (sentinel where weight is 0)."""
        return ratios(self.values, self.weights)

    def extra_estimates(self, name: str) -> np.ndarray:
        """Ratio ``extra / g`` for a named side component (e.g. ``count``)."""
        if name not in self.extras:
            raise KeyError(f"no extra component named {name!r}; have {sorted(self.extras)}")
        return ratios(self.extras[name], self.weights)

    @property
    def total_messages(self) -> int:
        """All network messages: gossip pushes plus protocol traffic."""
        return self.push_messages + self.protocol_messages

    @property
    def messages_per_node_per_step(self) -> float:
        """Paper Table 2's metric: messages per actively gossiping node-step.

        The numerator includes protocol overhead (degree and convergence
        announcements); the denominator counts node-steps in which the
        node was actually gossiping (stopped nodes send nothing). The
        value therefore sits a little above the population mean of the
        differential ratio ``k_i`` (~1.1 on PA graphs) and shrinks with
        N and with tighter ``xi`` as the fixed overhead amortises over
        longer rounds — the paper's Table 2 observation.
        """
        if self.active_node_steps == 0:
            return 0.0
        return self.total_messages / self.active_node_steps

    @property
    def messages_per_node_per_wallclock_step(self) -> float:
        """Total messages / (N * steps): averages over stopped nodes too."""
        if self.steps == 0:
            return 0.0
        return self.total_messages / (self.num_nodes * self.steps)
