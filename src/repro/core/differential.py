"""The differential push rule (Section 4.1.1).

Plain push gossip stalls on power-law graphs: a hub with degree ``d``
pushing once per step needs ``Theta(d)`` steps just to touch each of its
neighbours. The paper's fix is *differential* push — node ``i`` makes

``k_i = round(deg(i) / mean degree of i's neighbours)``     (>= 1)

pushes per step, so hubs push proportionally harder without any node
having to know whether it *is* a hub: both quantities are local (each
node learns neighbour degrees from one degree-announcement push at round
start).

``k_i`` is rounded to the nearest integer when the ratio is >= 1 and
forced to 1 otherwise. Rounding uses round-half-up so the rule is
deterministic across platforms (banker's rounding would map 2.5 -> 2).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.network.graph import Graph


class PushCountClampWarning(UserWarning):
    """An explicit push count exceeded its node's degree and was clamped.

    Emitted by :func:`resolve_push_counts` in non-strict (message
    engine) mode. The count is clamped to the node's degree — "push to
    every neighbour" — because a larger ``k`` cannot buy more traffic
    (pushes go to *distinct* neighbours) but *would* corrupt the mass
    split: the engine divides state into ``k + 1`` shares and delivers
    only ``degree + 1`` of them, so an unclamped oversized count
    silently destroys ``(k - degree) / (k + 1)`` of the gossip mass.
    Strict mode raises instead.
    """


def push_ratio(graph: Graph) -> np.ndarray:
    """Raw ratio ``deg(i) / mean neighbour degree`` per node.

    Isolated nodes (degree 0) get ratio 0; they cannot push at all and
    the engines exclude them from convergence requirements.
    """
    degrees = graph.degrees.astype(np.float64)
    avg = graph.average_neighbor_degrees
    out = np.zeros(graph.num_nodes, dtype=np.float64)
    np.divide(degrees, avg, out=out, where=avg > 0.0)
    return out


def push_counts(graph: Graph) -> np.ndarray:
    """Differential push counts ``k_i`` for every node.

    Parameters
    ----------
    graph:
        Topology; degrees and neighbour degrees are read from it.

    Returns
    -------
    numpy.ndarray
        Integer array of per-node push counts, each >= 1 (except
        isolated nodes, which get 0 since they have nobody to push to).
        ``k_i`` never exceeds ``deg(i)``: pushes go to *distinct*
        neighbours, and since every neighbour has degree >= 1 the mean
        neighbour degree is >= 1, hence ``k_i <= deg(i)`` already — the
        clamp below only documents the invariant.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> push_counts(example_network()).tolist()
    [1, 1, 3, 1, 1, 1, 1, 1, 1, 1]
    """
    ratio = push_ratio(graph)
    degrees = graph.degrees
    # round-half-up for ratio >= 1; k = 1 for 0 < ratio < 1.
    k = np.where(ratio >= 1.0, np.floor(ratio + 0.5), 1.0).astype(np.int64)
    k = np.minimum(k, degrees)
    k[degrees == 0] = 0
    return k


# Module-internal alias: resolve_push_counts' parameter shadows the name.
push_counts_differential = push_counts


def resolve_push_counts(
    graph: Graph,
    push_counts: np.ndarray | None = None,
    *,
    strict: bool = True,
) -> np.ndarray:
    """Default + validate per-node push counts for an engine constructor.

    This is the single definition of the per-hub push-count contract the
    gossip engines share (previously each engine re-implemented it):

    - ``push_counts=None`` resolves to the differential rule
      (:func:`push_counts`);
    - an explicit array must be one integer per node;
    - under ``strict`` (the vectorised engines), no count may exceed the
      node's degree (pushes go to *distinct* neighbours) and every
      non-isolated node must push at least once per step;
    - under ``strict=False`` (the message-level engine) a count above
      the node's degree is *clamped to the degree* with a
      :class:`PushCountClampWarning`. Clamping here — rather than at
      send time — matters for correctness, not just hygiene: the
      message engine splits state into ``k + 1`` shares, so a ``k``
      above the number of deliverable targets would leak
      ``(k - degree) / (k + 1)`` of the gossip mass every step (see the
      warning class docstring).

    Returns a fresh ``int64`` array of shape ``(num_nodes,)``.
    """
    if push_counts is None:
        return push_counts_differential(graph)
    counts = np.asarray(push_counts, dtype=np.int64)
    if counts.shape != (graph.num_nodes,):
        raise ValueError(
            f"push_counts must have shape ({graph.num_nodes},), got {counts.shape}"
        )
    oversized = int(np.count_nonzero(counts > graph.degrees))
    if strict:
        if oversized:
            raise ValueError(
                "push_counts may not exceed node degree (pushes go to distinct neighbours)"
            )
        if np.any((counts < 1) & (graph.degrees > 0)):
            raise ValueError("every non-isolated node must push at least once per step")
        return counts.copy()
    if oversized:
        warnings.warn(
            f"{oversized} push count(s) exceed their node's degree and were clamped "
            "to 'push to every neighbour' — pushes go to distinct neighbours, and an "
            "unclamped excess would corrupt the (k + 1)-way mass split",
            PushCountClampWarning,
            stacklevel=2,
        )
        counts = np.minimum(counts, graph.degrees)
    return counts.copy()


def fixed_push_counts(graph: Graph, k: int) -> np.ndarray:
    """Uniform push counts (``k_i = k`` for all nodes), for baselines/ablations.

    ``k = 1`` reproduces normal push gossip (push-sum). Counts are still
    clamped to node degree so a leaf is never asked to pick two distinct
    neighbours.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counts = np.minimum(np.full(graph.num_nodes, k, dtype=np.int64), graph.degrees)
    counts[graph.degrees == 0] = 0
    return counts


def messages_per_step(counts: np.ndarray, active: np.ndarray | None = None) -> int:
    """Network messages one gossip step costs (self-pushes are local, not counted).

    Parameters
    ----------
    counts:
        Per-node push counts.
    active:
        Optional boolean mask of nodes still gossiping; stopped nodes
        send nothing.
    """
    counts = np.asarray(counts)
    if active is not None:
        active = np.asarray(active, dtype=bool)
        if active.shape != counts.shape:
            raise ValueError(f"shape mismatch: counts {counts.shape} vs active {active.shape}")
        return int(counts[active].sum())
    return int(counts.sum())
