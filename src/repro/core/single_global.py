"""Algorithm 1 — global reputation aggregation for a single node.

Every node that holds a direct opinion ``t_ij`` about the target ``j``
starts with gossip pair ``(t_ij, 1)``; everyone else starts with
``(0, 0)``. Push-sum then drives every node's ratio to

``sum_i t_ij / #observers``,

the mean opinion over the nodes that have actually interacted with
``j``. That is the convention Algorithm 1's pseudocode encodes. The
surrounding text (eq. 1) instead divides by ``N`` — the mean over *all*
nodes, strangers counting as 0 — which corresponds to starting every
node with gossip weight 1. Both conventions are implemented and selected
by ``convention``; the discrepancy is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.core.backend import GossipConfig, run_backend
from repro.core.results import GossipOutcome
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike

Convention = Literal["observers", "all"]
#: Any registered backend name ("dense", "message", "sparse", ...);
#: "vector" remains as a registry alias of "dense".
EngineName = str


@dataclass
class SingleGlobalResult:
    """Outcome of Algorithm 1 for one target node.

    Attributes
    ----------
    target:
        The node whose reputation was aggregated.
    estimates:
        Per-node estimate of the target's global reputation, length N.
    true_value:
        The exact value gossip is estimating (for error reporting).
    outcome:
        Raw engine outcome (steps, messages, convergence flags...).
    """

    target: int
    estimates: np.ndarray
    true_value: float
    outcome: GossipOutcome

    @property
    def max_relative_error(self) -> float:
        """Worst per-node relative estimation error vs the true value."""
        if self.true_value == 0.0:
            return float(np.abs(self.estimates).max())
        return float(np.abs(self.estimates - self.true_value).max() / abs(self.true_value))


def initial_state_single_global(
    trust: TrustMatrix, target: int, convention: Convention = "observers"
) -> tuple:
    """Initial ``(values, weights)`` vectors for Algorithm 1.

    Exposed separately so tests and baselines can reuse the exact
    initialisation.
    """
    n = trust.num_nodes
    values = np.zeros(n, dtype=np.float64)
    weights = np.zeros(n, dtype=np.float64)
    for observer, value in trust.column(target).items():
        values[observer] = value
        weights[observer] = 1.0
    if convention == "all":
        weights[:] = 1.0
    elif convention != "observers":
        raise ValueError(f"convention must be 'observers' or 'all', got {convention!r}")
    return values, weights


def true_single_global(trust: TrustMatrix, target: int, convention: Convention = "observers") -> float:
    """The exact quantity Algorithm 1 estimates for ``target``."""
    if convention == "all":
        return trust.column_mean_over_all(target)
    if convention == "observers":
        return trust.column_mean_over_observers(target)
    raise ValueError(f"convention must be 'observers' or 'all', got {convention!r}")


def aggregate_single_global(
    graph: Graph,
    trust: TrustMatrix,
    target: int,
    *,
    xi: float = 1e-4,
    convention: Convention = "observers",
    engine: EngineName = "vector",
    backend: Optional[str] = None,
    push_counts: Optional[np.ndarray] = None,
    loss_model: Optional[PacketLossModel] = None,
    rng: RngLike = None,
    max_steps: int = 10_000,
    track_history: bool = False,
    patience: int = 3,
) -> SingleGlobalResult:
    """Run Algorithm 1: estimate ``target``'s global reputation at every node.

    Parameters
    ----------
    graph:
        Overlay topology the gossip runs over.
    trust:
        Sparse local trust matrix ``t_ij``.
    target:
        Node ``j`` whose reputation is aggregated.
    xi:
        Gossip error tolerance.
    convention:
        ``"observers"`` (Algorithm 1 pseudocode: average over opining
        nodes) or ``"all"`` (eq. 1: average over all ``N`` nodes).
    engine:
        Backend name from :func:`repro.core.backend.available_backends`
        (``"vector"`` is an alias of ``"dense"``). Kept for backwards
        compatibility — prefer ``backend``.
    backend:
        Backend name (overrides ``engine``); ``"auto"`` picks by graph
        size. See :func:`repro.aggregate` for the facade form.
    push_counts:
        Override the differential push counts (baselines/ablations).
    loss_model:
        Optional churn model (Figure 4 experiments).
    rng:
        Seed / generator.
    max_steps:
        Safety limit before :class:`repro.core.errors.ConvergenceError`.
    track_history:
        Keep per-step ratio snapshots in the outcome.

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> from repro.trust.matrix import random_trust_matrix
    >>> g = preferential_attachment_graph(60, m=2, rng=1)
    >>> t = random_trust_matrix(g, rng=2)
    >>> result = aggregate_single_global(g, t, target=5, xi=1e-5, rng=3)
    >>> result.max_relative_error < 0.01
    True
    """
    if graph.num_nodes != trust.num_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes but trust matrix has {trust.num_nodes}"
        )
    if not 0 <= target < graph.num_nodes:
        raise ValueError(f"target {target} outside 0..{graph.num_nodes - 1}")

    values, weights = initial_state_single_global(trust, target, convention)
    outcome = run_backend(
        graph,
        values,
        weights,
        config=GossipConfig(
            xi=xi,
            push_counts=push_counts,
            loss_model=loss_model,
            rng=rng,
            max_steps=max_steps,
            track_history=track_history,
            patience=patience,
        ),
        backend=backend if backend is not None else engine,
    )

    return SingleGlobalResult(
        target=target,
        estimates=outcome.estimates.reshape(-1),
        true_value=true_single_global(trust, target, convention),
        outcome=outcome,
    )
