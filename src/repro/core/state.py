"""Gossip state primitives: pairs, ratios and mass accounting.

Differential gossip tracks, per node, a *gossip pair* ``(y, g)`` — a
value component and a weight component that are always split, shipped
and summed together. The estimate a node holds at any instant is the
ratio ``y / g``; push-sum's mass-conservation property guarantees the
global sums of ``y`` and of ``g`` never change, so every node's ratio
converges to ``sum(y_0) / sum(g_0)``.

The paper's pseudocode sets the ratio to the sentinel ``u = 10`` while a
node's weight is still zero (the ratio is undefined until some weight
mass arrives); :data:`UNDEFINED_RATIO` preserves that convention, and
because trust values live in ``[0, 1]`` the sentinel can never collide
with a legitimate converged value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import UnsupportedDtypeError

#: Gossip state precisions the vectorised engines implement. float64 is
#: the reference; float32 halves state memory traffic at ~1e-4-scale
#: relative drift over a round (bounded by the kernel parity suite).
SUPPORTED_STATE_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def resolve_state_dtype(dtype) -> np.dtype:
    """Validate and normalise a gossip state dtype request.

    Raises
    ------
    repro.core.errors.UnsupportedDtypeError
        For any dtype outside :data:`SUPPORTED_STATE_DTYPES` — the
        engines never silently cast to a different precision.
    """
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_STATE_DTYPES:
        supported = ", ".join(str(d) for d in SUPPORTED_STATE_DTYPES)
        raise UnsupportedDtypeError(
            f"gossip state dtype {resolved} is not supported; choose one of: {supported}"
        )
    return resolved


#: Sentinel ratio used while a node's gossip weight is exactly zero
#: (paper: "otherwise u <- 10").
UNDEFINED_RATIO: float = 10.0

#: Relative tolerance for mass-conservation assertions. Each gossip step
#: performs O(N) float additions, so drift scales with N * eps.
MASS_RTOL: float = 1e-9

#: Mass-conservation tolerance for float32 gossip state. float32 eps is
#: ~2e-7 (9 decimal digits fewer than float64), so the same N-scaled
#: drift model needs a proportionally looser base tolerance.
MASS_RTOL_FLOAT32: float = 1e-5


def mass_rtol_for(dtype) -> float:
    """Base mass-conservation tolerance for a gossip state dtype."""
    return MASS_RTOL_FLOAT32 if np.dtype(dtype) == np.float32 else MASS_RTOL


@dataclass
class GossipPair:
    """A single node's gossip pair ``(value, weight)``.

    The message-level engine ships these between mailboxes; the
    vectorised engine stores the same quantities as array columns.
    """

    value: float
    weight: float

    def ratio(self) -> float:
        """Current estimate ``value / weight`` (sentinel when weight is 0)."""
        if self.weight == 0.0:
            return UNDEFINED_RATIO
        return self.value / self.weight

    def split(self, shares: int) -> "GossipPair":
        """One of ``shares`` equal fragments of this pair.

        A node making ``k`` pushes splits its pair into ``k + 1`` shares
        (one kept for itself), so ``shares = k + 1``.
        """
        if shares < 1:
            raise ValueError(f"shares must be >= 1, got {shares}")
        return GossipPair(self.value / shares, self.weight / shares)

    def __add__(self, other: "GossipPair") -> "GossipPair":
        return GossipPair(self.value + other.value, self.weight + other.weight)

    def __iadd__(self, other: "GossipPair") -> "GossipPair":
        self.value += other.value
        self.weight += other.weight
        return self


def ratios(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Element-wise ``values / weights`` with the zero-weight sentinel.

    Parameters
    ----------
    values, weights:
        Arrays of identical shape (any dimensionality).

    Returns
    -------
    numpy.ndarray
        ``values / weights`` where ``weights != 0``;
        :data:`UNDEFINED_RATIO` elsewhere.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.shape != weights.shape:
        raise ValueError(f"shape mismatch: values {values.shape} vs weights {weights.shape}")
    out = np.full_like(values, UNDEFINED_RATIO)
    np.divide(values, weights, out=out, where=weights != 0.0)
    return out


def assert_mass_conserved(
    initial_total: float,
    current: np.ndarray,
    *,
    label: str,
    rtol: float = MASS_RTOL,
) -> None:
    """Raise ``RuntimeError`` if gossip mass drifted beyond tolerance.

    Mass conservation (Proposition A.1) is the core invariant of
    push-sum-style gossip; both engines call this every step so that an
    implementation bug surfaces as a loud failure, not a skewed result.

    Parameters
    ----------
    initial_total:
        Sum of the component at round start.
    current:
        Current per-node component values.
    label:
        Human-readable component name for the error message.
    rtol:
        Relative tolerance (absolute when ``initial_total`` is 0).
    """
    total = float(np.asarray(current, dtype=np.float64).sum())
    scale = max(abs(initial_total), 1.0)
    if abs(total - initial_total) > rtol * scale:
        raise RuntimeError(
            f"gossip mass not conserved for {label}: "
            f"started at {initial_total!r}, now {total!r}"
        )
