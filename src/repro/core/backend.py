"""Unified gossip backend registry.

The repro grew several engines that all execute the paper's differential
push rule at different fidelity/scale trade-offs — the protocol-faithful
message simulation, the dense numpy engine, the CSR sparse engine and
the event-driven asynchronous engine. Before this module, every caller
hard-coded one of them; scaling an experiment onto a faster engine meant
hand-porting it. This module makes the engine a *named backend* behind
one protocol:

- :class:`GossipConfig` captures every shared knob of a gossip round
  (push counts ``k_i``, GCLR weighting constants, the Δ re-push
  threshold, the convergence criterion, randomness, packet loss);
- :class:`GossipBackend` is the protocol all engines are adapted to:
  ``run(graph, values, weights, extras=..., config=...) ->``
  :class:`repro.core.results.GossipOutcome`;
- :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` manage the registry ("message", "dense",
  "sparse", "sharded", "async" ship built-in; "vector" is an alias of
  "dense");
- :func:`choose_backend_name` implements the ``"auto"`` policy —
  message → dense → sparse → sharded by node count and edge count;
- :func:`run_backend` is the engine-level entry the
  :func:`repro.aggregate` facade, the variant entry points and the
  dynamic-network runtime (:mod:`repro.runtime`, which chains
  fixed-budget calls via ``supports_run_to_max`` backends) share.

Backends differ only in *how* they execute the update rule; identical
configs converge to identical fixpoints (the cross-backend equivalence
suite pins agreement to 1e-8), while the random streams — and therefore
step-by-step trajectories — are backend-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.core.differential import fixed_push_counts
from repro.core.errors import GossipError, UnsupportedDtypeError
from repro.core.results import GossipOutcome
from repro.core.state import resolve_state_dtype
from repro.core.weights import WeightParams
from repro.network.conditions import InstantLink, LinkModel, PacketLossModel
from repro.network.graph import Graph
from repro.utils.hardware import usable_cpu_count
from repro.utils.rng import RngLike, spawn_child, stateless_child_sequence

#: Spawn key of the loss-model stream derived by GossipConfig.materialize.
#: Deliberately far above any realistic spawn_seed_sequences sweep index,
#: so churn streams never alias a sweep point's stream (see
#: repro.utils.rng.stateless_child_sequence).
LOSS_STREAM_KEY = 0xFFFF1055


class BackendCapabilityError(GossipError):
    """A backend was asked for a feature it does not implement."""


class UnknownBackendError(KeyError, ValueError):
    """An unregistered backend/engine name was requested.

    Inherits both ``KeyError`` (registry-lookup convention) and
    ``ValueError`` (what the pre-registry entry points raised for a bad
    ``engine=`` argument), so either handling style keeps working.
    """


@dataclass
class GossipConfig:
    """Every shared knob of one gossip aggregation round.

    One config object travels unchanged across backends, so a scenario
    or experiment can switch engines without re-plumbing parameters.

    Attributes
    ----------
    xi:
        Convergence tolerance (per-step estimate movement bound).
    k:
        Fixed per-node push count; ``None`` (default) selects the
        paper's differential rule, ``1`` reproduces normal push gossip.
        Mutually exclusive with ``push_counts``. Caveat: with a small
        fixed ``k`` the per-node xi-movement stop can fire prematurely —
        a node receiving no pushes for ``patience`` steps sees zero
        movement and announces while mixing is still finishing, so
        normal-push estimates may end ~1e-6 off a tight-``xi`` fixpoint.
        That reception starvation is exactly what the differential
        rule's degree-scaled push counts prevent (Section 4.2).
    push_counts:
        Explicit per-node push-count array (ablations); overrides ``k``.
    params:
        GCLR weighting constants ``a``, ``b`` of eq. 2. Engines never
        read them; they are the defaults consumed by the config-aware
        layers — :func:`repro.attacks.evaluate.collusion_impact` and
        :class:`repro.core.rounds.GossipRoundManager` (via its
        ``config=`` argument). The variant entry points keep their own
        explicit ``params=`` keyword.
    delta:
        Algorithm 2's Δ re-push threshold — an opinion is re-announced
        between rounds only when it moved more than this. Like
        ``params``, consumed by
        :class:`repro.core.rounds.GossipRoundManager` when constructed
        with ``config=``, not by single-round engines.
    loss_probability:
        Per-push packet-loss probability; when > 0 and no explicit
        ``loss_model`` is given, a mass-conserving
        :class:`repro.network.churn.PacketLossModel` is derived from
        ``rng``.
    loss_model:
        Explicit churn model (takes precedence over
        ``loss_probability``).
    network:
        Optional :class:`repro.network.conditions.LinkModel` — the
        network-conditions axis (per-edge loss, latency distributions,
        bandwidth caps, regions, partitions). Mutually exclusive with
        the legacy loss knobs. Loss-only models run on every backend
        via :meth:`materialize` (byte-identical to the equivalent
        ``loss_probability``); latency-bearing models need the
        event-driven ``"async"`` backend — synchronous backends raise
        :class:`BackendCapabilityError`, and :func:`choose_backend_name`
        steers such configs to ``"async"`` automatically.
    rng:
        Seed / generator for target selection (and the derived loss
        model, when ``loss_probability`` is used).
    max_steps:
        Safety budget before
        :class:`repro.core.errors.ConvergenceError` (interpreted as a
        simulated-time budget by the async backend).
    patience:
        Consecutive satisfied convergence checks before a node
        announces.
    warmup_steps:
        Steps before convergence checks count (``None`` = engine
        default ``ceil(log2 N) + 1``).
    track_history:
        Record per-step ratio snapshots in the outcome.
    run_to_max:
        Ignore the stop protocol and run exactly ``max_steps`` steps
        (fixed-budget diffusion studies and benchmarks).
    num_shards:
        Sharded backend only: partition granularity. Outcomes of the
        ``"sharded"`` backend depend on ``(rng, num_shards)``, so this
        is a *determinism* knob; ``None`` selects the backend's fixed
        default. Other backends ignore it.
    shard_workers:
        Sharded backend only: worker count or executor name — a pure
        *throughput* knob (any value yields byte-identical outcomes).
        An int sets the worker count under the default executor policy
        (``1`` runs the shard schedule inline with no processes).
        ``None`` selects by graph size. The strings ``"inline"``,
        ``"threads"`` and ``"processes"`` select an executor outright:
        ``"threads"`` runs shards on a thread pool over one in-process
        state array (no shared-memory halo round-trips), ``"processes"``
        forces the shared-memory worker pool, ``"inline"`` forces the
        calling thread. Other backends ignore it.
    dtype:
        Gossip state precision: ``"float64"`` (default, the correctness
        reference) or ``"float32"`` (halves state memory traffic at
        ~1e-4-scale drift). Backends that cannot run the requested
        precision raise
        :class:`repro.core.errors.UnsupportedDtypeError` — state is
        never silently cast (the message and async engines are
        float64-only).
    kernel:
        Push-round kernel for the sparse engine: ``None``/"auto" (best
        available), ``"numba"`` (needs the optional ``kernels`` extra),
        ``"fused"`` (numpy), or ``"unfused"`` (historical reference
        path). Unavailable kernels raise
        :class:`repro.core.kernels.KernelUnavailableError`. Backends
        without a kernel layer (including sharded, whose per-shard
        samplers mirror the unfused path) ignore it.
    num_channels:
        Number of independent reputation channels ``V`` packed
        channel-major into the gossiped value columns (the column count
        must be a multiple of ``V``). All channels share one sampling
        draw and one scatter per step; convergence is judged per
        channel (see
        :class:`repro.core.convergence.ConvergenceProtocol`). The
        dense, sparse and sharded backends support any ``V``; the
        message and async backends are single-channel and raise
        :class:`BackendCapabilityError` for ``V > 1``. Default 1.

    Examples
    --------
    >>> config = GossipConfig(xi=1e-6, k=1, rng=7)
    >>> config.xi, config.k
    (1e-06, 1)
    >>> GossipConfig(xi=-1.0)
    Traceback (most recent call last):
        ...
    ValueError: xi must be positive, got -1.0
    """

    xi: float = 1e-4
    k: Optional[int] = None
    push_counts: Optional[np.ndarray] = None
    params: WeightParams = field(default_factory=WeightParams)
    delta: float = 0.05
    loss_probability: float = 0.0
    loss_model: Optional[PacketLossModel] = None
    network: Optional[LinkModel] = None
    rng: RngLike = None
    max_steps: int = 10_000
    patience: int = 3
    warmup_steps: Optional[int] = None
    track_history: bool = False
    run_to_max: bool = False
    num_shards: Optional[int] = None
    shard_workers: "Optional[int | str]" = None
    dtype: str = "float64"
    kernel: Optional[str] = None
    num_channels: int = 1

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {self.num_channels}")
        if self.xi <= 0:
            raise ValueError(f"xi must be positive, got {self.xi}")
        if self.k is not None and self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.k is not None and self.push_counts is not None:
            raise ValueError("pass either k (uniform) or push_counts (per-node), not both")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(f"loss_probability must be in [0, 1], got {self.loss_probability}")
        if self.network is not None:
            if not isinstance(self.network, LinkModel):
                raise ValueError(
                    f"network must be a repro.network.conditions.LinkModel, "
                    f"got {type(self.network).__name__}"
                )
            if self.loss_probability != 0.0 or self.loss_model is not None:
                raise ValueError(
                    "pass either network= (a LinkModel) or the legacy loss knobs "
                    "(loss_probability / loss_model), not both"
                )
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.delta < 0:
            raise ValueError(f"delta must be >= 0, got {self.delta}")
        if self.num_shards is not None and self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.shard_workers is not None:
            if isinstance(self.shard_workers, str):
                if self.shard_workers not in ("inline", "threads", "processes"):
                    raise ValueError(
                        "shard_workers accepts an int or one of 'inline', 'threads', "
                        f"'processes', got {self.shard_workers!r}"
                    )
            elif self.shard_workers < 1:
                raise ValueError(f"shard_workers must be >= 1, got {self.shard_workers}")
        # Fail on unsupported dtypes at config construction, not deep in
        # an engine — and never silently cast.
        resolve_state_dtype(self.dtype)

    def resolved_push_counts(self, graph: Graph) -> Optional[np.ndarray]:
        """Per-node push counts for ``graph``, or ``None`` for the
        differential default (engines then also announce degrees)."""
        if self.push_counts is not None:
            return np.asarray(self.push_counts, dtype=np.int64)
        if self.k is not None:
            return fixed_push_counts(graph, self.k)
        return None

    def link_stream(self) -> np.random.Generator:
        """The dedicated link/loss-randomness generator.

        Derived *statelessly* from the seed under ``LOSS_STREAM_KEY``
        (int / ``None`` / ``SeedSequence`` seeds), so link randomness
        never perturbs the engine's target-selection stream. Only when
        ``rng`` is an existing ``Generator`` — whose state cannot be
        re-derived — is a child split off, which advances the shared
        stream; call this *before* :meth:`main_stream` in that case and
        prefer seed-like ``rng`` values when comparing against a
        loss-free run.
        """
        if isinstance(self.rng, np.random.Generator):
            return spawn_child(self.rng, key=LOSS_STREAM_KEY)
        root = (
            self.rng
            if isinstance(self.rng, np.random.SeedSequence)
            else np.random.SeedSequence(self.rng)
        )
        return np.random.default_rng(stateless_child_sequence(root, LOSS_STREAM_KEY))

    def main_stream(self) -> np.random.Generator:
        """The engine's target-selection generator, resolved from ``rng``."""
        if isinstance(self.rng, np.random.Generator):
            return self.rng
        root = (
            self.rng
            if isinstance(self.rng, np.random.SeedSequence)
            else np.random.SeedSequence(self.rng)
        )
        return np.random.default_rng(root)

    def uniform_loss_probability(self) -> float:
        """The single per-push loss probability a synchronous backend runs.

        Resolves the ``network`` axis down to the classic uniform
        Bernoulli, or raises :class:`BackendCapabilityError` when the
        model needs the event-driven engine (latency, bandwidth,
        partitions, or per-edge loss).
        """
        if self.network is None:
            return self.loss_probability
        if self.network.has_latency:
            raise BackendCapabilityError(
                "step-synchronous backends cannot run latency-bearing network "
                "models (delays, bandwidth caps, partition windows); use the "
                "event-driven 'async' backend"
            )
        uniform = self.network.uniform_loss_probability
        if uniform is None:
            raise BackendCapabilityError(
                "step-synchronous backends apply one loss probability to every "
                "push; per-edge loss network models need the event-driven "
                "'async' backend"
            )
        return uniform

    def materialize(self) -> Tuple[np.random.Generator, Optional[PacketLossModel]]:
        """Resolve ``(generator, loss_model)`` for one engine run.

        The loss model derived from ``loss_probability`` — or from a
        loss-only ``network`` model, which resolves to the *same*
        :class:`PacketLossModel` over the same stream (byte-identity
        contract) — draws from the dedicated :meth:`link_stream`, so the
        engine's target-selection stream is identical to a loss-free run
        of the same seed. Latency-bearing network models raise
        :class:`BackendCapabilityError` here: a synchronous round
        schedule has no time axis to express them.
        """
        loss = self.loss_model
        probability = self.uniform_loss_probability()
        if loss is None and probability > 0.0:
            loss = PacketLossModel(probability, rng=self.link_stream())
        return self.main_stream(), loss


@runtime_checkable
class GossipBackend(Protocol):
    """What the registry stores: a named engine adapter."""

    name: str

    def run(
        self,
        graph: Graph,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        extras: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[GossipConfig] = None,
    ) -> GossipOutcome:
        """Execute one gossip round under ``config``; return the outcome."""
        ...


class _SynchronousBackend:
    """Shared adapter for the step-synchronous engines.

    Subclasses provide ``name``, ``supports_run_to_max`` and
    ``_engine_class``; everything else — config materialisation, engine
    construction, run-kwarg plumbing — is identical across the message,
    dense and sparse engines.
    """

    name: str = ""
    supports_run_to_max: bool = True
    supports_channels: bool = True
    _engine_class: Optional[Callable] = None

    def _engine_kwargs(self, config: GossipConfig) -> Dict[str, object]:
        """Extra constructor kwargs derived from ``config``.

        The default forwards ``dtype`` (every vectorised engine takes
        it). Engines pinned to float64 override this to raise
        :class:`repro.core.errors.UnsupportedDtypeError` instead of
        casting; engines with extra knobs (the sparse engine's
        ``kernel``) extend it.
        """
        return {"dtype": resolve_state_dtype(config.dtype)}

    def run(
        self,
        graph: Graph,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        extras: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[GossipConfig] = None,
    ) -> GossipOutcome:
        config = config if config is not None else GossipConfig()
        rng, loss_model = config.materialize()
        engine = self._engine_class(
            graph,
            push_counts=config.resolved_push_counts(graph),
            loss_model=loss_model,
            rng=rng,
            **self._engine_kwargs(config),
        )
        kwargs = dict(
            xi=config.xi,
            extras=extras,
            max_steps=config.max_steps,
            track_history=config.track_history,
            patience=config.patience,
            warmup_steps=config.warmup_steps,
        )
        if self.supports_run_to_max:
            kwargs["run_to_max"] = config.run_to_max
        elif config.run_to_max:
            raise BackendCapabilityError(
                f"backend {self.name!r} does not support run_to_max; use 'dense' or 'sparse'"
            )
        # The kwarg is only forwarded at V > 1 so single-channel runs
        # execute the exact historical call (byte-identity contract).
        if config.num_channels != 1:
            if not self.supports_channels:
                raise BackendCapabilityError(
                    f"backend {self.name!r} gossips a single reputation channel; "
                    "use 'dense', 'sparse' or 'sharded' for num_channels > 1"
                )
            kwargs["num_channels"] = config.num_channels
        return engine.run(values, weights, **kwargs)


class MessageBackend(_SynchronousBackend):
    """Protocol-faithful object simulation (mailboxes, announcements)."""

    name = "message"
    supports_run_to_max = False
    supports_channels = False

    def _engine_kwargs(self, config: GossipConfig) -> Dict[str, object]:
        # The message engine gossips Python-float pairs; there is no
        # float32 state to run, and casting would be silent.
        if resolve_state_dtype(config.dtype) != np.float64:
            raise UnsupportedDtypeError(
                "backend 'message' runs float64 gossip state only; "
                "use 'dense', 'sparse' or 'sharded' for float32"
            )
        return {}

    @property
    def _engine_class(self):
        from repro.core.engine import MessageLevelGossip

        return MessageLevelGossip


class DenseBackend(_SynchronousBackend):
    """Vectorised numpy engine — the default at experiment scale."""

    name = "dense"

    @property
    def _engine_class(self):
        from repro.core.vector_engine import VectorGossipEngine

        return VectorGossipEngine


class SparseBackend(_SynchronousBackend):
    """CSR-vectorised engine with preallocated buffers for huge rounds."""

    name = "sparse"

    def _engine_kwargs(self, config: GossipConfig) -> Dict[str, object]:
        kwargs = super()._engine_kwargs(config)
        kwargs["kernel"] = config.kernel
        return kwargs

    @property
    def _engine_class(self):
        from repro.core.sparse_engine import SparseGossipEngine

        return SparseGossipEngine


class ShardedBackend:
    """Multi-process sharded CSR engine for million-peer rounds.

    Partitions the graph into edge-balanced node shards
    (:mod:`repro.network.partition`) and executes each shard's push step
    in a worker process over shared-memory buffers, exchanging
    cross-shard pushes through per-shard halo buffers
    (:class:`repro.core.sharded_engine.ShardedGossipEngine`). Outcomes
    are byte-identical for any worker count; ``config.num_shards`` and
    ``config.shard_workers`` tune determinism granularity and
    parallelism respectively. Packet loss is supported via
    ``config.loss_probability`` (per-shard seeded loss streams); an
    explicit ``loss_model`` instance cannot be split across shards and
    is rejected.
    """

    name = "sharded"
    supports_run_to_max = True

    def run(
        self,
        graph: Graph,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        extras: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[GossipConfig] = None,
    ) -> GossipOutcome:
        from repro.core.sharded_engine import ShardedGossipEngine

        config = config if config is not None else GossipConfig()
        if config.loss_model is not None:
            raise BackendCapabilityError(
                "backend 'sharded' derives per-shard loss streams from the seed; "
                "pass loss_probability instead of an explicit loss_model"
            )
        # The network axis resolves to the classic uniform Bernoulli here
        # (byte-identical to the loss_probability path) or raises for
        # event-driven-only models.
        loss_probability = config.uniform_loss_probability()
        workers = config.shard_workers
        executor = None
        if isinstance(workers, str):
            workers, executor = None, workers
        engine = ShardedGossipEngine(
            graph,
            push_counts=config.resolved_push_counts(graph),
            loss_probability=loss_probability,
            rng=config.rng,
            num_shards=config.num_shards,
            num_workers=workers,
            executor=executor,
            dtype=resolve_state_dtype(config.dtype),
        )
        kwargs = dict(
            xi=config.xi,
            extras=extras,
            max_steps=config.max_steps,
            track_history=config.track_history,
            run_to_max=config.run_to_max,
            patience=config.patience,
            warmup_steps=config.warmup_steps,
        )
        if config.num_channels != 1:
            kwargs["num_channels"] = config.num_channels
        return engine.run(values, weights, **kwargs)


class AsyncBackend:
    """Event-driven engine on independent exponential clocks.

    Asynchronous gossip has no global steps, so the returned
    :class:`GossipOutcome` maps simulated time onto ``steps`` (rounded)
    and individual push events onto ``push_messages``. Only scalar
    (single-component) state is supported, and extras/history are
    synchronous-model features this backend rejects explicitly.

    This is the one backend that runs the full network-conditions axis:
    ``config.network`` link models with latency, bandwidth caps,
    regions and partition windows execute natively (a push becomes a
    *send* event that lands after its sampled delay), and the classic
    ``config.loss_probability`` runs as the equivalent zero-latency
    :class:`~repro.network.conditions.InstantLink`. The link's
    randomness draws from the same ``LOSS_STREAM_KEY`` child stream the
    synchronous loss path uses, so attaching a link model never
    perturbs target selection.
    """

    name = "async"

    def run(
        self,
        graph: Graph,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        extras: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[GossipConfig] = None,
    ) -> GossipOutcome:
        from repro.core.async_engine import AsyncGossipEngine

        config = config if config is not None else GossipConfig()
        if extras:
            raise BackendCapabilityError("backend 'async' does not support extra components")
        if config.num_channels != 1:
            raise BackendCapabilityError(
                "backend 'async' gossips a single reputation channel; "
                "use 'dense', 'sparse' or 'sharded' for num_channels > 1"
            )
        # Event-driven state lives in per-node float64 scalars; there is
        # no float32 mode to run and casting would be silent.
        if resolve_state_dtype(config.dtype) != np.float64:
            raise UnsupportedDtypeError(
                "backend 'async' runs float64 gossip state only; "
                "use 'dense', 'sparse' or 'sharded' for float32"
            )
        if config.loss_model is not None:
            raise BackendCapabilityError(
                "backend 'async' models the network through link models; pass "
                "loss_probability or network= instead of an explicit loss_model"
            )
        if config.track_history or config.run_to_max:
            raise BackendCapabilityError(
                "backend 'async' does not support track_history/run_to_max"
            )
        # The async stop rule is a quiet window over simulated time, not
        # a per-step protocol — reject rather than silently ignore the
        # synchronous stopping knobs when they differ from the defaults.
        if config.patience != 3 or config.warmup_steps is not None:
            raise BackendCapabilityError(
                "backend 'async' uses a quiet-window stop rule; "
                "patience/warmup_steps do not apply"
            )
        link = config.network
        if link is None and config.loss_probability > 0.0:
            link = InstantLink(config.loss_probability)
        # Derive the link stream before touching the main stream: for
        # Generator rng the child split advances the parent (same order
        # materialize uses on the synchronous path).
        link_rng = config.link_stream() if link is not None else None
        rng = config.main_stream()
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 2:
            if values.shape[1] != 1:
                raise BackendCapabilityError(
                    "backend 'async' gossips scalar state only (one component)"
                )
            values = values.reshape(-1)
            weights = np.asarray(weights, dtype=np.float64).reshape(-1)
        engine = AsyncGossipEngine(
            graph,
            push_counts=config.resolved_push_counts(graph),
            rng=rng,
            link=link,
            link_rng=link_rng,
        )
        out = engine.run(
            values, weights, xi=config.xi, max_time=float(config.max_steps)
        )
        n = graph.num_nodes
        return GossipOutcome(
            values=out.values.reshape(n, 1),
            weights=out.weights.reshape(n, 1),
            extras={},
            steps=int(round(out.simulated_time)),
            push_messages=out.total_pushes,
            protocol_messages=0,
            active_node_steps=out.total_pushes,
            converged=np.full(n, out.converged, dtype=bool),
        )


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, GossipBackend] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(
    name: str,
    backend: GossipBackend,
    *,
    aliases: Tuple[str, ...] = (),
    overwrite: bool = False,
) -> None:
    """Register ``backend`` under ``name`` (plus optional aliases).

    Third-party engines plug in here; after registration the backend is
    selectable everywhere a backend name is accepted — the
    :func:`repro.aggregate` facade, the variant entry points, scenarios
    and benchmarks.

    Examples
    --------
    >>> register_backend("demo", get_backend("dense"), overwrite=True)
    >>> get_backend("demo") is get_backend("dense")
    True
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if not overwrite:
        # Validate every name before mutating anything, so a conflict
        # never leaves a half-registered backend behind.
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"backend {name!r} is already registered (pass overwrite=True)")
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValueError(f"backend alias {alias!r} is already registered")
    _REGISTRY[name] = backend
    for alias in aliases:
        _ALIASES[alias] = name


def resolve_backend_name(name: str) -> str:
    """Canonical registry name for ``name`` (resolving aliases)."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    catalogue = ", ".join(sorted(_REGISTRY) + sorted(_ALIASES))
    raise UnknownBackendError(
        f"unknown gossip backend/engine {name!r}; available: {catalogue}, auto"
    )


def get_backend(name: str) -> GossipBackend:
    """Look up a registered backend by name or alias.

    Examples
    --------
    >>> get_backend("vector") is get_backend("dense")  # aliases resolve
    True
    """
    return _REGISTRY[resolve_backend_name(name)]


def available_backends() -> Tuple[str, ...]:
    """Canonical names of all registered backends, sorted.

    Examples
    --------
    >>> {"message", "dense", "sparse", "sharded"} <= set(available_backends())
    True
    """
    return tuple(sorted(_REGISTRY))


register_backend("message", MessageBackend())
register_backend("dense", DenseBackend(), aliases=("vector",))
register_backend("sparse", SparseBackend(), aliases=("csr",))
register_backend("async", AsyncBackend())
register_backend("sharded", ShardedBackend())


# -- auto selection ---------------------------------------------------------

#: ``"auto"`` runs the protocol-faithful message engine up to this size.
AUTO_MESSAGE_MAX_NODES = 64
#: ``"auto"`` runs the dense numpy engine up to this size...
AUTO_DENSE_MAX_NODES = 20_000
#: ...unless the graph is edge-heavy enough that the dense engine's
#: per-hub Python sampling loop dominates.
AUTO_DENSE_MAX_EDGES = 200_000
#: ``"auto"`` keeps the single-process sparse engine up to this size...
AUTO_SPARSE_MAX_NODES = 250_000
#: ...and this many undirected edges; beyond either, one core per step
#: is the bottleneck and the multi-process sharded engine takes over.
AUTO_SPARSE_MAX_EDGES = 2_000_000


def choose_backend_name(graph: Graph, config: Optional[GossipConfig] = None) -> str:
    """The ``"auto"`` policy: message → dense → sparse → sharded by size.

    Tiny worlds get the protocol-faithful message engine (free fidelity
    at that scale), experiment-scale graphs the dense numpy engine,
    large or edge-heavy graphs the CSR sparse engine, and million-peer
    graphs the multi-process sharded engine — provided the host has at
    least two usable cores (:func:`repro.utils.hardware.usable_cpu_count`);
    otherwise sharding is pure overhead and sparse stays the pick.
    Configs that need ``run_to_max`` or multi-channel state skip the
    message engine (it supports neither fixed-budget runs nor
    ``num_channels > 1``). Configs whose ``network`` link model carries
    latency (delays, bandwidth caps or partition windows) can only run
    event-driven, so they steer straight to the async engine.
    """
    if config is not None and config.network is not None and config.network.has_latency:
        return "async"
    n = graph.num_nodes
    needs_vector_engine = config is not None and (
        config.run_to_max or config.num_channels != 1
    )
    if n <= AUTO_MESSAGE_MAX_NODES and not needs_vector_engine:
        return "message"
    if n <= AUTO_DENSE_MAX_NODES and graph.num_edges <= AUTO_DENSE_MAX_EDGES:
        return "dense"
    if n <= AUTO_SPARSE_MAX_NODES and graph.num_edges <= AUTO_SPARSE_MAX_EDGES:
        return "sparse"
    # The sharded engine derives per-shard loss streams from the seed
    # and cannot split an explicit PacketLossModel's generator; "auto"
    # must keep such configs on the single-process sparse engine rather
    # than escalating into a capability error.
    if config is not None and config.loss_model is not None:
        return "sparse"
    # The sharded engine only pays off when shards can actually run in
    # parallel: on a host with a single usable core its worker
    # orchestration is pure overhead (measured ~0.4x sparse), so "auto"
    # stays on the sparse engine there.
    if usable_cpu_count() < 2:
        return "sparse"
    return "sharded"


def run_backend(
    graph: Graph,
    values: np.ndarray,
    weights: np.ndarray,
    *,
    extras: Optional[Dict[str, np.ndarray]] = None,
    config: Optional[GossipConfig] = None,
    backend: str = "auto",
) -> GossipOutcome:
    """Run one gossip round on a named (or auto-chosen) backend.

    This is the single engine-execution path shared by the
    :func:`repro.aggregate` facade, the four aggregation variants, the
    baselines and the benchmarks.
    """
    config = config if config is not None else GossipConfig()
    name = choose_backend_name(graph, config) if backend == "auto" else backend
    return get_backend(name).run(graph, values, weights, extras=extras, config=config)
