"""Shared sampling structures for the push-round kernels.

A :class:`PushPlan` holds everything target sampling needs for one CSR
topology + push-count assignment: the ``k = 1`` fast-path arrays, the
padded ``(k, degree-band)`` groups, and the precomputed full-active
flat sender layout. The plan is kernel-agnostic — the unfused reference
kernel, the fused numpy kernel and the numba kernel all sample through
the same plan, which is what makes their target draws byte-identical at
a fixed seed (they consume the *same* generator stream in the *same*
order).

The plan is also CSR-relative rather than graph-relative: the sparse
engine builds one over the global CSR arrays, and each shard of the
sharded engine builds one over its local owned-first/halo-after CSR
view, so both engines share one sampling implementation.

The plan is channel-oblivious by design: multi-channel gossip packs V
reputation channels into extra state *columns*, and a node pushes its
whole row to the same sampled targets regardless of width. One plan —
one generator stream, one draw per step — therefore serves any V, which
is exactly the amortization the channel axis buys (V channels share
every sampling draw that V sequential single-channel rounds would each
pay for).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

def select_k_smallest(keys: np.ndarray, k: int) -> np.ndarray:
    """Column indices of the ``k`` smallest keys per row, ascending.

    Canonical k-subset selection shared by every kernel: ``keys`` is a
    ``(rows, width)`` scratch matrix of iid-uniform draws (``inf`` at
    padding slots) and the return value is ``(rows, k)`` column indices
    ordered by increasing key. **Mutates** ``keys`` (selected entries
    are overwritten with ``inf``) — callers pass scratch buffers.

    The k smallest of a row's iid-uniform keys are a uniform random
    k-subset of its valid slots, so this draws the same subsets as the
    historical ``argpartition`` selection (only the within-row order
    differs: ascending key here, unspecified there). Repeated row-wise
    ``argmin`` is ~2.5x faster than ``argpartition`` on the padded
    buffers for the small k that dominate real degree sequences, and
    its first-occurrence tie rule is reproduced exactly by the numba
    kernel, keeping selection byte-identical across implementations.
    """
    rows = keys.shape[0]
    cols = np.empty((rows, k), dtype=np.int64)
    if k == 1:
        np.argmin(keys, axis=1, out=cols[:, 0])
        return cols
    row_index = np.arange(rows)
    for j in range(k):
        chosen = np.argmin(keys, axis=1)
        cols[:, j] = chosen
        if j < k - 1:
            keys[row_index, chosen] = np.inf
    return cols


class PaddedGroup:
    """Padded sampling state for rows sharing one push count ``k >= 2``.

    ``padded_neighbors[r]`` holds row ``nodes[r]``'s neighbour list
    right-padded to the group's width; ``invalid`` marks padding slots;
    ``keys`` is the reusable random-key scratch buffer. Identical in
    layout to the engines' historical per-group structures — groups are
    built per (k, degree band) so padding stays within 2x of every
    member's degree and total padded storage is O(E).
    """

    __slots__ = ("k", "nodes", "padded_neighbors", "invalid", "keys", "row_index")

    def __init__(
        self,
        k: int,
        nodes: np.ndarray,
        degrees: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
    ):
        self.k = int(k)
        self.nodes = nodes
        node_degrees = degrees[nodes]
        width = int(node_degrees.max())
        starts = indptr[nodes]
        cols = np.arange(width, dtype=np.int64)
        slots = starts[:, None] + cols[None, :]
        valid = cols[None, :] < node_degrees[:, None]
        # Clamp padding reads into range; the values there are never used.
        slots[~valid] = 0
        self.padded_neighbors = indices[slots]
        self.invalid = ~valid
        self.keys = np.empty((nodes.size, width), dtype=np.float64)
        self.row_index = np.arange(nodes.size)


class PushPlan:
    """Sampling plan over one CSR view: k=1 arrays + padded groups.

    Parameters
    ----------
    indptr, indices, degrees:
        The CSR view to sample over (global graph arrays, or a shard's
        local view).
    push_counts:
        Per-row push counts ``k_i`` aligned with ``degrees``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        push_counts: np.ndarray,
    ):
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        eligible = degrees > 0
        self.eligible_count = int(eligible.sum())
        self.k1_nodes = np.flatnonzero(eligible & (push_counts == 1))
        # Precomputed full-active gathers: the k=1 population never
        # changes, only the per-step active subset does, and on steps
        # where every eligible node is active (every run_to_max step,
        # and every step before the first node stops) these replace two
        # fancy gathers per step.
        self.k1_starts = indptr[self.k1_nodes]
        self.k1_degrees = degrees[self.k1_nodes]
        self._k1_slots = np.empty(self.k1_nodes.size, dtype=np.int64)
        self.groups: List[PaddedGroup] = []
        for k in np.unique(push_counts[eligible & (push_counts >= 2)]):
            nodes = np.flatnonzero(push_counts == k)
            # Sub-bucket by degree scale (powers of two): one huge hub
            # sharing k with thousands of low-degree nodes must not
            # widen every row of their padded matrix to its degree.
            bands = np.ceil(np.log2(degrees[nodes])).astype(np.int64)
            for band in np.unique(bands):
                self.groups.append(
                    PaddedGroup(int(k), nodes[bands == band], degrees, indptr, indices)
                )
        self.max_pushes = int(push_counts[eligible].sum())
        # Full-active flat sender layout: [k1 block][group0 rows*k][...].
        chunks = [self.k1_nodes]
        chunks.extend(np.repeat(g.nodes, g.k) for g in self.groups)
        self.senders_full = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        # Simple-graph invariant (no self-loops): lets the no-loss heard
        # pass scatter targets directly instead of comparing to senders.
        n = degrees.shape[0]
        if indices.size:
            owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            self.no_self_loops = not bool(np.any(indices[: owners.size] == owners))
        else:
            self.no_self_loops = True

    def sample_full_active(
        self, rng: np.random.Generator, targets_out: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw targets for every eligible node into ``targets_out``.

        Consumes the generator stream identically to
        :meth:`sample_subset` with an all-eligible mask, but writes into
        a preallocated flat buffer (no per-group temporaries or final
        concatenation) and skips the active-subset gathers.

        Returns ``(senders, targets)`` — views over the precomputed
        sender layout and ``targets_out``.
        """
        pos = self.k1_nodes.size
        if pos:
            # integers() is exact: offsets are in [0, degree) by
            # construction (float scaling could round up to degree).
            offsets = rng.integers(self.k1_degrees)
            np.add(self.k1_starts, offsets, out=self._k1_slots)
            np.take(self.indices, self._k1_slots, out=targets_out[:pos])
        for group in self.groups:
            keys = group.keys
            rng.random(out=keys)
            np.copyto(keys, np.inf, where=group.invalid)
            k = group.k
            rows = group.nodes.size
            segment = targets_out[pos : pos + rows * k].reshape(rows, k)
            # Inlined select_k_smallest: gather each argmin pass's
            # neighbours straight into the flat target buffer instead of
            # materialising a column matrix and re-gathering. Same draws,
            # same ascending-key order, no temporaries.
            row_index = group.row_index
            padded = group.padded_neighbors
            for j in range(k):
                chosen = np.argmin(keys, axis=1)
                segment[:, j] = padded[row_index, chosen]
                if j < k - 1:
                    keys[row_index, chosen] = np.inf
            pos += rows * k
        return self.senders_full, targets_out[:pos]

    def sample_subset(
        self, rng: np.random.Generator, active: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw targets for the ``active`` subset.

        The historical chunk-and-concatenate path, byte-faithful to the
        pre-kernel sparse engine (``argpartition`` selection included):
        the unfused reference kernel uses it on every step, the fused
        kernels only once some nodes have stopped and the per-step
        active gathers become unavoidable.
        """
        sender_chunks: List[np.ndarray] = []
        target_chunks: List[np.ndarray] = []
        k1 = self.k1_nodes[active[self.k1_nodes]]
        if k1.size:
            offsets = rng.integers(self.degrees[k1])
            target_chunks.append(self.indices[self.indptr[k1] + offsets])
            sender_chunks.append(k1)
        for group in self.groups:
            rows = np.flatnonzero(active[group.nodes])
            if not rows.size:
                continue
            keys = group.keys[: rows.size]
            rng.random(out=keys)
            keys[group.invalid[rows]] = np.inf
            cols = np.argpartition(keys, group.k - 1, axis=1)[:, : group.k]
            chosen = group.padded_neighbors[rows[:, None], cols]
            target_chunks.append(chosen.ravel())
            sender_chunks.append(np.repeat(group.nodes[rows], group.k))
        if not sender_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(sender_chunks), np.concatenate(target_chunks)

    def sample(
        self,
        rng: np.random.Generator,
        active: np.ndarray,
        *,
        all_active: Optional[bool] = None,
        targets_out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Random push targets for the active rows.

        ``senders[p]`` pushes one share to ``targets[p]``; each active
        sender appears ``k_i`` times with *distinct* targets, uniformly
        over the ``k_i``-subsets of its neighbourhood. ``all_active``
        (when the caller already knows the active count) and
        ``targets_out`` enable the no-temporaries fast path.
        """
        if all_active is None:
            all_active = int(active.sum()) == self.eligible_count
        if all_active and targets_out is not None:
            return self.sample_full_active(rng, targets_out)
        return self.sample_subset(rng, active)
