"""Pure-numpy push-round kernels: the unfused reference and the fused kernel.

A kernel owns every buffer a push round touches and exposes one method,
:meth:`step`, that advances a ``(N, C)`` state matrix by one gossip
round: sample targets, split shares, scale the self-share, scatter the
pushed shares, and record who heard external mass. The engines keep the
convergence bookkeeping (ratios, deviations, the stop protocol, mass
checks); the kernels keep the arithmetic.

Two implementations live here:

``unfused``
    A faithful extraction of the historical sparse-engine step — the
    chunk-and-concatenate sampler, a gathered share multiply, a masked
    scale pass and one ``bincount`` per state column. It exists as the
    measured baseline for the fused kernels and as the
    byte-compatibility reference: given the same seed it replays the
    pre-kernel engine bit-for-bit.

``fused``
    The optimised kernel. On full-active steps (every step under
    ``run_to_max``, and every step until the first node stops) it:

    - samples through :meth:`PushPlan.sample_full_active` — preallocated
      flat target buffer, precomputed sender layout, repeated-argmin
      selection — instead of building and concatenating per-group
      temporaries;
    - prescales the whole state matrix once
      (``prescaled = state * 1/(k_i+1)``) and gathers shares with
      ``np.take(..., out=)``, replacing the gathered multiply *and* the
      masked scale pass: the prescaled matrix simply becomes the next
      state (buffer swap — isolated nodes have ``k_i = 0`` so their
      scale factor is exactly 1.0 and the swap is bitwise lossless);
    - scatter-adds all C columns with a single ``bincount`` over
      ``target * C + column`` keys (one pass over the share buffer
      instead of C strided passes).

    Each fused pass computes the same IEEE operations on the same
    operand pairs as the unfused step, so per-column results are
    byte-identical; only the within-sender push order differs (ascending
    key vs argpartition's unspecified order), which perturbs bincount's
    per-bin accumulation order at the 1e-16 level. The parity suite pins
    the sampled k-subsets byte-identical and full-run outputs to 1e-8.

Both kernels run at any supported state dtype; float32 halves memory
traffic on the gather/scatter passes while keeping the random keys (and
therefore the sampled targets) in float64, byte-identical across dtypes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.kernels.plan import PushPlan

#: Widest *per-channel* state still scattered with the single combined
#: bincount; beyond ``COMBINED_BINCOUNT_MAX_COLS * num_channels`` total
#: columns the ``(P, C)`` int64 key buffer costs more than the strided
#: passes it saves, so the kernel falls back to per-column bincounts.
#: Multi-channel state widens the cutoff proportionally: V channels of a
#: d-wide workload are exactly V single-channel workloads sharing one
#: scatter, so the per-channel buffer economics are unchanged.
COMBINED_BINCOUNT_MAX_COLS = 4


def scatter_add_shares(
    state: np.ndarray,
    targets: np.ndarray,
    shares: np.ndarray,
    key_buf: Optional[np.ndarray],
) -> None:
    """Scatter-add ``shares[p]`` into ``state[targets[p]]`` for all pushes.

    With a key buffer, all C columns go through one ``bincount`` over
    combined ``target * C + column`` keys (the caller allocates the
    buffer only when the column count is under its cutoff). The flat
    C-order walk visits each bin's contributions in push order, exactly
    like the per-column bincounts, so the accumulated sums are
    byte-identical to the fallback loop.
    """
    n, num_cols = state.shape
    count = targets.shape[0]
    if key_buf is not None:
        keys = key_buf[:count]
        np.multiply(targets, num_cols, out=keys[:, 0])
        for c in range(1, num_cols):
            np.add(keys[:, 0], c, out=keys[:, c])
        flat = np.bincount(
            keys.ravel(), weights=shares.ravel(), minlength=n * num_cols
        )
        np.add(state, flat.reshape(n, num_cols), out=state)
    else:
        for c in range(num_cols):
            state[:, c] += np.bincount(targets, weights=shares[:, c], minlength=n)


class _KernelBase:
    """Buffers and parameters shared by every push-round kernel."""

    name = "base"

    def __init__(
        self,
        plan: PushPlan,
        inv_k_plus_one: np.ndarray,
        num_cols: int,
        dtype,
        num_channels: int = 1,
    ):
        dtype = np.dtype(dtype)
        self._plan = plan
        self._num_cols = int(num_cols)
        self._num_channels = max(1, int(num_channels))
        self._dtype = dtype
        self._num_nodes = int(plan.degrees.shape[0])
        # Share factors in two precisions: float64 for the historical
        # masked scale pass, state dtype for the share arithmetic.
        self._inv = np.ascontiguousarray(inv_k_plus_one, dtype=np.float64)
        self._inv_cast = self._inv.astype(dtype, copy=False)
        self._shares_buf = np.empty((plan.max_pushes, num_cols), dtype=dtype)
        self._scale = np.empty(self._num_nodes, dtype=np.float64)

    def step(
        self,
        state: np.ndarray,
        active: np.ndarray,
        *,
        all_active: bool,
        rng: np.random.Generator,
        loss_model,
        heard_out: np.ndarray,
    ) -> Tuple[np.ndarray, int]:
        """Advance ``state`` by one push round.

        Returns ``(state, num_pushes)``; the returned matrix may be a
        different (swapped) buffer than the argument — callers must
        rebind. ``heard_out`` is overwritten with the heard-external
        mask for the round.
        """
        raise NotImplementedError

    def _effective_targets(self, senders, targets, loss_model):
        if loss_model is not None:
            return loss_model.apply(senders, targets)
        return targets

    def _record_heard(self, senders, effective_targets, lossless, heard_out):
        heard_out[:] = False
        if lossless and self._plan.no_self_loops:
            # Targets are sampled from zero-diagonal neighbour lists, so
            # every delivered push is external by construction.
            heard_out[effective_targets] = True
        else:
            external = effective_targets[effective_targets != senders]
            heard_out[external] = True


class UnfusedNumpyKernel(_KernelBase):
    """Reference kernel: the historical sparse-engine step, verbatim.

    Byte-for-byte the pre-kernel engine at float64 — including the
    ``argpartition`` target selection and its randomness consumption —
    so it doubles as the baseline for the fused kernels' speedup and
    parity measurements.
    """

    name = "unfused"

    def step(self, state, active, *, all_active, rng, loss_model, heard_out):
        senders, targets = self._plan.sample_subset(rng, active)
        effective_targets = self._effective_targets(senders, targets, loss_model)
        shares = self._shares_buf[: senders.size]
        np.multiply(state[senders], self._inv_cast[senders, None], out=shares)
        scale = self._scale
        scale.fill(1.0)
        scale[active] = self._inv[active]
        state *= scale[:, None]
        n = state.shape[0]
        for c in range(state.shape[1]):
            state[:, c] += np.bincount(
                effective_targets, weights=shares[:, c], minlength=n
            )
        self._record_heard(
            senders, effective_targets, lossless=loss_model is None, heard_out=heard_out
        )
        return state, int(senders.size)


class FusedNumpyKernel(_KernelBase):
    """Fused kernel: prescale + flat sampling + combined scatter."""

    name = "fused"

    def __init__(self, plan, inv_k_plus_one, num_cols, dtype, num_channels=1):
        super().__init__(plan, inv_k_plus_one, num_cols, dtype, num_channels)
        # Swap-safe prescale factors: eligible rows carry 1/(k_i + 1)
        # (bitwise equal to the reference factors), rows with no
        # neighbours are forced to exactly 1.0 so the prescaled matrix
        # can replace the state outright.
        inv_swap = self._inv_cast.copy()
        inv_swap[plan.degrees == 0] = 1.0
        self._inv_swap = inv_swap
        self._prescaled = np.empty((self._num_nodes, num_cols), dtype=self._dtype)
        self._targets_buf = np.empty(plan.max_pushes, dtype=np.int64)
        if num_cols <= COMBINED_BINCOUNT_MAX_COLS * self._num_channels:
            self._key_buf = np.empty((plan.max_pushes, num_cols), dtype=np.int64)
        else:
            self._key_buf = None

    def step(self, state, active, *, all_active, rng, loss_model, heard_out):
        if all_active:
            return self._step_full(state, rng, loss_model, heard_out)
        return self._step_subset(state, active, rng, loss_model, heard_out)

    def _step_full(self, state, rng, loss_model, heard_out):
        senders, targets = self._plan.sample_full_active(rng, self._targets_buf)
        effective_targets = self._effective_targets(senders, targets, loss_model)
        if senders.size == 0:
            heard_out[:] = False
            return state, 0
        prescaled = self._prescaled
        np.multiply(state, self._inv_swap[:, None], out=prescaled)
        shares = self._shares_buf[: senders.size]
        np.take(prescaled, senders, axis=0, out=shares)
        # The prescaled matrix *is* the post-scale state: swap buffers
        # instead of re-scaling in place, and recycle the old state as
        # the next round's prescale scratch.
        self._prescaled = state
        state = prescaled
        scatter_add_shares(state, effective_targets, shares, self._key_buf)
        self._record_heard(
            senders, effective_targets, lossless=loss_model is None, heard_out=heard_out
        )
        return state, int(senders.size)

    def _step_subset(self, state, active, rng, loss_model, heard_out):
        # Stop-protocol tail steps: a strict subset of nodes pushes, so
        # the prescale/swap shortcut no longer applies. Fall back to the
        # reference share + masked-scale passes (cost scales with the
        # shrinking active set), keeping the combined scatter.
        senders, targets = self._plan.sample_subset(rng, active)
        effective_targets = self._effective_targets(senders, targets, loss_model)
        shares = self._shares_buf[: senders.size]
        np.multiply(state[senders], self._inv_cast[senders, None], out=shares)
        scale = self._scale
        scale.fill(1.0)
        scale[active] = self._inv[active]
        state *= scale[:, None]
        scatter_add_shares(state, effective_targets, shares, self._key_buf)
        self._record_heard(
            senders, effective_targets, lossless=loss_model is None, heard_out=heard_out
        )
        return state, int(senders.size)
