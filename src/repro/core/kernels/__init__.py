"""Push-round kernel registry.

The engines execute gossip rounds through interchangeable *kernels* —
objects owning the sampling buffers and the share/scatter arithmetic of
one push round (see :mod:`repro.core.kernels.numpy_kernels`). This
module is the capability registry that picks one:

>>> from repro.core.kernels import select_kernel
>>> select_kernel().name in {"numba", "fused"}
True

Registered kernels, in auto-selection order:

``numba``
    Compiled selection + fused push round
    (:mod:`repro.core.kernels.numba_kernel`). Requires the optional
    ``kernels`` extra (``pip install repro-gossip[kernels]``); reported
    unavailable otherwise — never an import error.
``fused``
    Cache-blocked pure-numpy fused kernel. Always available; the
    fallback ``select_kernel()`` returns without numba.
``unfused``
    The historical reference step, byte-for-byte. Baseline for parity
    tests and benchmarks; never auto-selected.

``select_kernel(name)`` resolves an explicit request and raises
:class:`KernelUnavailableError` when the implementation cannot run in
this environment (e.g. ``"numba"`` without numba installed), listing
what *is* available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.errors import GossipError
from repro.core.kernels.plan import PushPlan, select_k_smallest

__all__ = [
    "KernelSpec",
    "KernelUnavailableError",
    "PushPlan",
    "available_kernels",
    "create_kernel",
    "register_kernel",
    "registered_kernels",
    "select_kernel",
    "select_k_smallest",
]


class KernelUnavailableError(GossipError):
    """A requested push kernel cannot run in this environment."""


def _numba_available() -> bool:
    from repro.core.kernels.numba_kernel import NUMBA_AVAILABLE

    return NUMBA_AVAILABLE


def _make_numba(plan, inv_k_plus_one, num_cols, dtype, num_channels=1):
    from repro.core.kernels.numba_kernel import NumbaFusedKernel

    return NumbaFusedKernel(plan, inv_k_plus_one, num_cols, dtype, num_channels=num_channels)


def _make_fused(plan, inv_k_plus_one, num_cols, dtype, num_channels=1):
    from repro.core.kernels.numpy_kernels import FusedNumpyKernel

    return FusedNumpyKernel(plan, inv_k_plus_one, num_cols, dtype, num_channels=num_channels)


def _make_unfused(plan, inv_k_plus_one, num_cols, dtype, num_channels=1):
    from repro.core.kernels.numpy_kernels import UnfusedNumpyKernel

    return UnfusedNumpyKernel(plan, inv_k_plus_one, num_cols, dtype, num_channels=num_channels)


@dataclass(frozen=True)
class KernelSpec:
    """Registry entry: how to detect and build one kernel implementation."""

    name: str
    description: str
    factory: Callable[..., object]
    is_available: Callable[[], bool] = field(default=lambda: True)
    #: Eligible for automatic selection (reference kernels opt out).
    auto: bool = True

    @property
    def available(self) -> bool:
        """Whether this kernel can run in the current environment."""
        return bool(self.is_available())


_REGISTRY: Dict[str, KernelSpec] = {}
#: Auto-selection preference, first available wins.
_AUTO_ORDER = ["numba", "fused", "unfused"]


def register_kernel(spec: KernelSpec) -> None:
    """Add (or replace) a kernel implementation in the registry."""
    _REGISTRY[spec.name] = spec


def registered_kernels() -> Tuple[KernelSpec, ...]:
    """All registered kernel specs, available or not."""
    return tuple(_REGISTRY.values())


def available_kernels() -> Tuple[str, ...]:
    """Names of the kernels that can run in this environment."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.available)


def select_kernel(name: Optional[str] = None) -> KernelSpec:
    """Resolve a kernel name (or ``None``/"auto") to an available spec.

    Raises
    ------
    KernelUnavailableError
        If an explicitly requested kernel is unknown or cannot run here.
    """
    if name is None or name == "auto":
        for candidate in _AUTO_ORDER:
            spec = _REGISTRY.get(candidate)
            if spec is not None and spec.auto and spec.available:
                return spec
        raise KernelUnavailableError("no push kernel is available")
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise KernelUnavailableError(
            f"unknown push kernel {name!r}; registered kernels: {known}"
        )
    if not spec.available:
        raise KernelUnavailableError(
            f"push kernel {name!r} is not available in this environment "
            f"(install the 'kernels' extra for numba); available: "
            f"{', '.join(available_kernels())}"
        )
    return spec


def create_kernel(
    name: Optional[str],
    plan: PushPlan,
    inv_k_plus_one,
    num_cols: int,
    dtype,
    num_channels: int = 1,
):
    """Select and instantiate a kernel over ``plan``.

    ``num_channels`` is the number of independent reputation channels
    packed into each gossiped component; kernels use it only to widen
    perf heuristics (the combined-bincount column cutoff scales with
    it) — the arithmetic is channel-oblivious and byte-identical for
    any value.
    """
    spec = select_kernel(name)
    return spec.factory(plan, inv_k_plus_one, num_cols, dtype, num_channels=num_channels)


register_kernel(
    KernelSpec(
        name="numba",
        description="compiled fused push round (optional 'kernels' extra)",
        factory=_make_numba,
        is_available=_numba_available,
    )
)
register_kernel(
    KernelSpec(
        name="fused",
        description="pure-numpy fused push round (always available)",
        factory=_make_fused,
    )
)
register_kernel(
    KernelSpec(
        name="unfused",
        description="historical reference step, byte-for-byte",
        factory=_make_unfused,
        auto=False,
    )
)
