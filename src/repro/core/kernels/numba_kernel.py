"""Numba-compiled fused push kernel (optional ``kernels`` extra).

Import of this module never requires numba: when the package is absent
:data:`NUMBA_AVAILABLE` is ``False`` and :class:`NumbaFusedKernel`
raises :class:`~repro.core.kernels.KernelUnavailableError` from the
registry instead of an ``ImportError`` at import time.

Division of labour with numpy — chosen to keep sampling byte-identical
to the numpy kernels:

- **Random draws stay in numpy.** ``Generator.integers`` /
  ``Generator.random(out=)`` consume the PCG64 stream exactly as the
  numpy kernels do, so a seed replays the same target subsets under
  every kernel. Numba's own RNG would fork the stream.
- **Selection compiles.** The k-smallest-keys pass is
  embarrassingly parallel over rows, so it runs under
  ``@njit(parallel=True, nogil=True)`` with the same
  repeated-first-occurrence-argmin rule as
  :func:`repro.core.kernels.plan.select_k_smallest` — selected columns
  are byte-identical to the fused numpy kernel.
- **The push round compiles into one pass.** Prescale, share gather,
  scatter-accumulate and the heard mask fuse into a single traversal of
  the push list reading the *old* state and writing a fresh buffer —
  no ``(P, C)`` share temporary at all. The prescale loop is a
  ``prange``; the scatter loop is deliberately serial because distinct
  pushes hit shared target rows (a parallel scatter would race).
  Incremental per-push adds associate differently from bincount's
  per-bin sums, so values agree with the numpy kernels to 1e-8 over a
  run rather than byte-for-byte — the same relationship the sparse and
  dense engines have always had.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.numpy_kernels import FusedNumpyKernel

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - compiled paths run in the numba CI leg

    @njit(parallel=True, nogil=True, cache=True)
    def _select_and_gather(keys, padded_neighbors, k, targets_out):
        """Write each row's k smallest-key neighbours, ascending by key.

        Strict ``<`` comparison keeps the first occurrence on ties,
        matching ``np.argmin``; selected keys are overwritten with inf,
        matching the numpy helper's scratch semantics.
        """
        rows, width = keys.shape
        for r in prange(rows):
            base = r * k
            for j in range(k):
                best = 0
                best_val = keys[r, 0]
                for c in range(1, width):
                    v = keys[r, c]
                    if v < best_val:
                        best_val = v
                        best = c
                targets_out[base + j] = padded_neighbors[r, best]
                keys[r, best] = np.inf

    @njit(parallel=True, nogil=True, cache=True)
    def _push_round(old_state, inv_swap, senders, targets, new_state, heard):
        """One fused push round: prescale, scatter shares, mark heard.

        Reads ``old_state`` only, writes ``new_state`` and ``heard``
        only, so the caller can buffer-swap. The scatter loop is serial:
        pushes from different senders hit the same target rows.
        """
        n, num_cols = old_state.shape
        for i in prange(n):
            factor = inv_swap[i]
            for c in range(num_cols):
                new_state[i, c] = old_state[i, c] * factor
        for p in range(senders.shape[0]):
            s = senders[p]
            t = targets[p]
            factor = inv_swap[s]
            for c in range(num_cols):
                new_state[t, c] += old_state[s, c] * factor
            if t != s:
                heard[t] = True


class NumbaFusedKernel(FusedNumpyKernel):
    """Fused kernel with compiled selection and push-round passes.

    Subset (stop-protocol tail) steps reuse the numpy fallback paths
    unchanged; only the full-active hot path compiles.
    """

    name = "numba"

    def __init__(self, plan, inv_k_plus_one, num_cols, dtype, num_channels=1):
        if not NUMBA_AVAILABLE:  # defensive; the registry gates creation
            raise ImportError("numba is not installed")
        super().__init__(plan, inv_k_plus_one, num_cols, dtype, num_channels)

    def _sample_full_active(self, rng, targets_out):
        plan = self._plan
        pos = plan.k1_nodes.size
        if pos:
            offsets = rng.integers(plan.k1_degrees)
            targets_out[:pos] = plan.indices[plan.k1_starts + offsets]
        for group in plan.groups:
            keys = group.keys
            rng.random(out=keys)
            np.copyto(keys, np.inf, where=group.invalid)
            count = group.nodes.size * group.k
            _select_and_gather(
                keys, group.padded_neighbors, group.k, targets_out[pos : pos + count]
            )
            pos += count
        return plan.senders_full, targets_out[:pos]

    def _step_full(self, state, rng, loss_model, heard_out):
        senders, targets = self._sample_full_active(rng, self._targets_buf)
        effective_targets = self._effective_targets(senders, targets, loss_model)
        heard_out[:] = False
        if senders.size == 0:
            return state, 0
        new_state = self._prescaled
        _push_round(
            state, self._inv_swap, senders, effective_targets, new_state, heard_out
        )
        self._prescaled = state
        return new_state, int(senders.size)
