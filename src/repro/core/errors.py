"""Exceptions raised by the gossip engines."""

from __future__ import annotations


class GossipError(RuntimeError):
    """Base class for gossip-engine failures."""


class ConvergenceError(GossipError):
    """Gossip did not reach the stopping condition within ``max_steps``.

    Attributes
    ----------
    steps:
        Steps executed before giving up.
    unconverged:
        Number of nodes that had not yet announced convergence.

    Examples
    --------
    >>> error = ConvergenceError(steps=100, unconverged=3)
    >>> error.steps, error.unconverged
    (100, 3)
    """

    def __init__(self, steps: int, unconverged: int):
        self.steps = steps
        self.unconverged = unconverged
        super().__init__(
            f"gossip did not converge within {steps} steps "
            f"({unconverged} nodes still unconverged); raise max_steps or loosen xi"
        )


class MassConservationError(GossipError):
    """A gossip component's global mass drifted beyond tolerance."""


class UnsupportedDtypeError(GossipError):
    """A backend or engine cannot run gossip state at the requested dtype.

    Raised instead of silently up- or down-casting: a caller asking for
    ``float32`` on a backend that only implements ``float64`` (or vice
    versa) gets this error, never a result at a different precision
    than requested.
    """
