"""Differential Gossip Trust — the paper's core contribution.

Prefer the unified facade :func:`repro.aggregate`, which runs any
variant on any registered backend
(:mod:`repro.core.backend`); the per-variant entry points below remain
as typed wrappers over the same backend layer.

Public entry points (one per algorithm variant of Section 4.1.2):

- :func:`repro.core.single_global.aggregate_single_global` — Algorithm 1
- :func:`repro.core.single_gclr.aggregate_single_gclr` — Algorithm 2
- :func:`repro.core.vector_global.aggregate_vector_global` — variant 3
- :func:`repro.core.vector_gclr.aggregate_vector_gclr` — variant 4

Engines (reusable for custom initialisations and baselines):

- :class:`repro.core.vector_engine.VectorGossipEngine` — numpy, scales
  to the paper's 50 000-node sweeps;
- :class:`repro.core.sparse_engine.SparseGossipEngine` — CSR-vectorised
  with preallocated buffers, for very large (100k–250k node) rounds;
- :class:`repro.core.sharded_engine.ShardedGossipEngine` — multi-process
  sharded execution over shared memory, for million-peer rounds;
- :class:`repro.core.engine.MessageLevelGossip` — protocol-faithful
  object simulation with mailboxes and announcements.
"""

from repro.core.adaptive_weights import AdaptiveWeightPolicy
from repro.core.async_engine import AsyncGossipEngine, AsyncGossipOutcome
from repro.core.backend import (
    BackendCapabilityError,
    GossipBackend,
    GossipConfig,
    UnknownBackendError,
    available_backends,
    choose_backend_name,
    get_backend,
    register_backend,
    run_backend,
)
from repro.core.convergence import ConvergenceProtocol
from repro.core.differential import fixed_push_counts, push_counts, push_ratio
from repro.core.engine import MessageLevelGossip
from repro.core.errors import ConvergenceError, GossipError, MassConservationError
from repro.core.results import GossipOutcome
from repro.core.rounds import GossipRoundManager, RoundRecord
from repro.core.single_gclr import SingleGclrResult, aggregate_single_gclr, true_single_gclr
from repro.core.single_global import (
    SingleGlobalResult,
    aggregate_single_global,
    true_single_global,
)
from repro.core.sharded_engine import ShardedGossipEngine
from repro.core.sparse_engine import SparseGossipEngine
from repro.core.state import UNDEFINED_RATIO, GossipPair, ratios
from repro.core.vector_engine import VectorGossipEngine
from repro.core.vector_gclr import VectorGclrResult, aggregate_vector_gclr, true_vector_gclr
from repro.core.vector_global import VectorGlobalResult, aggregate_vector_global
from repro.core.weights import WeightParams, collusion_damping_factor

__all__ = [
    "GossipBackend",
    "GossipConfig",
    "BackendCapabilityError",
    "UnknownBackendError",
    "available_backends",
    "choose_backend_name",
    "get_backend",
    "register_backend",
    "run_backend",
    "aggregate_single_global",
    "aggregate_single_gclr",
    "aggregate_vector_global",
    "aggregate_vector_gclr",
    "true_single_global",
    "true_single_gclr",
    "true_vector_gclr",
    "SingleGlobalResult",
    "SingleGclrResult",
    "VectorGlobalResult",
    "VectorGclrResult",
    "VectorGossipEngine",
    "SparseGossipEngine",
    "ShardedGossipEngine",
    "MessageLevelGossip",
    "GossipOutcome",
    "GossipPair",
    "ConvergenceProtocol",
    "ConvergenceError",
    "GossipError",
    "MassConservationError",
    "WeightParams",
    "AdaptiveWeightPolicy",
    "AsyncGossipEngine",
    "AsyncGossipOutcome",
    "GossipRoundManager",
    "RoundRecord",
    "collusion_damping_factor",
    "push_counts",
    "push_ratio",
    "fixed_push_counts",
    "ratios",
    "UNDEFINED_RATIO",
]
