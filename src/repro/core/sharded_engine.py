"""Sharded multi-process differential-gossip engine.

The CSR sparse engine executes a whole gossip step in one process; on
million-peer overlays the per-step work — random sort keys over every
padded neighbour slot, ``argpartition``, share gathering, scatter-adds —
saturates a single core long before memory does. This engine partitions
that work horizontally:

- the graph is split into ``num_shards`` contiguous node shards with an
  edge-balanced cut (:mod:`repro.network.partition`);
- each worker process executes the push step for its shards over
  shared-memory state buffers (``multiprocessing.shared_memory``): it
  samples targets for its own nodes, gathers the pre-split shares and
  accumulates them into a shard-local contribution buffer whose rows
  are the shard's owned nodes followed by its *halo* (the foreign
  nodes its pushes can reach);
- a second phase merges: each destination shard scales its own state
  rows and adds the contribution rows aimed at it — its own buffer
  first, then every other shard's halo slice in ascending shard order.

Because each shard draws from its own spawned child stream
(``SeedSequence`` child ``s`` for shard ``s``) and the merge order is
fixed, outcomes are **byte-identical for any worker count** — workers
only change which process executes a shard, never what it computes.
Results depend on ``(seed, num_shards)`` alone; ``num_shards`` defaults
to a size-independent constant so the same seed reproduces the same
round everywhere. Like every other backend pair, the sharded and sparse
engines consume randomness differently, so they agree on the fixpoint
(to the cross-backend 1e-8 bar) while taking different trajectories.

Semantics are otherwise identical to
:class:`repro.core.sparse_engine.SparseGossipEngine`: the same
:class:`repro.core.convergence.ConvergenceProtocol` stop rule, the same
mass-conservation assertions, the same drained-ratio carry, the same
``GossipOutcome``. Packet loss is supported through ``loss_probability``
(each shard derives its own loss stream from the seed); an explicit
:class:`~repro.network.churn.PacketLossModel` instance carries
unsplittable generator state and is rejected.

The engine offers three executors over the *same* shard schedule:
``"inline"`` (shard-by-shard in the calling thread — no processes, no
shared memory), ``"threads"`` (a persistent thread pool scattering into
per-shard slices of one in-process state array — numpy releases the GIL
across the sampling/scatter hot path, and no halo bytes ever cross a
process boundary), and ``"processes"`` (the shared-memory worker pool
described above). Because every executor runs the identical per-shard
streams and the identical fixed-order merge, all three return
byte-identical outcomes; the default policy picks inline for one worker
and processes otherwise. Gossip state is ``float64`` by default;
``dtype=np.float32`` halves state and contribution-buffer traffic while
sampling keys stay float64 (target draws are dtype-independent).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.convergence import (
    ConvergenceProtocol,
    channel_deviations,
    deviation_vector,
)
from repro.core.differential import resolve_push_counts
from repro.core.errors import ConvergenceError, MassConservationError
from repro.core.results import GossipOutcome
from repro.core.sparse_engine import _coerce_graph
from repro.core.state import mass_rtol_for, ratios, resolve_state_dtype
from repro.core.vector_engine import _as_state_matrix
from repro.network.graph import Graph
from repro.network.partition import GraphPartition, ShardView, partition_graph
from repro.utils.hardware import usable_cpu_count
from repro.utils.rng import RngLike, stateless_child_sequence

#: Default shard count. Deliberately a size-independent constant: results
#: depend on (seed, num_shards), so a fixed default makes the same seed
#: reproduce the same round on every machine and worker count.
DEFAULT_NUM_SHARDS = 8

#: Below this node count the default worker policy runs the shard
#: schedule inline (process startup would dwarf the round itself).
SHARDED_INLINE_MAX_NODES = 150_000

#: Upper bound of the default worker policy for large graphs.
DEFAULT_MAX_WORKERS = 4

#: Spawn-key offset of per-shard packet-loss streams. Shard target
#: streams use keys 0..num_shards-1 (exactly what SeedSequence.spawn
#: would hand out); loss streams sit far above so they never collide.
SHARD_LOSS_STREAM_KEY = 0x10055000

#: Recognised executor names (``None`` means "pick by worker count").
EXECUTOR_NAMES = ("inline", "threads", "processes")


class _LocalPushGroup:
    """Padded sampling state for shard rows sharing one push count ``k >= 2``.

    The shard-local sibling of
    :class:`repro.core.sparse_engine._PushGroup`: rows are shard-local
    row numbers, padded neighbour entries are shard-local target ids
    (owned-first, halo after), so a draw indexes the shard's
    contribution buffer directly.
    """

    __slots__ = ("k", "rows", "padded_targets", "invalid", "keys")

    def __init__(
        self,
        k: int,
        rows: np.ndarray,
        degrees: np.ndarray,
        indptr_local: np.ndarray,
        indices_local: np.ndarray,
    ):
        self.k = int(k)
        self.rows = rows
        row_degrees = degrees[rows]
        width = int(row_degrees.max())
        cols = np.arange(width, dtype=np.int64)
        slots = indptr_local[rows][:, None] + cols[None, :]
        valid = cols[None, :] < row_degrees[:, None]
        slots[~valid] = 0
        self.padded_targets = indices_local[slots]
        self.invalid = ~valid
        self.keys = np.empty((rows.size, width), dtype=np.float64)


class _ShardSampler:
    """Per-shard push execution: target sampling + contribution build.

    Holds everything one shard needs for phase A of a step: the
    shard-local CSR view, padded sampling groups split by (k, degree
    band) exactly like the sparse engine, the shard's spawned random
    stream, and its loss stream. Instances live in the worker process
    that owns the shard (or in the parent, on the inline path).
    """

    def __init__(
        self,
        view: ShardView,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        push_counts: np.ndarray,
        inv_k_plus_one: np.ndarray,
        seed_root: np.random.SeedSequence,
        loss_probability: float,
        num_cols: int,
        dtype=np.float64,
    ):
        self.view = view
        lo, hi = view.lo, view.hi
        self.lo = lo
        self._degrees = np.asarray(degrees[lo:hi], dtype=np.int64)
        self._inv_k_plus_one = inv_k_plus_one
        self._indptr_local, self._indices_local = view.local_csr(indptr, indices)
        k = np.asarray(push_counts[lo:hi], dtype=np.int64)
        eligible = self._degrees > 0
        self._k1_rows = np.flatnonzero(eligible & (k == 1))
        self._groups: List[_LocalPushGroup] = []
        for kv in np.unique(k[eligible & (k >= 2)]):
            rows = np.flatnonzero(eligible & (k == kv))
            bands = np.ceil(np.log2(self._degrees[rows])).astype(np.int64)
            for band in np.unique(bands):
                self._groups.append(
                    _LocalPushGroup(
                        int(kv),
                        rows[bands == band],
                        self._degrees,
                        self._indptr_local,
                        self._indices_local,
                    )
                )
        self._rng = np.random.default_rng(stateless_child_sequence(seed_root, view.index))
        self._loss_probability = float(loss_probability)
        self._loss_rng = (
            np.random.default_rng(
                stateless_child_sequence(seed_root, SHARD_LOSS_STREAM_KEY + view.index)
            )
            if self._loss_probability > 0.0
            else None
        )
        max_pushes = int(self._k1_rows.size) + sum(
            group.rows.size * group.k for group in self._groups
        )
        self._shares_buf = np.empty((max_pushes, num_cols), dtype=dtype)
        #: Wall seconds the last :meth:`compute` spent choosing targets
        #: and building contributions respectively (phase breakdown).
        self.last_sample_seconds = 0.0
        self.last_build_seconds = 0.0

    def compute(
        self,
        state: np.ndarray,
        active: np.ndarray,
        contrib: np.ndarray,
        heard: np.ndarray,
    ) -> int:
        """Phase A for this shard: sample targets, accumulate contributions.

        Reads the (pre-scale) global ``state`` and the ``active`` mask;
        writes the shard's ``contrib`` (local rows × components) and
        ``heard`` (local rows) buffers. Returns the number of pushes.
        """
        tick = time.perf_counter()
        active_local = active[self.lo : self.lo + self.view.owned_size]
        sender_chunks: List[np.ndarray] = []
        target_chunks: List[np.ndarray] = []

        k1 = self._k1_rows[active_local[self._k1_rows]]
        if k1.size:
            offsets = self._rng.integers(self._degrees[k1])
            target_chunks.append(self._indices_local[self._indptr_local[k1] + offsets])
            sender_chunks.append(k1)

        for group in self._groups:
            rows = np.flatnonzero(active_local[group.rows])
            if not rows.size:
                continue
            k = group.k
            keys = group.keys[: rows.size]
            self._rng.random(out=keys)
            keys[group.invalid[rows]] = np.inf
            chosen_cols = np.argpartition(keys, k - 1, axis=1)[:, :k]
            chosen = group.padded_targets[rows[:, None], chosen_cols]
            target_chunks.append(chosen.ravel())
            sender_chunks.append(np.repeat(group.rows[rows], k))

        heard[:] = False
        if not sender_chunks:
            contrib[:] = 0.0
            self.last_sample_seconds = time.perf_counter() - tick
            self.last_build_seconds = 0.0
            return 0
        senders_local = np.concatenate(sender_chunks)
        targets_local = np.concatenate(target_chunks)
        if self._loss_rng is not None:
            lost = self._loss_rng.random(targets_local.shape[0]) < self._loss_probability
            # Mass-conserving self-redirect: the sender's own local id
            # is its row number (owned nodes come first).
            targets_local = np.where(lost, senders_local, targets_local)
            delivered = targets_local[~lost]
        else:
            delivered = targets_local
        tock = time.perf_counter()
        self.last_sample_seconds = tock - tick
        senders_global = senders_local + self.lo
        shares = self._shares_buf[: senders_local.size]
        np.multiply(
            state[senders_global], self._inv_k_plus_one[senders_global, None], out=shares
        )
        length = contrib.shape[0]
        for c in range(contrib.shape[1]):
            # minlength == buffer length, so the assignment overwrites
            # every row — no separate zeroing pass over the buffer.
            contrib[:, c] = np.bincount(targets_local, weights=shares[:, c], minlength=length)
        heard[delivered] = True
        self.last_build_seconds = time.perf_counter() - tock
        return int(senders_local.size)


def _merge_destination(
    destination: int,
    views: Sequence[ShardView],
    state: np.ndarray,
    active: np.ndarray,
    inv_k_plus_one: np.ndarray,
    contribs: Sequence[np.ndarray],
    heards: Sequence[np.ndarray],
    heard_global: np.ndarray,
) -> None:
    """Phase B for one destination shard: scale + halo exchange.

    Scales the destination's own state rows (active senders keep their
    self-share), then adds incoming contributions in a fixed order —
    the destination's own buffer first, then every other shard's halo
    slice in ascending shard index. The order never depends on worker
    scheduling, so the floating-point result is byte-deterministic.
    Writes touch only rows ``[lo, hi)``, which no other destination
    owns, so phase B runs shard-parallel without races.
    """
    view = views[destination]
    lo, hi = view.lo, view.hi
    heard_rows = heard_global[lo:hi]
    heard_rows[:] = False
    if hi == lo:
        return
    rows = state[lo:hi]
    scale = np.where(active[lo:hi], inv_k_plus_one[lo:hi], 1.0)
    rows *= scale[:, None]
    own = view.owned_size
    rows += contribs[destination][:own]
    heard_rows |= heards[destination][:own]
    num_cols = rows.shape[1]
    for s, other in enumerate(views):
        if s == destination:
            continue
        a, b = int(other.halo_slices[destination]), int(other.halo_slices[destination + 1])
        if a == b:
            continue
        idx = other.halo[a:b] - lo
        chunk = contribs[s][other.owned_size + a : other.owned_size + b]
        # Halo ids are unique, so a fancy add would be equivalent —
        # but per-column ufunc.at hits numpy's fast path and runs ~5x
        # faster than the 2-D gather/scatter on million-row shards.
        for c in range(num_cols):
            np.add.at(rows[:, c], idx, chunk[:, c])
        heard_rows[idx] |= heards[s][other.owned_size + a : other.owned_size + b]


# -- worker process ----------------------------------------------------------


def _attach(shm: shared_memory.SharedMemory, shape: Tuple[int, ...], dtype) -> np.ndarray:
    return np.ndarray(shape, dtype=dtype, buffer=shm.buf)


def _untrack(shm: shared_memory.SharedMemory, start_method: str) -> None:
    """Detach ``shm`` from the worker's resource tracker where needed.

    Workers only *attach* to segments the parent owns, but on
    Python < 3.13 attaching still registers with the resource tracker.
    Under ``spawn``/``forkserver`` the worker runs its own tracker,
    which would unlink the segment when the worker exits — unregister
    there. Under ``fork`` the tracker process is shared with the
    parent (the attach-register was a set no-op), so unregistering
    would strip the parent's own entry.
    """
    if start_method == "fork":
        return
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def _shard_worker_main(
    conn,
    worker_index: int,
    num_workers: int,
    views: List[ShardView],
    graph_arrays: Tuple[np.ndarray, np.ndarray, np.ndarray],
    push_counts: np.ndarray,
    inv_k_plus_one: np.ndarray,
    seed_root: np.random.SeedSequence,
    loss_probability: float,
    num_cols: int,
    n: int,
    offsets: np.ndarray,
    shm_names: Dict[str, str],
    start_method: str,
    dtype_name: str = "float64",
) -> None:
    """Worker loop: build this worker's samplers, then serve A/B phases."""
    indptr, indices, degrees = graph_arrays
    num_shards = len(views)
    total_local = int(offsets[-1])
    dtype = np.dtype(dtype_name)
    shms = {name: shared_memory.SharedMemory(name=value) for name, value in shm_names.items()}
    try:
        for shm in shms.values():
            _untrack(shm, start_method)
        state = _attach(shms["state"], (n, num_cols), dtype)
        active = _attach(shms["active"], (n,), np.bool_)
        heard_global = _attach(shms["heard"], (n,), np.bool_)
        contrib_flat = _attach(shms["contrib"], (total_local, num_cols), dtype)
        heard_flat = _attach(shms["shard_heard"], (total_local,), np.bool_)
        pushes = _attach(shms["pushes"], (num_shards,), np.int64)
        timings = _attach(shms["timings"], (num_shards, 2), np.float64)
        contribs = [contrib_flat[offsets[s] : offsets[s + 1]] for s in range(num_shards)]
        heards = [heard_flat[offsets[s] : offsets[s + 1]] for s in range(num_shards)]
        mine = [s for s in range(num_shards) if s % num_workers == worker_index]
        samplers = {
            s: _ShardSampler(
                views[s],
                indptr,
                indices,
                degrees,
                push_counts,
                inv_k_plus_one,
                seed_root,
                loss_probability,
                num_cols,
                dtype,
            )
            for s in mine
        }
        conn.send("ready")
        while True:
            message = conn.recv()
            if message == "A":
                for s in mine:
                    sampler = samplers[s]
                    pushes[s] = sampler.compute(state, active, contribs[s], heards[s])
                    timings[s, 0] = sampler.last_sample_seconds
                    timings[s, 1] = sampler.last_build_seconds
                conn.send("a")
            elif message == "B":
                for d in mine:
                    _merge_destination(
                        d, views, state, active, inv_k_plus_one, contribs, heards, heard_global
                    )
                conn.send("b")
            else:
                break
    finally:
        for shm in shms.values():
            shm.close()
        conn.close()


class _WorkerPool:
    """Parent-side handle on the shard worker processes (one run's pool)."""

    def __init__(self, context, worker_args: List[tuple]):
        self._connections = []
        self._processes = []
        for args in worker_args:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main, args=(child_conn, *args), daemon=True
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._collect("ready")

    def _collect(self, expected: str) -> None:
        for conn, process in zip(self._connections, self._processes):
            while not conn.poll(0.1):
                if not process.is_alive():
                    raise RuntimeError(
                        f"sharded gossip worker pid={process.pid} died "
                        f"(exitcode={process.exitcode}) before acknowledging {expected!r}"
                    )
            reply = conn.recv()
            if reply != expected:
                raise RuntimeError(f"worker protocol error: expected {expected!r}, got {reply!r}")

    def phase(self, name: str) -> None:
        """Broadcast one phase ('A' or 'B') and wait for every worker."""
        for conn in self._connections:
            conn.send(name)
        self._collect(name.lower())

    def shutdown(self) -> None:
        for conn in self._connections:
            try:
                conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        for conn in self._connections:
            conn.close()


def _default_start_method() -> str:
    """'fork' where available (fast, zero-copy graph handoff), else 'spawn'."""
    override = os.environ.get("REPRO_SHARDED_START_METHOD")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def default_worker_count(num_nodes: int) -> int:
    """The default worker policy: inline under the threshold, else cores.

    Cores means *usable* cores (:func:`repro.utils.hardware.usable_cpu_count`):
    a container pinned to one core should not pay worker-pool overhead it
    cannot amortise.
    """
    if num_nodes <= SHARDED_INLINE_MAX_NODES:
        return 1
    return max(1, min(DEFAULT_MAX_WORKERS, usable_cpu_count()))


class ShardedGossipEngine:
    """Multi-process sharded engine for million-peer gossip rounds.

    Drop-in compatible with
    :class:`repro.core.sparse_engine.SparseGossipEngine` (same ``run``
    signature and outcome), plus the sharding knobs.

    Parameters
    ----------
    graph:
        Overlay topology — a :class:`repro.network.graph.Graph` or a
        ``scipy.sparse`` adjacency matrix.
    push_counts:
        Per-node push counts ``k_i``; defaults to the differential rule.
    loss_probability:
        Per-push packet-loss probability; each shard derives its own
        loss stream from the seed, so loss outcomes are also
        worker-count independent.
    loss_model:
        Not supported — an explicit model carries one generator whose
        state cannot be split deterministically across shards; pass
        ``loss_probability`` instead.
    rng:
        Seed for the per-shard spawned streams. Prefer seed-like values
        (int / ``None`` / ``SeedSequence``); an existing ``Generator``
        is accepted by drawing one seed from it (which advances it).
    num_shards:
        Partition granularity — the *determinism* knob: outcomes depend
        on ``(seed, num_shards)`` only. Default
        :data:`DEFAULT_NUM_SHARDS`, clamped to the node count.
    num_workers:
        Worker count — the *throughput* knob: any value returns
        byte-identical outcomes. Default: 1 (inline, no processes) up
        to :data:`SHARDED_INLINE_MAX_NODES` nodes, else up to
        :data:`DEFAULT_MAX_WORKERS` capped by the usable CPU count.
    executor:
        How shard work is scheduled: ``"inline"`` (calling thread),
        ``"threads"`` (persistent thread pool over one in-process state
        array — no shared-memory segments, no halo round-trips through
        pipes) or ``"processes"`` (shared-memory worker pool). Default
        ``None`` picks inline for one worker and processes otherwise.
        Every executor runs the same per-shard seed streams and the
        same fixed merge order, so outcomes are byte-identical across
        executors as well as worker counts.
    dtype:
        Gossip state precision — ``numpy.float64`` (default, the
        reference) or ``numpy.float32`` (halves state and contribution
        memory traffic; sampling keys and convergence accounting stay
        float64, so target draws are byte-identical across dtypes).
        Anything else raises
        :class:`repro.core.errors.UnsupportedDtypeError`.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> import numpy as np
    >>> engine = ShardedGossipEngine(example_network(), rng=7, num_shards=3)
    >>> outcome = engine.run(np.arange(10.0), np.ones(10), xi=1e-6)
    >>> bool(np.allclose(outcome.estimates, 4.5, atol=1e-3))
    True
    """

    def __init__(
        self,
        graph,
        *,
        push_counts: Optional[np.ndarray] = None,
        loss_probability: float = 0.0,
        loss_model=None,
        rng: RngLike = None,
        degree_announcements: Optional[bool] = None,
        num_shards: Optional[int] = None,
        num_workers: Optional[int] = None,
        executor: Optional[str] = None,
        start_method: Optional[str] = None,
        dtype=np.float64,
    ):
        if loss_model is not None:
            raise ValueError(
                "ShardedGossipEngine cannot split an explicit PacketLossModel across "
                "shards deterministically; pass loss_probability instead"
            )
        if not 0.0 <= float(loss_probability) <= 1.0:
            raise ValueError(f"loss_probability must be in [0, 1], got {loss_probability}")
        graph = _coerce_graph(graph)
        self._graph = graph
        if degree_announcements is None:
            degree_announcements = push_counts is None
        self._degree_announcements = bool(degree_announcements)
        self._push_counts = resolve_push_counts(graph, push_counts)
        self._inv_k_plus_one = 1.0 / (self._push_counts + 1.0)
        self._loss_probability = float(loss_probability)

        if num_shards is None:
            num_shards = DEFAULT_NUM_SHARDS
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._partition = partition_graph(graph, num_shards)
        if executor is not None and executor not in EXECUTOR_NAMES:
            names = ", ".join(repr(name) for name in EXECUTOR_NAMES)
            raise ValueError(f"executor must be one of {names} or None, got {executor!r}")
        if num_workers is None:
            if executor == "inline":
                num_workers = 1
            elif executor == "threads":
                # Threads are cheap enough to skip the inline-threshold
                # policy; scale to usable cores directly.
                num_workers = max(1, min(DEFAULT_MAX_WORKERS, usable_cpu_count()))
            else:
                num_workers = default_worker_count(graph.num_nodes)
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if executor == "inline" and num_workers != 1:
            raise ValueError(
                f"executor 'inline' runs shards in the calling thread; "
                f"num_workers must be 1, got {num_workers}"
            )
        self._num_workers = min(int(num_workers), self._partition.num_shards)
        if executor is None:
            executor = "processes" if self._num_workers > 1 else "inline"
        self._executor = executor
        self._dtype = resolve_state_dtype(dtype)
        self._start_method = start_method or _default_start_method()
        self._last_phase_timings: Optional[Dict[str, float]] = None

        if isinstance(rng, np.random.Generator):
            self._seed_root = np.random.SeedSequence(int(rng.integers(2**63)))
        elif isinstance(rng, np.random.SeedSequence):
            self._seed_root = rng
        else:
            self._seed_root = np.random.SeedSequence(rng)

    @property
    def graph(self) -> Graph:
        """Topology this engine is bound to."""
        return self._graph

    @property
    def partition(self) -> GraphPartition:
        """The edge-balanced shard partition in use."""
        return self._partition

    @property
    def num_shards(self) -> int:
        """Number of shards (the determinism granularity)."""
        return self._partition.num_shards

    @property
    def num_workers(self) -> int:
        """Workers used per run (1 with the inline executor)."""
        return self._num_workers

    @property
    def executor(self) -> str:
        """Resolved executor name: 'inline', 'threads' or 'processes'."""
        return self._executor

    @property
    def dtype(self) -> np.dtype:
        """Gossip state precision this engine runs at."""
        return self._dtype

    @property
    def last_phase_timings(self) -> Optional[Dict[str, float]]:
        """Per-phase timing breakdown of the most recent :meth:`run`.

        ``None`` before the first run. Keys:

        - ``sample_seconds`` / ``build_contributions_seconds`` — summed
          per-shard wall time of target sampling and contribution
          accumulation (phase A). Summed across shards, so under a
          parallel executor this exceeds phase-A wall time.
        - ``phase_a_wall_seconds`` — wall time of phase A as observed
          by the coordinator.
        - ``halo_merge_seconds`` — wall time of phase B (scale + halo
          merge).
        - ``convergence_seconds`` — wall time of ratio/deviation/
          mass-conservation accounting between steps.
        - ``total_seconds`` / ``steps`` — whole-loop wall time and the
          number of gossip steps it covers.
        """
        return None if self._last_phase_timings is None else dict(self._last_phase_timings)

    @property
    def push_counts(self) -> np.ndarray:
        """Per-node push counts ``k_i`` (read-only)."""
        view = self._push_counts.view()
        view.flags.writeable = False
        return view

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        xi: float = 1e-4,
        extras: Optional[Dict[str, np.ndarray]] = None,
        max_steps: int = 10_000,
        track_history: bool = False,
        run_to_max: bool = False,
        patience: int = 3,
        warmup_steps: Optional[int] = None,
        num_channels: int = 1,
    ) -> GossipOutcome:
        """Execute one gossip round to the stopping condition.

        Parameters, semantics, return type and raised exceptions are
        identical to
        :meth:`repro.core.sparse_engine.SparseGossipEngine.run`. Each
        call replays the same per-shard seed streams, so repeated runs
        of one engine return identical outcomes.
        """
        graph = self._graph
        n = graph.num_nodes
        dtype = self._dtype
        value = _as_state_matrix(values, n, "values", dtype=dtype)
        weight = _as_state_matrix(weights, n, "weights", dtype=dtype)
        d = value.shape[1]
        if num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {num_channels}")
        if d % num_channels:
            raise ValueError(
                f"values width ({d}) must be a multiple of num_channels ({num_channels})"
            )
        if weight.shape != value.shape:
            raise ValueError(f"weights shape {weight.shape} != values shape {value.shape}")
        names: List[str] = ["value", "weight"]
        columns: List[np.ndarray] = [value, weight]
        for name, extra in (extras or {}).items():
            matrix = _as_state_matrix(extra, n, f"extras[{name}]", dtype=dtype)
            if matrix.shape != value.shape:
                raise ValueError(
                    f"extras[{name}] shape {matrix.shape} != values shape {value.shape}"
                )
            if name in ("value", "weight"):
                raise ValueError(f"extra component name {name!r} is reserved")
            names.append(name)
            columns.append(matrix)
        slices = {name: slice(i * d, (i + 1) * d) for i, name in enumerate(names)}
        total_cols = len(names) * d

        views = self._partition.shards
        num_shards = len(views)
        offsets = np.zeros(num_shards + 1, dtype=np.int64)
        np.cumsum([view.local_size for view in views], out=offsets[1:])
        total_local = int(offsets[-1])

        use_shm = self._executor == "processes"
        itemsize = dtype.itemsize
        shms: List[shared_memory.SharedMemory] = []
        pool: Optional[_WorkerPool] = None
        thread_pool: Optional[ThreadPoolExecutor] = None

        def _shared(name: str, nbytes: int) -> shared_memory.SharedMemory:
            shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
            shms.append(shm)
            return shm

        try:
            if use_shm:
                state = _attach(
                    _shared("state", n * total_cols * itemsize), (n, total_cols), dtype
                )
                active = _attach(_shared("active", n), (n,), np.bool_)
                heard_global = _attach(_shared("heard", n), (n,), np.bool_)
                contrib_flat = _attach(
                    _shared("contrib", total_local * total_cols * itemsize),
                    (total_local, total_cols),
                    dtype,
                )
                heard_flat = _attach(
                    _shared("shard_heard", total_local), (total_local,), np.bool_
                )
                pushes = _attach(_shared("pushes", num_shards * 8), (num_shards,), np.int64)
                timings = _attach(
                    _shared("timings", num_shards * 2 * 8), (num_shards, 2), np.float64
                )
                shm_names = {
                    "state": shms[0].name,
                    "active": shms[1].name,
                    "heard": shms[2].name,
                    "contrib": shms[3].name,
                    "shard_heard": shms[4].name,
                    "pushes": shms[5].name,
                    "timings": shms[6].name,
                }
            else:
                state = np.empty((n, total_cols), dtype=dtype)
                active = np.empty(n, dtype=np.bool_)
                heard_global = np.empty(n, dtype=np.bool_)
                contrib_flat = np.empty((total_local, total_cols), dtype=dtype)
                heard_flat = np.empty(total_local, dtype=np.bool_)
                pushes = np.zeros(num_shards, dtype=np.int64)
            if not use_shm:
                timings = np.zeros((num_shards, 2), dtype=np.float64)

            np.concatenate(columns, axis=1, out=state)
            contribs = [contrib_flat[offsets[s] : offsets[s + 1]] for s in range(num_shards)]
            heards = [heard_flat[offsets[s] : offsets[s + 1]] for s in range(num_shards)]

            inv_k_plus_one = self._inv_k_plus_one
            if dtype != np.float64:
                # Share arithmetic and merge scaling run at state
                # precision: float64 inverse divisors would silently
                # upcast every share multiply back to float64.
                inv_k_plus_one = inv_k_plus_one.astype(dtype)

            if use_shm:
                context = multiprocessing.get_context(self._start_method)
                graph_arrays = (graph.indptr, graph.indices, graph.degrees)
                pool = _WorkerPool(
                    context,
                    [
                        (
                            worker,
                            self._num_workers,
                            views,
                            graph_arrays,
                            self._push_counts,
                            inv_k_plus_one,
                            self._seed_root,
                            self._loss_probability,
                            total_cols,
                            n,
                            offsets,
                            shm_names,
                            self._start_method,
                            dtype.name,
                        )
                        for worker in range(self._num_workers)
                    ],
                )

                def phase_a() -> None:
                    pool.phase("A")

                def phase_b() -> None:
                    pool.phase("B")

            else:
                samplers = [
                    _ShardSampler(
                        view,
                        graph.indptr,
                        graph.indices,
                        graph.degrees,
                        self._push_counts,
                        inv_k_plus_one,
                        self._seed_root,
                        self._loss_probability,
                        total_cols,
                        dtype,
                    )
                    for view in views
                ]

                def compute_shard(s: int) -> None:
                    sampler = samplers[s]
                    pushes[s] = sampler.compute(state, active, contribs[s], heards[s])
                    timings[s, 0] = sampler.last_sample_seconds
                    timings[s, 1] = sampler.last_build_seconds

                def merge_shard(destination: int) -> None:
                    _merge_destination(
                        destination,
                        views,
                        state,
                        active,
                        inv_k_plus_one,
                        contribs,
                        heards,
                        heard_global,
                    )

                if self._executor == "threads":
                    # Same shard→worker assignment as the process pool
                    # (round-robin by shard index). Phase A tasks write
                    # disjoint contribution buffers; phase B tasks write
                    # disjoint owned row ranges — no locks needed, and
                    # the fixed per-shard merge order makes the result
                    # byte-identical to the inline schedule.
                    thread_pool = ThreadPoolExecutor(
                        max_workers=self._num_workers, thread_name_prefix="repro-shard"
                    )
                    assignments = [
                        range(worker, num_shards, self._num_workers)
                        for worker in range(self._num_workers)
                    ]

                    def _run_assignment(task: Callable[[int], None], mine) -> None:
                        for s in mine:
                            task(s)

                    def _scatter(task: Callable[[int], None]) -> None:
                        futures = [
                            thread_pool.submit(_run_assignment, task, mine)
                            for mine in assignments
                        ]
                        for future in futures:
                            future.result()

                    def phase_a() -> None:
                        _scatter(compute_shard)

                    def phase_b() -> None:
                        _scatter(merge_shard)

                else:

                    def phase_a() -> None:
                        for s in range(num_shards):
                            compute_shard(s)

                    def phase_b() -> None:
                        for destination in range(num_shards):
                            merge_shard(destination)

            return self._run_loop(
                state=state,
                active=active,
                heard_global=heard_global,
                pushes=pushes,
                timings=timings,
                phase_a=phase_a,
                phase_b=phase_b,
                names=names,
                slices=slices,
                d=d,
                xi=xi,
                max_steps=max_steps,
                track_history=track_history,
                run_to_max=run_to_max,
                patience=patience,
                warmup_steps=warmup_steps,
                num_channels=num_channels,
            )
        finally:
            if thread_pool is not None:
                thread_pool.shutdown(wait=True)
            if pool is not None:
                pool.shutdown()
            for shm in shms:
                shm.close()
                shm.unlink()

    def _run_loop(
        self,
        *,
        state: np.ndarray,
        active: np.ndarray,
        heard_global: np.ndarray,
        pushes: np.ndarray,
        timings: np.ndarray,
        phase_a: Callable[[], None],
        phase_b: Callable[[], None],
        names: List[str],
        slices: Dict[str, slice],
        d: int,
        xi: float,
        max_steps: int,
        track_history: bool,
        run_to_max: bool,
        patience: int,
        warmup_steps: Optional[int],
        num_channels: int = 1,
    ) -> GossipOutcome:
        """The engine main loop, identical in semantics to the sparse engine."""
        graph = self._graph
        n = graph.num_nodes
        degrees = graph.degrees
        mass_rtol = mass_rtol_for(self._dtype)

        initial_mass = {
            name: float(state[:, sl].sum(dtype=np.float64)) for name, sl in slices.items()
        }
        live_components = state[:, slices["weight"]].sum(axis=0, dtype=np.float64) != 0.0
        if warmup_steps is None:
            warmup_steps = int(np.ceil(np.log2(max(2, n)))) + 1
        protocol = ConvergenceProtocol(
            graph,
            xi,
            num_components=d,
            num_channels=num_channels,
            patience=patience,
            warmup_steps=warmup_steps,
        )
        previous_ratios = ratios(state[:, slices["value"]], state[:, slices["weight"]])
        ever_defined = state[:, slices["weight"]] != 0.0
        history: Optional[List[np.ndarray]] = [] if track_history else None

        push_messages = 0
        protocol_messages = int(degrees.sum()) if self._degree_announcements else 0
        active_node_steps = 0
        steps = 0
        sample_seconds = 0.0
        build_seconds = 0.0
        phase_a_wall = 0.0
        halo_merge_seconds = 0.0
        convergence_seconds = 0.0
        loop_start = time.perf_counter()

        while not protocol.all_stopped or (run_to_max and steps < max_steps):
            if steps >= max_steps:
                if run_to_max:
                    break
                raise ConvergenceError(steps, protocol.num_unconverged)
            if run_to_max:
                np.greater(degrees, 0, out=active)
            else:
                np.greater(degrees, 0, out=active)
                active &= ~protocol.stopped

            tick = time.perf_counter()
            phase_a()
            tock = time.perf_counter()
            phase_b()
            conv_start = time.perf_counter()
            phase_a_wall += tock - tick
            halo_merge_seconds += conv_start - tock
            # Per-shard sample/build splits, summed over shards (CPU
            # time, not wall — they can exceed phase_a_wall under a
            # parallel executor).
            sample_seconds += float(timings[:, 0].sum())
            build_seconds += float(timings[:, 1].sum())
            push_messages += int(pushes.sum())
            active_node_steps += int(active.sum())

            defined_now = state[:, slices["weight"]] != 0.0
            ever_defined |= defined_now
            new_ratios = ratios(state[:, slices["value"]], state[:, slices["weight"]])
            drained = ever_defined & ~defined_now
            if drained.any():
                new_ratios[drained] = previous_ratios[drained]
            if num_channels == 1:
                if live_components.all():
                    ratio_defined = ever_defined.all(axis=1)
                else:
                    ratio_defined = ever_defined[:, live_components].all(axis=1)
                step_deviations = deviation_vector(new_ratios, previous_ratios)
            else:
                # Per-channel defined mask and eq.-7 movement (dead
                # columns are vacuously defined, as in the scalar rule).
                if live_components.all():
                    defined_full = ever_defined
                else:
                    defined_full = ever_defined | ~live_components[None, :]
                ratio_defined = defined_full.reshape(
                    n, num_channels, d // num_channels
                ).all(axis=2)
                step_deviations = channel_deviations(
                    new_ratios, previous_ratios, num_channels
                )
            newly_converged = protocol.observe(
                step_deviations,
                heard_global.copy(),
                ratio_defined,
            )
            if newly_converged.size:
                protocol_messages += int(degrees[newly_converged].sum())
            previous_ratios = new_ratios
            if history is not None:
                history.append(new_ratios.copy())
            steps += 1

            for name, sl in slices.items():
                total = float(state[:, sl].sum(dtype=np.float64))
                mass_scale = max(abs(initial_mass[name]), 1.0)
                if abs(total - initial_mass[name]) > mass_rtol * mass_scale * max(
                    1.0, np.sqrt(n * d)
                ):
                    raise MassConservationError(
                        f"component {name!r} mass drifted from {initial_mass[name]!r} "
                        f"to {total!r} at step {steps}"
                    )
            convergence_seconds += time.perf_counter() - conv_start

        self._last_phase_timings = {
            "sample_seconds": sample_seconds,
            "build_contributions_seconds": build_seconds,
            "phase_a_wall_seconds": phase_a_wall,
            "halo_merge_seconds": halo_merge_seconds,
            "convergence_seconds": convergence_seconds,
            "total_seconds": time.perf_counter() - loop_start,
            "steps": steps,
        }
        extra_names = [name for name in names if name not in ("value", "weight")]
        return GossipOutcome(
            values=state[:, slices["value"]].copy(),
            weights=state[:, slices["weight"]].copy(),
            extras={name: state[:, slices[name]].copy() for name in extra_names},
            steps=steps,
            push_messages=push_messages,
            protocol_messages=protocol_messages,
            active_node_steps=active_node_steps,
            converged=protocol.converged.copy(),
            ratio_history=history,
            num_channels=num_channels,
            channel_converged=(
                protocol.channel_converged.copy() if num_channels > 1 else None
            ),
        )
