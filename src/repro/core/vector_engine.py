"""Vectorised differential-gossip engine.

This engine executes the exact update rule of Algorithms 1–2 over numpy
arrays, which is what makes the paper's 50 000-node sweeps tractable in
Python. Per step, for every still-active node ``i``:

1. split the node's components into ``k_i + 1`` equal shares;
2. keep one share (the self-push);
3. send one share to each of ``k_i`` *distinct* random neighbours
   (a push lost to churn is redirected back to the sender, conserving
   mass — :class:`repro.network.churn.PacketLossModel`);
4. sum everything received; compare the new estimate to the previous
   step's and run the convergence/stop protocol
   (:class:`repro.core.convergence.ConvergenceProtocol`).

Because a node pushes *all* of its state to the same chosen targets, an
``(N, d)`` state matrix evolves each of its ``d`` columns under shared
randomness — exactly the paper's vector variants (Algorithms 3–4), and
``d = 1`` recovers the single-node variants.

Everything random flows through one generator; identical seeds replay
identical rounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.convergence import (
    ConvergenceProtocol,
    channel_deviations,
    deviation_vector,
)
from repro.core.differential import resolve_push_counts
from repro.core.errors import ConvergenceError, MassConservationError
from repro.core.results import GossipOutcome
from repro.core.state import mass_rtol_for, ratios, resolve_state_dtype
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator


def _as_state_matrix(
    array: np.ndarray, num_nodes: int, name: str, dtype=np.float64
) -> np.ndarray:
    """Coerce a per-node state array to a ``(N, d)`` matrix of ``dtype``."""
    out = np.array(array, dtype=dtype, copy=True)
    if out.ndim == 1:
        out = out.reshape(-1, 1)
    if out.ndim != 2 or out.shape[0] != num_nodes:
        raise ValueError(f"{name} must have shape (N,) or (N, d) with N={num_nodes}, got {out.shape}")
    return out


class VectorGossipEngine:
    """Reusable engine bound to a topology and a push-count rule.

    Parameters
    ----------
    graph:
        Overlay topology.
    push_counts:
        Per-node push counts ``k_i``; defaults to the differential rule
        (:func:`repro.core.differential.push_counts`). Pass
        ``fixed_push_counts(graph, 1)`` for the normal-push baseline.
    loss_model:
        Optional churn/packet-loss model applied to every push.
    rng:
        Seed / generator for target selection.
    dtype:
        Gossip state precision (:data:`repro.core.state.SUPPORTED_STATE_DTYPES`).
        ``float32`` halves state memory traffic; ``float64`` (default)
        is the correctness reference. Anything else raises
        :class:`repro.core.errors.UnsupportedDtypeError`.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> import numpy as np
    >>> g = example_network()
    >>> engine = VectorGossipEngine(g, rng=7)
    >>> values = np.arange(10, dtype=float)
    >>> outcome = engine.run(values, np.ones(10), xi=1e-6)
    >>> bool(np.allclose(outcome.estimates, values.mean(), atol=1e-3))
    True
    """

    def __init__(
        self,
        graph: Graph,
        *,
        push_counts: Optional[np.ndarray] = None,
        loss_model: Optional[PacketLossModel] = None,
        rng: RngLike = None,
        degree_announcements: Optional[bool] = None,
        dtype=np.float64,
    ):
        self._graph = graph
        self._dtype = resolve_state_dtype(dtype)
        # The differential rule needs each node to learn its neighbours'
        # degrees, which costs one push per directed edge at round start.
        # Fixed-count baselines (normal push) skip that exchange.
        if degree_announcements is None:
            degree_announcements = push_counts is None
        self._degree_announcements = bool(degree_announcements)
        push_counts = resolve_push_counts(graph, push_counts)
        self._push_counts = push_counts
        self._loss_model = loss_model
        self._rng = as_generator(rng)
        # Pre-grouped sender structure: k == 1 solo fast path, k >= 2 by value.
        degrees = graph.degrees
        active_eligible = degrees > 0
        self._k1_nodes = np.flatnonzero(active_eligible & (push_counts == 1))
        self._k_multi: List[Tuple[int, np.ndarray]] = []
        for k in np.unique(push_counts[active_eligible & (push_counts >= 2)]):
            self._k_multi.append((int(k), np.flatnonzero(push_counts == k)))

    @property
    def graph(self) -> Graph:
        """Topology this engine is bound to."""
        return self._graph

    @property
    def push_counts(self) -> np.ndarray:
        """Per-node push counts ``k_i`` (read-only)."""
        view = self._push_counts.view()
        view.flags.writeable = False
        return view

    # -- target selection -------------------------------------------------------

    def _choose_targets(self, active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Random push targets for every active node.

        Returns ``(senders, targets)`` flat arrays: node ``senders[p]``
        pushes its share to ``targets[p]``. Each sender appears ``k_i``
        times with *distinct* targets.
        """
        graph = self._graph
        indptr, indices = graph.indptr, graph.indices
        degrees = graph.degrees
        rng = self._rng
        sender_chunks: List[np.ndarray] = []
        target_chunks: List[np.ndarray] = []

        # Fast path: k == 1 — one uniform neighbour per node, fully vectorised.
        k1 = self._k1_nodes[active[self._k1_nodes]]
        if k1.size:
            offsets = (rng.random(k1.size) * degrees[k1]).astype(np.int64)
            target_chunks.append(indices[indptr[k1] + offsets])
            sender_chunks.append(k1)

        # k >= 2 — sample k distinct neighbours per node. Hubs are few, so a
        # Python loop per hub is cheap relative to the vector work.
        for k, nodes in self._k_multi:
            selected = nodes[active[nodes]]
            for node in selected:
                neighbors = indices[indptr[node] : indptr[node + 1]]
                if k >= neighbors.size:
                    chosen = neighbors
                else:
                    chosen = rng.choice(neighbors, size=k, replace=False)
                target_chunks.append(np.asarray(chosen, dtype=np.int64))
                sender_chunks.append(np.full(chosen.size, node, dtype=np.int64))

        if not sender_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(sender_chunks), np.concatenate(target_chunks)

    # -- main loop ----------------------------------------------------------------

    def run(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        xi: float = 1e-4,
        extras: Optional[Dict[str, np.ndarray]] = None,
        max_steps: int = 10_000,
        track_history: bool = False,
        run_to_max: bool = False,
        patience: int = 3,
        warmup_steps: Optional[int] = None,
        num_channels: int = 1,
    ) -> GossipOutcome:
        """Execute one gossip round to the stopping condition.

        Parameters
        ----------
        values, weights:
            Initial per-node gossip values/weights, shape ``(N,)`` or
            ``(N, d)``. Both are copied; callers' arrays are untouched.
        xi:
            Error tolerance; vector gossip uses eq. 7's ``d * xi``.
        extras:
            Extra components (same shape as ``values``) split and shipped
            with every push — Algorithm 2's ``count`` rides here.
        max_steps:
            Hard safety limit; exceeding it raises
            :class:`repro.core.errors.ConvergenceError`.
        track_history:
            Record the ``(N, d)`` ratio array after every step
            (memory-heavy; meant for small-N diagnostics).
        run_to_max:
            Ignore the stop protocol and run exactly ``max_steps`` steps
            (used by diffusion-speed studies that fix the step budget).
        patience:
            Consecutive satisfied convergence checks required before a
            node announces (see
            :class:`repro.core.convergence.ConvergenceProtocol`;
            ``patience=1`` is the paper-literal single-shot test).
        warmup_steps:
            Steps before convergence checks count; default
            ``ceil(log2 N) + 1`` — the time Theorem 5.1 says mass needs
            to reach every node. Pass 0 for the paper-literal rule.
        num_channels:
            Independent reputation channels ``V`` packed channel-major
            into the ``d`` columns (``d`` must be a multiple of ``V``).
            All channels share every sampling draw and scatter; only
            convergence is judged per channel (a node announces when
            every channel has latched). Default 1 — the classic
            single-channel protocol.

        Returns
        -------
        GossipOutcome

        Raises
        ------
        ConvergenceError
            If the protocol has not stopped within ``max_steps``.
        MassConservationError
            If a component's global sum drifts (an engine bug, not a
            user error — this should never fire).
        """
        graph = self._graph
        n = graph.num_nodes
        state: Dict[str, np.ndarray] = {
            "value": _as_state_matrix(values, n, "values", dtype=self._dtype),
            "weight": _as_state_matrix(weights, n, "weights", dtype=self._dtype),
        }
        d = state["value"].shape[1]
        if num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {num_channels}")
        if d % num_channels:
            raise ValueError(
                f"values width ({d}) must be a multiple of num_channels ({num_channels})"
            )
        if state["weight"].shape != state["value"].shape:
            raise ValueError(
                f"weights shape {state['weight'].shape} != values shape {state['value'].shape}"
            )
        for name, extra in (extras or {}).items():
            matrix = _as_state_matrix(extra, n, f"extras[{name}]", dtype=self._dtype)
            if matrix.shape != state["value"].shape:
                raise ValueError(
                    f"extras[{name}] shape {matrix.shape} != values shape {state['value'].shape}"
                )
            if name in state:
                raise ValueError(f"extra component name {name!r} is reserved")
            state[name] = matrix

        initial_mass = {
            name: float(component.sum(dtype=np.float64)) for name, component in state.items()
        }
        mass_rtol = mass_rtol_for(self._dtype)
        # Components whose total weight mass is zero can never define a
        # ratio anywhere; they stay at the sentinel and are excluded from
        # the "ratio defined" requirement below.
        live_components = state["weight"].sum(axis=0) != 0.0
        if warmup_steps is None:
            warmup_steps = int(np.ceil(np.log2(max(2, n)))) + 1
        protocol = ConvergenceProtocol(
            graph,
            xi,
            num_components=d,
            num_channels=num_channels,
            patience=patience,
            warmup_steps=warmup_steps,
        )
        previous_ratios = ratios(state["value"], state["weight"])
        # Whether each (node, component) cell has EVER held weight. A
        # node that keeps splitting without receiving drains its pair
        # geometrically until it underflows to exactly zero — but in
        # exact arithmetic the drain preserves the ratio, so once a cell
        # has been defined its last ratio is carried forward rather than
        # snapping back to the sentinel (which would otherwise deadlock
        # the last unconverged nodes in very long tails at large N).
        ever_defined = state["weight"] != 0.0
        history: Optional[List[np.ndarray]] = [] if track_history else None

        # Share divisors at state precision: mixing float64 divisors into
        # float32 state would silently upcast the share arithmetic.
        k_plus_one = (self._push_counts + 1).astype(self._dtype).reshape(-1, 1)
        push_messages = 0
        # Degree announcements: one message per directed edge at round start.
        protocol_messages = int(graph.degrees.sum()) if self._degree_announcements else 0
        degrees = graph.degrees
        active_node_steps = 0
        steps = 0

        while not protocol.all_stopped or (run_to_max and steps < max_steps):
            if steps >= max_steps:
                if run_to_max:
                    break
                raise ConvergenceError(steps, protocol.num_unconverged)
            active = ~protocol.stopped & (graph.degrees > 0)
            if run_to_max:
                active = graph.degrees > 0
            senders, targets = self._choose_targets(active)
            if self._loss_model is not None:
                effective_targets = self._loss_model.apply(senders, targets)
            else:
                effective_targets = targets
            push_messages += int(senders.size)
            active_node_steps += int(active.sum())

            for component in state.values():
                # Shares come from the pre-split state; the in-place divide
                # then leaves exactly the self-share behind.
                shares = component[senders] / k_plus_one[senders]
                component[active] /= k_plus_one[active]
                np.add.at(component, effective_targets, shares)

            heard_external = np.zeros(n, dtype=bool)
            external = effective_targets[effective_targets != senders]
            heard_external[external] = True

            defined_now = state["weight"] != 0.0
            ever_defined |= defined_now
            new_ratios = ratios(state["value"], state["weight"])
            # Carry the last defined ratio through underflow-drained cells.
            drained = ever_defined & ~defined_now
            if drained.any():
                new_ratios[drained] = previous_ratios[drained]
            if num_channels == 1:
                if live_components.all():
                    ratio_defined = ever_defined.all(axis=1)
                else:
                    ratio_defined = ever_defined[:, live_components].all(axis=1)
                deviations = deviation_vector(new_ratios, previous_ratios)
            else:
                # Per-channel: a channel's ratio is defined once every
                # live column it owns has held weight (dead columns are
                # vacuously defined, as in the single-channel rule).
                if live_components.all():
                    defined_full = ever_defined
                else:
                    defined_full = ever_defined | ~live_components[None, :]
                ratio_defined = defined_full.reshape(
                    n, num_channels, d // num_channels
                ).all(axis=2)
                deviations = channel_deviations(
                    new_ratios, previous_ratios, num_channels
                )
            newly_converged = protocol.observe(
                deviations, heard_external, ratio_defined
            )
            if newly_converged.size:
                # Each announcement is one message to every neighbour.
                protocol_messages += int(degrees[newly_converged].sum())
            previous_ratios = new_ratios
            if history is not None:
                history.append(new_ratios.copy())
            steps += 1

            for name, component in state.items():
                total = float(component.sum(dtype=np.float64))
                scale = max(abs(initial_mass[name]), 1.0)
                if abs(total - initial_mass[name]) > mass_rtol * scale * max(1.0, np.sqrt(n * d)):
                    raise MassConservationError(
                        f"component {name!r} mass drifted from {initial_mass[name]!r} to {total!r} at step {steps}"
                    )

        extra_names = [name for name in state if name not in ("value", "weight")]
        return GossipOutcome(
            values=state["value"],
            weights=state["weight"],
            extras={name: state[name] for name in extra_names},
            steps=steps,
            push_messages=push_messages,
            protocol_messages=protocol_messages,
            active_node_steps=active_node_steps,
            converged=protocol.converged.copy(),
            ratio_history=history,
            num_channels=num_channels,
            channel_converged=(
                protocol.channel_converged.copy() if num_channels > 1 else None
            ),
        )
