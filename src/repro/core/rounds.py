"""Multi-round gossip management.

One gossip round yields one reputation snapshot; a live network runs
rounds repeatedly: *"After the end of a round, next round of gossip
will start after some time. The time difference between the two rounds
will depend upon the change in the behaviour of the nodes ... For
simplicity, this time difference has been taken as a constant. In
reality, this should be dynamically adjusted."* (Section 4.1.1.)

:class:`GossipRoundManager` implements both the constant-interval
schedule and the dynamic adjustment the paper defers: the inter-round
gap shrinks when the trust matrix is changing quickly (measured as the
fraction of opinions that moved more than the re-push threshold ``Δ``
since the last round) and grows when the network is quiet. It also
implements Algorithm 2's ``Δ`` re-push rule across rounds: only
feedback that changed materially is re-announced to neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.backend import GossipConfig
from repro.core.vector_gclr import VectorGclrResult, aggregate_vector_gclr
from repro.core.weights import WeightParams
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class RoundRecord:
    """Bookkeeping for one executed round.

    Attributes
    ----------
    started_at:
        Simulated time the round began.
    changed_opinions:
        Opinions that moved more than ``delta`` since the previous round
        (and were therefore re-pushed to neighbours).
    total_opinions:
        Opinions in the snapshot.
    result:
        The aggregation output of this round.
    next_gap:
        The inter-round gap chosen after this round.
    """

    started_at: float
    changed_opinions: int
    total_opinions: int
    result: VectorGclrResult
    next_gap: float

    @property
    def churn_fraction(self) -> float:
        """Fraction of opinions that changed since the previous round."""
        if self.total_opinions == 0:
            return 0.0
        return self.changed_opinions / self.total_opinions


class GossipRoundManager:
    """Runs repeated DGT rounds with the Δ re-push rule and adaptive gaps.

    Parameters
    ----------
    graph:
        Topology (fixed across rounds; churn is modelled at the message
        layer).
    config:
        Optional shared :class:`repro.core.backend.GossipConfig`; its
        ``params``, ``delta``, ``xi`` and ``rng`` become the defaults
        for the matching keyword arguments below.
    params:
        GCLR weighting constants.
    delta:
        Algorithm 2's re-push threshold: an opinion is re-announced only
        when it moved more than this since its last announcement.
    base_gap:
        Inter-round gap when the network changes at the reference rate.
    min_gap, max_gap:
        Clamp for the adaptive gap.
    adaptive:
        ``False`` reproduces the paper's constant-gap simplification.
    backend:
        Gossip backend each round runs on (any registered name or
        ``"auto"``).
    rng:
        Seed / generator handed to each round's gossip.

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> from repro.trust.matrix import random_trust_matrix
    >>> g = preferential_attachment_graph(40, m=2, rng=0)
    >>> manager = GossipRoundManager(g, rng=1)
    >>> record = manager.run_round(random_trust_matrix(g, rng=2), targets=[1, 2])
    >>> record.total_opinions > 0
    True
    """

    def __init__(
        self,
        graph: Graph,
        *,
        config: Optional[GossipConfig] = None,
        params: Optional[WeightParams] = None,
        delta: Optional[float] = None,
        base_gap: float = 25.0,
        min_gap: float = 5.0,
        max_gap: float = 100.0,
        adaptive: bool = True,
        xi: Optional[float] = None,
        backend: str = "auto",
        rng: RngLike = None,
    ):
        # A shared GossipConfig supplies params / delta / xi / rng
        # defaults; explicit keyword arguments still win.
        if config is not None:
            params = params if params is not None else config.params
            delta = delta if delta is not None else config.delta
            xi = xi if xi is not None else config.xi
            rng = rng if rng is not None else config.rng
        params = params if params is not None else WeightParams()
        delta = delta if delta is not None else 0.05
        xi = xi if xi is not None else 1e-5
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        check_positive(base_gap, "base_gap")
        check_positive(min_gap, "min_gap")
        check_positive(max_gap, "max_gap")
        if not min_gap <= base_gap <= max_gap:
            raise ValueError(
                f"need min_gap <= base_gap <= max_gap, got {min_gap}, {base_gap}, {max_gap}"
            )
        self._graph = graph
        self._params = params
        self._delta = float(delta)
        self._base_gap = float(base_gap)
        self._min_gap = float(min_gap)
        self._max_gap = float(max_gap)
        self._adaptive = bool(adaptive)
        self._xi = float(xi)
        self._backend = backend
        self._rng = as_generator(rng)
        self._published: Dict[tuple, float] = {}
        self._clock = 0.0
        self._history: List[RoundRecord] = []

    # -- round execution ------------------------------------------------------------

    @property
    def history(self) -> Sequence[RoundRecord]:
        """Executed rounds, oldest first."""
        return tuple(self._history)

    @property
    def clock(self) -> float:
        """Simulated time (advances by the chosen gap after each round)."""
        return self._clock

    def pending_announcements(self, trust: TrustMatrix) -> int:
        """Opinions that would be re-pushed under the Δ rule right now."""
        changed = 0
        for observer, target, value in trust.items():
            published = self._published.get((observer, target))
            if published is None or abs(value - published) > self._delta:
                changed += 1
        return changed

    def run_round(
        self,
        trust: TrustMatrix,
        *,
        targets: Optional[Sequence[int]] = None,
    ) -> RoundRecord:
        """Execute one aggregation round over the current trust snapshot."""
        changed = 0
        total = 0
        for observer, target, value in trust.items():
            total += 1
            key = (observer, target)
            published = self._published.get(key)
            if published is None or abs(value - published) > self._delta:
                changed += 1
                self._published[key] = value

        result = aggregate_vector_gclr(
            self._graph,
            trust,
            targets=targets,
            params=self._params,
            xi=self._xi,
            backend=self._backend,
            rng=int(self._rng.integers(2**62)),
        )
        gap = self._choose_gap(changed, total)
        record = RoundRecord(
            started_at=self._clock,
            changed_opinions=changed,
            total_opinions=total,
            result=result,
            next_gap=gap,
        )
        self._history.append(record)
        self._clock += gap
        return record

    def _choose_gap(self, changed: int, total: int) -> float:
        """Adaptive inter-round gap: fast-changing trust ⇒ shorter gap.

        The gap scales inversely with the churn fraction around a 10%
        reference rate, clamped to ``[min_gap, max_gap]``; with
        ``adaptive=False`` it is the paper's constant.
        """
        if not self._adaptive:
            return self._base_gap
        churn = changed / total if total else 0.0
        reference = 0.10
        scale = reference / max(churn, 1e-6)
        return float(np.clip(self._base_gap * scale, self._min_gap, self._max_gap))
