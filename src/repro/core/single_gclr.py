"""Algorithm 2 — globally calibrated local reputation for a single node.

Each estimating node ``I`` computes (eq. 6):

``Rep_I,j = (sum_{k in NS_I} (w_Ik - 1) t_kj  +  sum_i t_ij)
           / (sum_{k in NS_I} (w_Ik - 1)      +  N_d)``

The two global sums — ``sum_i t_ij`` and the observer count ``N_d`` —
come out of one gossip round in which exactly *one* designated node
starts with gossip weight 1 (so every ratio converges to a *sum*, not a
mean), and observers additionally gossip a ``count`` component seeded
at 1. The neighbour terms need each neighbour's direct feedback about
``j``, which neighbours push directly before the round starts (the
pre-gossip feedback exchange in the paper's Figure 1 timeline).

The pseudocode's denominator uses the *observer count* ``N_d``; the
derivation in eq. 6 uses ``N`` (all nodes). ``denominator_convention``
selects between them, defaulting to the pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.core.backend import GossipConfig, run_backend
from repro.core.results import GossipOutcome
from repro.core.weights import WeightParams, excess_weights
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike

DenominatorConvention = Literal["observers", "all"]
#: Any registered backend name ("dense", "message", "sparse", ...);
#: "vector" remains as a registry alias of "dense".
EngineName = str


@dataclass
class SingleGclrResult:
    """Outcome of Algorithm 2 for one target node.

    Attributes
    ----------
    target:
        Node whose reputation was aggregated.
    reputations:
        ``Rep_I,j`` per estimating node ``I`` — note these legitimately
        *differ across nodes*; that is the point of GCLR.
    true_reputations:
        Exact eq.-6 values computed directly from the trust matrix.
    global_sum_estimates:
        Per-node gossip estimate of ``sum_i t_ij``.
    observer_count_estimates:
        Per-node gossip estimate of ``N_d``.
    outcome:
        Raw engine outcome.
    """

    target: int
    reputations: np.ndarray
    true_reputations: np.ndarray
    global_sum_estimates: np.ndarray
    observer_count_estimates: np.ndarray
    outcome: GossipOutcome

    @property
    def max_absolute_error(self) -> float:
        """Worst per-node deviation from the exact eq.-6 value."""
        return float(np.abs(self.reputations - self.true_reputations).max())


def neighbor_correction_terms(
    graph: Graph,
    trust: TrustMatrix,
    target: int,
    params: WeightParams,
) -> tuple:
    """Per-node numerator/denominator corrections from neighbour feedback.

    Returns ``(y_hat, w_excess_sum)`` where for each estimating node
    ``I``: ``y_hat[I] = sum_{k in NS_I} (w_Ik - 1) * t_kj`` and
    ``w_excess_sum[I] = sum_{k in NS_I} (w_Ik - 1)``.

    Only neighbours enter these sums: eq. 6 exploits that non-neighbours
    always have weight exactly 1, i.e. zero excess.
    """
    n = graph.num_nodes
    y_hat = np.zeros(n, dtype=np.float64)
    w_excess_sum = np.zeros(n, dtype=np.float64)
    feedback = trust.column(target)  # observer -> t_observer,target
    for estimator in range(n):
        excess = excess_weights(params, trust.row(estimator))
        for neighbor in graph.neighbors(estimator):
            neighbor = int(neighbor)
            e = excess.get(neighbor)
            if e is None:
                continue
            w_excess_sum[estimator] += e
            t_kj = feedback.get(neighbor)
            if t_kj is not None:
                y_hat[estimator] += e * t_kj
    return y_hat, w_excess_sum


def true_single_gclr(
    graph: Graph,
    trust: TrustMatrix,
    target: int,
    params: WeightParams,
    denominator_convention: DenominatorConvention = "observers",
) -> np.ndarray:
    """Exact eq.-6 reputations, computed without gossip (ground truth)."""
    y_hat, w_excess_sum = neighbor_correction_terms(graph, trust, target, params)
    column = trust.column(target)
    global_sum = float(sum(column.values()))
    count = float(len(column)) if denominator_convention == "observers" else float(trust.num_nodes)
    denominator = w_excess_sum + count
    with np.errstate(invalid="ignore", divide="ignore"):
        rep = np.where(denominator > 0, (y_hat + global_sum) / denominator, 0.0)
    return rep


def pick_designated_node(graph: Graph) -> int:
    """Lowest-id non-isolated node — the single carrier of gossip weight 1.

    The pseudocode hardcodes "node 1"; any node reachable by gossip
    works, but it must be able to participate or the weight mass would
    be stranded and every ratio would stay undefined.
    """
    degrees = graph.degrees
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        raise ValueError("graph has no edges; sum-estimating gossip cannot run")
    return int(candidates[0])


def initial_state_single_gclr(
    trust: TrustMatrix, target: int, designated: int
) -> tuple:
    """Initial ``(values, weights, counts)`` vectors for Algorithm 2.

    Observers of ``target`` seed the value sum and the observer count;
    exactly one ``designated`` node carries gossip weight 1 so every
    ratio converges to a *sum*, not a mean. Exposed separately so the
    :func:`repro.aggregate` facade, tests and baselines share the exact
    initialisation.
    """
    n = trust.num_nodes
    values = np.zeros(n, dtype=np.float64)
    counts = np.zeros(n, dtype=np.float64)
    for observer, value in trust.column(target).items():
        values[observer] = value
        counts[observer] = 1.0
    weights = np.zeros(n, dtype=np.float64)
    weights[designated] = 1.0
    return values, weights, counts


def aggregate_single_gclr(
    graph: Graph,
    trust: TrustMatrix,
    target: int,
    *,
    params: WeightParams = WeightParams(),
    xi: float = 1e-4,
    denominator_convention: DenominatorConvention = "observers",
    engine: EngineName = "vector",
    backend: Optional[str] = None,
    designated_node: Optional[int] = None,
    push_counts: Optional[np.ndarray] = None,
    loss_model: Optional[PacketLossModel] = None,
    rng: RngLike = None,
    max_steps: int = 10_000,
    track_history: bool = False,
    patience: int = 3,
) -> SingleGclrResult:
    """Run Algorithm 2: every node's own calibrated estimate of ``target``.

    Parameters mirror :func:`repro.core.single_global.aggregate_single_global`,
    plus:

    params:
        Weighting constants ``a``, ``b`` of eq. 2.
    denominator_convention:
        ``"observers"`` divides by the gossiped observer count ``N_d``
        (Algorithm 2 pseudocode); ``"all"`` divides by ``N`` (eq. 6).
    designated_node:
        The single node starting with gossip weight 1 (default: lowest-id
        non-isolated node).

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> from repro.trust.matrix import random_trust_matrix
    >>> g = preferential_attachment_graph(50, m=2, rng=11)
    >>> t = random_trust_matrix(g, rng=12)
    >>> r = aggregate_single_gclr(g, t, target=7, xi=1e-6, rng=13)
    >>> r.max_absolute_error < 0.01
    True
    """
    if graph.num_nodes != trust.num_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes but trust matrix has {trust.num_nodes}"
        )
    if not 0 <= target < graph.num_nodes:
        raise ValueError(f"target {target} outside 0..{graph.num_nodes - 1}")
    if denominator_convention not in ("observers", "all"):
        raise ValueError(
            f"denominator_convention must be 'observers' or 'all', got {denominator_convention!r}"
        )

    n = graph.num_nodes
    designated = pick_designated_node(graph) if designated_node is None else int(designated_node)
    if not 0 <= designated < n:
        raise ValueError(f"designated_node {designated} outside 0..{n - 1}")
    if graph.degree(designated) == 0:
        raise ValueError(f"designated_node {designated} is isolated; gossip weight would be stranded")

    values, weights, counts = initial_state_single_gclr(trust, target, designated)
    outcome = run_backend(
        graph,
        values,
        weights,
        extras={"count": counts},
        config=GossipConfig(
            xi=xi,
            push_counts=push_counts,
            loss_model=loss_model,
            rng=rng,
            max_steps=max_steps,
            track_history=track_history,
            patience=patience,
        ),
        backend=backend if backend is not None else engine,
    )

    global_sum_estimates = outcome.estimates.reshape(-1)
    observer_count_estimates = outcome.extra_estimates("count").reshape(-1)
    y_hat, w_excess_sum = neighbor_correction_terms(graph, trust, target, params)

    if denominator_convention == "observers":
        count_term = observer_count_estimates
    else:
        count_term = np.full(n, float(n))
    denominator = w_excess_sum + count_term
    with np.errstate(invalid="ignore", divide="ignore"):
        reputations = np.where(
            denominator > 0, (y_hat + global_sum_estimates) / denominator, 0.0
        )

    return SingleGclrResult(
        target=target,
        reputations=reputations,
        true_reputations=true_single_gclr(graph, trust, target, params, denominator_convention),
        global_sum_estimates=global_sum_estimates,
        observer_count_estimates=observer_count_estimates,
        outcome=outcome,
    )
