"""Adaptive weighting — the paper's stated extension.

Eq. 2's constants are, per the paper, per-node tunables: *"First
parameter [a_i] can be adjusted according to the overall quality of
service received by the node from the network, whereas second parameter
[b_ij] can be adjusted according to the recommendation of a particular
neighbour"*, and the conclusion proposes exactly this adjustment as the
way to also *"avoid malicious users"*. The paper fixes both to constants
"for simplicity"; this module implements the adjustment policies so the
extension can be exercised and measured.

Two feedback loops:

- **Network loop (a_i)** — the worse the service a node receives from
  the open network, the more it should lean on its own trusted
  neighbours relative to the global average: ``a_i`` interpolates
  between ``a_min`` (good network ⇒ global average suffices) and
  ``a_max`` (bad network ⇒ trust your friends).
- **Recommendation loop (b_ij)** — a neighbour whose past
  recommendations matched the node's subsequent direct experience earns
  a larger exponent gain; one whose recommendations misled loses it.
  Accuracy is tracked as an exponential moving average of
  ``1 - |recommended - experienced|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.weights import WeightParams
from repro.utils.validation import check_probability


@dataclass
class AdaptiveWeightPolicy:
    """Per-node controller for the eq.-2 constants.

    Parameters
    ----------
    a_min, a_max:
        Range of the base ``a_i`` (both >= 1; ``a_min <= a_max``).
    b_min, b_max:
        Range of the per-neighbour gain ``b_ij`` (0 <= b_min <= b_max).
    smoothing:
        EMA factor in (0, 1] for both feedback signals; smaller values
        adapt more slowly but resist manipulation by bursts.

    Examples
    --------
    >>> policy = AdaptiveWeightPolicy()
    >>> for _ in range(30):
    ...     policy.record_service_quality(0.1)   # terrible network service
    >>> policy.params_for(7).a > AdaptiveWeightPolicy().params_for(7).a
    True
    """

    a_min: float = 2.0
    a_max: float = 8.0
    b_min: float = 0.25
    b_max: float = 2.0
    smoothing: float = 0.2
    _network_quality: float = field(default=0.5, init=False, repr=False)
    _recommendation_accuracy: Dict[int, float] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 1.0 <= self.a_min <= self.a_max:
            raise ValueError(f"need 1 <= a_min <= a_max, got {self.a_min}, {self.a_max}")
        if not 0.0 <= self.b_min <= self.b_max:
            raise ValueError(f"need 0 <= b_min <= b_max, got {self.b_min}, {self.b_max}")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError(f"smoothing must lie in (0, 1], got {self.smoothing}")

    # -- feedback ----------------------------------------------------------------

    def record_service_quality(self, satisfaction: float) -> None:
        """Fold one open-network transaction outcome into the a_i loop."""
        check_probability(satisfaction, "satisfaction")
        self._network_quality += self.smoothing * (satisfaction - self._network_quality)

    def record_recommendation(self, neighbor: int, recommended: float, experienced: float) -> None:
        """Fold one recommendation-vs-experience comparison into the b_ij loop.

        Parameters
        ----------
        neighbor:
            The neighbour whose earlier feedback is being scored.
        recommended:
            The trust value the neighbour reported for some peer.
        experienced:
            The satisfaction this node then actually observed with that
            peer.
        """
        check_probability(recommended, "recommended")
        check_probability(experienced, "experienced")
        accuracy = 1.0 - abs(recommended - experienced)
        current = self._recommendation_accuracy.get(neighbor, 0.5)
        self._recommendation_accuracy[neighbor] = current + self.smoothing * (
            accuracy - current
        )

    # -- readouts ----------------------------------------------------------------

    @property
    def network_quality(self) -> float:
        """EMA of open-network service quality (drives ``a_i``)."""
        return self._network_quality

    def recommendation_accuracy(self, neighbor: int) -> float:
        """EMA recommendation accuracy for ``neighbor`` (0.5 before data)."""
        return self._recommendation_accuracy.get(neighbor, 0.5)

    @property
    def a(self) -> float:
        """Current base: bad network service pushes ``a`` toward ``a_max``."""
        distrust = 1.0 - self._network_quality
        return self.a_min + (self.a_max - self.a_min) * distrust

    def b_for(self, neighbor: int) -> float:
        """Current gain for ``neighbor``: accurate recommenders earn more."""
        accuracy = self.recommendation_accuracy(neighbor)
        return self.b_min + (self.b_max - self.b_min) * accuracy

    def params_for(self, neighbor: int) -> WeightParams:
        """eq.-2 constants to use when weighing ``neighbor``'s feedback."""
        return WeightParams(a=self.a, b=self.b_for(neighbor))

    def weight_for(self, neighbor: int, trust: float) -> float:
        """Full adaptive weight ``a_i ** (b_ij * t_ij)`` for a neighbour."""
        return self.params_for(neighbor).weight(trust)
