"""Asynchronous (event-driven) differential gossip.

The paper assumes discrete, globally synchronised steps ("time is
discrete; every node knows about the starting time of gossip process").
Real P2P nodes have no common clock — the standard asynchronous model
gives every node an independent exponential clock and lets it push
whenever its clock ticks. This engine implements differential gossip in
that model on top of :class:`repro.simulation.events.EventScheduler`:

- node ``i`` ticks at rate ``k_i`` (the differential rule expressed in
  rates: a hub pushes proportionally more often, not more per step);
- on a tick, the node splits its pair in half and pushes one half to a
  uniform random neighbour (the asynchronous analogue of the
  ``1/(k+1)`` split — per tick there is exactly one transfer);
- mass conservation is exact, and every node's ratio converges to the
  same global quotient as the synchronous engines.

Convergence is declared when no node's estimate has moved more than
``xi`` over a sliding window of simulated time — the natural
asynchronous counterpart of the paper's per-step test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.differential import push_counts as differential_push_counts
from repro.core.errors import ConvergenceError
from repro.core.state import ratios
from repro.network.graph import Graph
from repro.simulation.events import EventScheduler
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class AsyncGossipOutcome:
    """Result of one asynchronous gossip run.

    Attributes
    ----------
    values, weights:
        Final per-node gossip components.
    simulated_time:
        Simulation clock at termination.
    total_pushes:
        Individual push events executed.
    converged:
        Whether the quiet-window criterion was met (False only when the
        time limit cut the run short and ``strict`` was off).
    """

    values: np.ndarray
    weights: np.ndarray
    simulated_time: float
    total_pushes: int
    converged: bool

    @property
    def estimates(self) -> np.ndarray:
        """Per-node estimates ``y / g``."""
        return ratios(self.values, self.weights)


class AsyncGossipEngine:
    """Event-driven differential gossip on independent exponential clocks.

    Parameters
    ----------
    graph:
        Topology.
    push_counts:
        Per-node differential counts ``k_i``, reinterpreted as *rates*;
        defaults to the differential rule.
    rng:
        Seed / generator (clock draws and target choices).

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> import numpy as np
    >>> engine = AsyncGossipEngine(example_network(), rng=3)
    >>> out = engine.run(np.arange(10.0), np.ones(10), xi=1e-6)
    >>> bool(np.allclose(out.estimates, 4.5, atol=1e-2))
    True
    """

    def __init__(
        self,
        graph: Graph,
        *,
        push_counts: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ):
        self._graph = graph
        counts = (
            np.asarray(push_counts, dtype=np.float64)
            if push_counts is not None
            else differential_push_counts(graph).astype(np.float64)
        )
        if counts.shape != (graph.num_nodes,):
            raise ValueError(
                f"push_counts must have shape ({graph.num_nodes},), got {counts.shape}"
            )
        self._rates = counts
        self._rng = as_generator(rng)

    def run(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        xi: float = 1e-4,
        quiet_window: float = 3.0,
        max_time: float = 10_000.0,
        strict: bool = True,
    ) -> AsyncGossipOutcome:
        """Run until estimates are ``xi``-quiet for ``quiet_window`` time units.

        Parameters
        ----------
        values, weights:
            Initial per-node components, shape ``(N,)``.
        xi:
            Maximum estimate movement tolerated inside the quiet window.
        quiet_window:
            Length (in simulated time, i.e. ~ticks per unit rate) of the
            movement-free interval that declares convergence.
        max_time:
            Simulation-time budget.
        strict:
            Raise :class:`ConvergenceError` on budget exhaustion instead
            of returning a partial result.
        """
        check_positive(xi, "xi")
        check_positive(quiet_window, "quiet_window")
        check_positive(max_time, "max_time")
        graph = self._graph
        n = graph.num_nodes
        value = np.array(values, dtype=np.float64, copy=True).reshape(n)
        weight = np.array(weights, dtype=np.float64, copy=True).reshape(n)

        scheduler = EventScheduler()
        rng = self._rng
        indptr, indices = graph.indptr, graph.indices
        degrees = graph.degrees
        state = {
            "pushes": 0,
            "last_violation": 0.0,
        }
        current = ratios(value, weight)

        def make_tick(node: int):
            def tick(sched: EventScheduler):
                if degrees[node] > 0:
                    neighbor = int(indices[indptr[node] + int(rng.integers(degrees[node]))])
                    moved_value = value[node] / 2.0
                    moved_weight = weight[node] / 2.0
                    value[node] -= moved_value
                    weight[node] -= moved_weight
                    value[neighbor] += moved_value
                    weight[neighbor] += moved_weight
                    state["pushes"] += 1
                    for touched in (node, neighbor):
                        if weight[touched] > 0.0:
                            new_ratio = value[touched] / weight[touched]
                            if abs(new_ratio - current[touched]) > xi:
                                state["last_violation"] = sched.now
                            current[touched] = new_ratio
                        else:
                            state["last_violation"] = sched.now
                # Re-arm this node's exponential clock.
                delay = float(rng.exponential(1.0 / self._rates[node])) if self._rates[node] > 0 else None
                if delay is not None and sched.now + delay <= max_time:
                    sched.schedule_after(delay, tick)

            return tick

        for node in range(n):
            if self._rates[node] > 0 and degrees[node] > 0:
                scheduler.schedule(
                    float(rng.exponential(1.0 / self._rates[node])), make_tick(node)
                )

        converged = False
        while scheduler.pending:
            scheduler.step()
            if scheduler.now - state["last_violation"] >= quiet_window and scheduler.now > quiet_window:
                converged = True
                break
            if scheduler.now > max_time:
                break

        if not converged and strict:
            raise ConvergenceError(int(scheduler.now), n)

        return AsyncGossipOutcome(
            values=value,
            weights=weight,
            simulated_time=scheduler.now,
            total_pushes=state["pushes"],
            converged=converged,
        )
