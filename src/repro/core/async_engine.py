"""Asynchronous (event-driven) differential gossip over real links.

The paper assumes discrete, globally synchronised steps ("time is
discrete; every node knows about the starting time of gossip process").
Real P2P nodes have no common clock — the standard asynchronous model
gives every node an independent exponential clock and lets it push
whenever its clock ticks. This engine implements differential gossip in
that model on top of :class:`repro.simulation.events.EventScheduler`:

- node ``i`` ticks at rate ``k_i`` (the differential rule expressed in
  rates: a hub pushes proportionally more often, not more per step);
- on a tick, the node splits its pair in half and hands one half to the
  *link* towards a uniform random neighbour (the asynchronous analogue
  of the ``1/(k+1)`` split — per tick there is exactly one transfer);
- the link model (:mod:`repro.network.conditions`) decides the push's
  fate: dropped (the mass stays with the sender — the same
  mass-conserving self-redirect the synchronous
  :class:`~repro.network.conditions.PacketLossModel` applies), delivered
  instantly, or delivered after a sampled latency — the pair is then
  *in flight* and lands at the receiver in a scheduled delivery event;
- mass conservation is checked over state **plus in-flight mass** at
  every event (:class:`repro.core.errors.MassConservationError` on
  drift), and every node's ratio converges to the same global quotient
  as the synchronous engines.

Convergence is declared when no node's estimate has moved more than
``xi`` over a sliding window of simulated time **and no pre-quiet mass
is still in flight**: every pair still in the air must have been sent
*after* the last ``xi`` violation. A straggler split off before the
network went quiet could still move its receiver materially when it
lands, so the window keeps waiting for it; pairs sent from an
already-quiet state are sub-``xi`` halves whose landing cannot break
the criterion they were born under.

Determinism: link randomness (loss draws, latency samples) comes from a
dedicated ``link_rng`` stream, never the engine's target-selection
stream. Under the trivial link (zero loss, zero latency — or no link at
all) the engine consumes the exact random byte sequence of the
pre-link-model engine, so results are byte-identical (pinned by
``tests/test_async_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.differential import push_counts as differential_push_counts
from repro.core.errors import ConvergenceError, MassConservationError
from repro.core.state import ratios
from repro.network.conditions import LinkModel
from repro.network.graph import Graph
from repro.simulation.events import EventScheduler
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive

#: Relative tolerance of the per-event state+in-flight mass check: the
#: event loop only ever moves exact binary halves around, but the O(N)
#: re-summation itself rounds, so "exact" means exact up to summation
#: order.
MASS_RTOL = 1e-9


@dataclass
class AsyncGossipOutcome:
    """Result of one asynchronous gossip run.

    Attributes
    ----------
    values, weights:
        Final per-node gossip components (in-flight pairs are flushed to
        their receivers before the outcome is built, so the global sums
        are conserved even on a timeout).
    simulated_time:
        Simulation clock at termination.
    total_pushes:
        Individual push events executed (dropped pushes included — a
        drop is a push whose mass went back to the sender).
    converged:
        Whether the quiet-window criterion was met with no pre-quiet
        pair still in flight (False only when the time limit cut the
        run short and ``strict`` was off).
    total_drops:
        Pushes the link model dropped (mass-conserving self-redirect).
    partition_drops:
        The subset of ``total_drops`` caused by an active partition
        window.
    max_in_flight:
        Peak number of pairs simultaneously in flight.
    flushed_in_flight:
        Pairs still in flight at termination, force-delivered into the
        final state. On a converged run these are all post-quiet
        sub-``xi`` halves landing exactly where their delivery events
        would have put them.
    """

    values: np.ndarray
    weights: np.ndarray
    simulated_time: float
    total_pushes: int
    converged: bool
    total_drops: int = 0
    partition_drops: int = 0
    max_in_flight: int = 0
    flushed_in_flight: int = 0

    @property
    def estimates(self) -> np.ndarray:
        """Per-node estimates ``y / g``."""
        return ratios(self.values, self.weights)


class AsyncGossipEngine:
    """Event-driven differential gossip on independent exponential clocks.

    Parameters
    ----------
    graph:
        Topology.
    push_counts:
        Per-node differential counts ``k_i``, reinterpreted as *rates*;
        defaults to the differential rule.
    rng:
        Seed / generator (clock draws and target choices).
    link:
        Optional :class:`repro.network.conditions.LinkModel` deciding
        each push's fate (drop / instant / delayed). ``None`` is the
        perfect network — byte-identical to
        :class:`~repro.network.conditions.InstantLink` with zero loss.
    link_rng:
        Seed / generator for the link's own randomness (loss draws,
        latency samples). Kept separate from ``rng`` so attaching a link
        model never perturbs target selection; the backend layer derives
        it statelessly from the config seed.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> import numpy as np
    >>> engine = AsyncGossipEngine(example_network(), rng=3)
    >>> out = engine.run(np.arange(10.0), np.ones(10), xi=1e-6)
    >>> bool(np.allclose(out.estimates, 4.5, atol=1e-2))
    True
    """

    def __init__(
        self,
        graph: Graph,
        *,
        push_counts: Optional[np.ndarray] = None,
        rng: RngLike = None,
        link: Optional[LinkModel] = None,
        link_rng: RngLike = None,
    ):
        self._graph = graph
        counts = (
            np.asarray(push_counts, dtype=np.float64)
            if push_counts is not None
            else differential_push_counts(graph).astype(np.float64)
        )
        if counts.shape != (graph.num_nodes,):
            raise ValueError(
                f"push_counts must have shape ({graph.num_nodes},), got {counts.shape}"
            )
        if link is not None and not isinstance(link, LinkModel):
            raise TypeError(f"link must be a LinkModel, got {type(link).__name__}")
        self._rates = counts
        self._rng = as_generator(rng)
        self._link = link
        self._link_rng = link_rng

    def run(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        xi: float = 1e-4,
        quiet_window: float = 3.0,
        max_time: float = 10_000.0,
        strict: bool = True,
        check_mass: bool = True,
    ) -> AsyncGossipOutcome:
        """Run until estimates are ``xi``-quiet for ``quiet_window`` time units.

        Parameters
        ----------
        values, weights:
            Initial per-node components, shape ``(N,)``.
        xi:
            Maximum estimate movement tolerated inside the quiet window.
        quiet_window:
            Length (in simulated time, i.e. ~ticks per unit rate) of the
            movement-free interval that declares convergence. The window
            also waits out in-flight stragglers: a pair sent *before*
            the last ``xi`` violation blocks convergence until it lands
            (and may restart the window when it does).
        max_time:
            Simulation-time budget. On exhaustion, in-flight pairs are
            flushed to their receivers so the returned state conserves
            mass.
        strict:
            Raise :class:`ConvergenceError` on budget exhaustion instead
            of returning a partial result.
        check_mass:
            Assert ``sum(state) + sum(in-flight) == initial mass`` (to
            :data:`MASS_RTOL`) after *every* event, for both components
            (:class:`MassConservationError` on drift). O(N) per event —
            large fixed-budget benchmarks may disable it.
        """
        check_positive(xi, "xi")
        check_positive(quiet_window, "quiet_window")
        check_positive(max_time, "max_time")
        graph = self._graph
        n = graph.num_nodes
        value = np.array(values, dtype=np.float64, copy=True).reshape(n)
        weight = np.array(weights, dtype=np.float64, copy=True).reshape(n)

        scheduler = EventScheduler()
        rng = self._rng
        bound = (
            self._link.bind(graph, self._link_rng) if self._link is not None else None
        )
        indptr, indices = graph.indptr, graph.indices
        degrees = graph.degrees
        state = {
            "pushes": 0,
            "last_violation": 0.0,
            "in_flight_count": 0,
            "in_flight_value": 0.0,
            "in_flight_weight": 0.0,
            "max_in_flight": 0,
            "next_transfer": 0,
        }
        # Pairs in the air: insertion-ordered so a timeout flush is
        # deterministic. Delivery events pop their own entry.
        outstanding = {}
        total_value = float(value.sum())
        total_weight = float(weight.sum())
        value_tol = MASS_RTOL * max(1.0, abs(total_value))
        weight_tol = MASS_RTOL * max(1.0, abs(total_weight))
        current = ratios(value, weight)

        def check_conservation(now: float) -> None:
            value_drift = abs(float(value.sum()) + state["in_flight_value"] - total_value)
            weight_drift = abs(float(weight.sum()) + state["in_flight_weight"] - total_weight)
            if value_drift > value_tol or weight_drift > weight_tol:
                raise MassConservationError(
                    f"state+in-flight mass drifted at t={now:.6g}: "
                    f"value by {value_drift:.3g} (tol {value_tol:.3g}), "
                    f"weight by {weight_drift:.3g} (tol {weight_tol:.3g})"
                )

        def note_movement(touched: int, now: float) -> None:
            if weight[touched] > 0.0:
                new_ratio = value[touched] / weight[touched]
                if abs(new_ratio - current[touched]) > xi:
                    state["last_violation"] = now
                current[touched] = new_ratio
            else:
                state["last_violation"] = now

        def make_delivery(transfer_id: int):
            def deliver(sched: EventScheduler) -> None:
                target, moved_value, moved_weight, _ = outstanding.pop(transfer_id)
                value[target] += moved_value
                weight[target] += moved_weight
                state["in_flight_count"] -= 1
                state["in_flight_value"] -= moved_value
                state["in_flight_weight"] -= moved_weight
                note_movement(target, sched.now)
                if check_mass:
                    check_conservation(sched.now)

            return deliver

        def make_tick(node: int):
            def tick(sched: EventScheduler) -> None:
                if degrees[node] > 0:
                    neighbor = int(indices[indptr[node] + int(rng.integers(degrees[node]))])
                    moved_value = value[node] / 2.0
                    moved_weight = weight[node] / 2.0
                    state["pushes"] += 1
                    dropped, delay = (
                        bound.transfer(sched.now, node, neighbor)
                        if bound is not None
                        else (False, 0.0)
                    )
                    if not dropped:
                        value[node] -= moved_value
                        weight[node] -= moved_weight
                        if delay == 0.0:
                            # Instant delivery, inline — the exact
                            # arithmetic and bookkeeping of the
                            # pre-link-model engine.
                            value[neighbor] += moved_value
                            weight[neighbor] += moved_weight
                            for touched in (node, neighbor):
                                note_movement(touched, sched.now)
                        else:
                            transfer_id = state["next_transfer"]
                            state["next_transfer"] += 1
                            outstanding[transfer_id] = (
                                neighbor, moved_value, moved_weight, sched.now,
                            )
                            state["in_flight_count"] += 1
                            state["in_flight_value"] += moved_value
                            state["in_flight_weight"] += moved_weight
                            if state["in_flight_count"] > state["max_in_flight"]:
                                state["max_in_flight"] = state["in_flight_count"]
                            sched.schedule_after(delay, make_delivery(transfer_id))
                            note_movement(node, sched.now)
                    if check_mass and (bound is not None or dropped):
                        # The trivial path skips the O(N) re-summation:
                        # it moves exact binary halves inline, and the
                        # byte-identity contract keeps it free of new
                        # per-event work.
                        check_conservation(sched.now)
                # Re-arm this node's exponential clock.
                delay = float(rng.exponential(1.0 / self._rates[node])) if self._rates[node] > 0 else None
                if delay is not None and sched.now + delay <= max_time:
                    sched.schedule_after(delay, tick)

            return tick

        for node in range(n):
            if self._rates[node] > 0 and degrees[node] > 0:
                scheduler.schedule(
                    float(rng.exponential(1.0 / self._rates[node])), make_tick(node)
                )

        # A link with scheduled partition windows can look xi-quiet while
        # the partition still holds islands apart: islands converge
        # internally and cross-region pushes drop without moving anyone.
        # Quiet accrued before the last window heals proves nothing, so
        # the window is measured from the heal, not merely gated on it.
        quiet_horizon = bound.quiet_horizon if bound is not None else 0.0

        converged = False
        while scheduler.pending:
            scheduler.step()
            if (
                scheduler.now - max(state["last_violation"], quiet_horizon) >= quiet_window
                and scheduler.now > quiet_window
            ):
                # In-flight straggler hardening: a pair split off
                # *before* the last violation may still move its
                # receiver materially — keep waiting for it. Events fire
                # in time order, so the insertion-ordered dict's first
                # entry is the oldest send.
                if (
                    state["in_flight_count"] == 0
                    or next(iter(outstanding.values()))[3] >= state["last_violation"]
                ):
                    converged = True
                    break
            if scheduler.now > max_time:
                break

        # Pairs still in the air at termination — post-quiet sub-xi
        # halves on a converged run, arbitrary stragglers on a timeout —
        # land at their receivers so the returned state conserves mass
        # (the lenient caller still sees exact global sums; the strict
        # caller's error reflects a consistent world too).
        flushed = len(outstanding)
        for target, moved_value, moved_weight, _ in outstanding.values():
            value[target] += moved_value
            weight[target] += moved_weight
        state["in_flight_count"] = 0
        state["in_flight_value"] = 0.0
        state["in_flight_weight"] = 0.0
        outstanding.clear()
        if check_mass:
            check_conservation(scheduler.now)

        if not converged and strict:
            raise ConvergenceError(int(scheduler.now), n)

        return AsyncGossipOutcome(
            values=value,
            weights=weight,
            simulated_time=scheduler.now,
            total_pushes=state["pushes"],
            converged=converged,
            total_drops=bound.dropped_count if bound is not None else 0,
            partition_drops=bound.partition_dropped_count if bound is not None else 0,
            max_in_flight=state["max_in_flight"],
            flushed_in_flight=flushed,
        )
