"""Algorithm variant 4 — simultaneous GCLR aggregation for all nodes.

The full Differential Gossip Trust system: one gossip round carries,
slot-wise for every tracked target ``j``, the value sum ``sum_i t_ij``,
the single-unit gossip weight and the observer count ``N_dj``; each
estimating node then folds in its weighted neighbour feedback via eq. 6.
The result is the ``(N, d)`` matrix of *per-node* reputations
``Rep_I,j`` — the quantity the collusion experiments (Figures 5–6)
measure RMS error over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.backend import GossipConfig, run_backend
from repro.core.results import GossipOutcome
from repro.core.single_gclr import DenominatorConvention, pick_designated_node
from repro.core.weights import WeightParams, excess_weights
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike


@dataclass
class VectorGclrResult:
    """Outcome of variant 4.

    Attributes
    ----------
    targets:
        Target node ids, one per column.
    reputations:
        ``(N, d)``: ``reputations[I, c]`` is ``Rep_{I, targets[c]}``.
    true_reputations:
        Exact eq.-6 values for every (node, target) cell.
    outcome:
        Raw engine outcome.
    """

    targets: np.ndarray
    reputations: np.ndarray
    true_reputations: np.ndarray
    outcome: GossipOutcome

    @property
    def max_absolute_error(self) -> float:
        """Worst gossip-vs-exact deviation over all cells."""
        return float(np.abs(self.reputations - self.true_reputations).max())

    def reputation_of(self, estimator: int, target: int) -> float:
        """``Rep_{estimator, target}`` (target must be a tracked column)."""
        columns = np.flatnonzero(self.targets == target)
        if columns.size == 0:
            raise KeyError(f"target {target} was not tracked; tracked: {self.targets.tolist()}")
        return float(self.reputations[estimator, int(columns[0])])


def _neighbor_corrections_matrix(
    graph: Graph,
    trust: TrustMatrix,
    targets: np.ndarray,
    params: WeightParams,
) -> tuple:
    """Vectorised eq.-6 correction terms for all estimating nodes at once.

    Returns ``(y_hat, w_excess_sum)`` with shapes ``(N, d)`` and ``(N,)``.
    """
    n = graph.num_nodes
    d = targets.size
    column_index = {int(t): c for c, t in enumerate(targets)}
    # feedback[k] maps column -> t_k,target for targets k has opined about.
    y_hat = np.zeros((n, d), dtype=np.float64)
    w_excess_sum = np.zeros(n, dtype=np.float64)
    # Pre-extract each node's sparse opinions restricted to tracked columns.
    opinion_rows = []
    for k in range(n):
        row = trust.row(k)
        opinion_rows.append(
            [(column_index[t], v) for t, v in row.items() if t in column_index]
        )
    for estimator in range(n):
        excess = excess_weights(params, trust.row(estimator))
        if not excess:
            continue
        for neighbor in graph.neighbors(estimator):
            neighbor = int(neighbor)
            e = excess.get(neighbor)
            if e is None:
                continue
            w_excess_sum[estimator] += e
            for col, value in opinion_rows[neighbor]:
                y_hat[estimator, col] += e * value
    return y_hat, w_excess_sum


def true_vector_gclr(
    graph: Graph,
    trust: TrustMatrix,
    targets: Sequence[int],
    params: WeightParams,
    denominator_convention: DenominatorConvention = "observers",
) -> np.ndarray:
    """Exact eq.-6 reputation matrix (ground truth, no gossip)."""
    target_array = np.asarray(list(targets), dtype=np.int64)
    y_hat, w_excess_sum = _neighbor_corrections_matrix(graph, trust, target_array, params)
    sums = np.array([trust.column_sum(int(t)) for t in target_array])
    if denominator_convention == "observers":
        counts = np.array([float(len(trust.column(int(t)))) for t in target_array])
    else:
        counts = np.full(target_array.size, float(trust.num_nodes))
    denominator = w_excess_sum[:, None] + counts[None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(denominator > 0, (y_hat + sums[None, :]) / denominator, 0.0)


def initial_state_vector_gclr(
    trust: TrustMatrix, targets: Sequence[int], designated: int
) -> tuple:
    """Initial ``(values, weights, counts)`` matrices for variant 4.

    Column ``c`` carries target ``targets[c]``'s value sum and observer
    count; the single ``designated`` node holds gossip weight 1 in every
    column. Exposed separately so the :func:`repro.aggregate` facade and
    tests share the exact initialisation.
    """
    n = trust.num_nodes
    target_array = np.asarray(list(targets), dtype=np.int64)
    d = target_array.size
    values = np.zeros((n, d), dtype=np.float64)
    counts = np.zeros((n, d), dtype=np.float64)
    for col, target in enumerate(target_array):
        for observer, value in trust.column(int(target)).items():
            values[observer, col] = value
            counts[observer, col] = 1.0
    weights = np.zeros((n, d), dtype=np.float64)
    weights[designated, :] = 1.0
    return values, weights, counts


def gclr_reputations(
    graph: Graph,
    trust: TrustMatrix,
    targets: np.ndarray,
    outcome: GossipOutcome,
    params: WeightParams,
    denominator_convention: DenominatorConvention = "observers",
) -> np.ndarray:
    """Fold eq.-6 neighbour corrections into a finished gossip outcome.

    Separating the post-processing from the gossip run lets any backend
    (or the :func:`repro.aggregate` facade) produce the outcome while
    the eq.-6 algebra stays in one place.
    """
    n = graph.num_nodes
    sum_estimates = outcome.estimates  # (N, d): each approximates sum_i t_ij
    count_estimates = outcome.extra_estimates("count")  # (N, d): approximates N_dj
    y_hat, w_excess_sum = _neighbor_corrections_matrix(graph, trust, targets, params)

    if denominator_convention == "observers":
        count_term = count_estimates
    else:
        count_term = np.full((n, targets.size), float(n))
    denominator = w_excess_sum[:, None] + count_term
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(denominator > 0, (y_hat + sum_estimates) / denominator, 0.0)


def aggregate_vector_gclr(
    graph: Graph,
    trust: TrustMatrix,
    *,
    targets: Optional[Sequence[int]] = None,
    params: WeightParams = WeightParams(),
    xi: float = 1e-4,
    denominator_convention: DenominatorConvention = "observers",
    backend: str = "auto",
    designated_node: Optional[int] = None,
    push_counts: Optional[np.ndarray] = None,
    loss_model: Optional[PacketLossModel] = None,
    rng: RngLike = None,
    max_steps: int = 10_000,
    track_history: bool = False,
    patience: int = 3,
) -> VectorGclrResult:
    """Run variant 4: per-node calibrated reputations for all tracked targets.

    Parameters combine those of variants 2 and 3 (``backend`` names any
    registered gossip backend, or ``"auto"``); see
    :func:`repro.core.single_gclr.aggregate_single_gclr` and
    :func:`repro.core.vector_global.aggregate_vector_global`.

    Examples
    --------
    >>> from repro.network.preferential_attachment import preferential_attachment_graph
    >>> from repro.trust.matrix import random_trust_matrix
    >>> g = preferential_attachment_graph(40, m=2, rng=5)
    >>> t = random_trust_matrix(g, rng=6)
    >>> r = aggregate_vector_gclr(g, t, targets=[0, 3, 9], xi=1e-6, rng=7)
    >>> r.max_absolute_error < 0.02
    True
    """
    if graph.num_nodes != trust.num_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes but trust matrix has {trust.num_nodes}"
        )
    n = graph.num_nodes
    if targets is None:
        targets = range(n)
    target_array = np.asarray(list(targets), dtype=np.int64)
    if target_array.size == 0:
        raise ValueError("targets must be non-empty")
    if np.any((target_array < 0) | (target_array >= n)):
        raise ValueError(f"targets outside 0..{n - 1}")
    if np.unique(target_array).size != target_array.size:
        raise ValueError("targets must be distinct")
    if denominator_convention not in ("observers", "all"):
        raise ValueError(
            f"denominator_convention must be 'observers' or 'all', got {denominator_convention!r}"
        )

    designated = pick_designated_node(graph) if designated_node is None else int(designated_node)
    if not 0 <= designated < n or graph.degree(designated) == 0:
        raise ValueError(f"designated_node {designated} must be a non-isolated node id")

    values, weights, counts = initial_state_vector_gclr(trust, target_array, designated)
    outcome = run_backend(
        graph,
        values,
        weights,
        extras={"count": counts},
        config=GossipConfig(
            xi=xi,
            push_counts=push_counts,
            loss_model=loss_model,
            rng=rng,
            max_steps=max_steps,
            track_history=track_history,
            patience=patience,
        ),
        backend=backend,
    )
    reputations = gclr_reputations(
        graph, trust, target_array, outcome, params, denominator_convention
    )

    return VectorGclrResult(
        targets=target_array,
        reputations=reputations,
        true_reputations=true_vector_gclr(
            graph, trust, target_array, params, denominator_convention
        ),
        outcome=outcome,
    )
