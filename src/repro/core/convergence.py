"""Convergence detection and the stop-announcement protocol.

A node cannot observe the network-wide state, so the paper's stopping
rule is purely local and has two layers:

1. **Self convergence** — after a step in which the node heard from at
   least one *other* node, it compares its new estimate against the
   previous step's (``|y/g - u| <= xi`` for a scalar; eq. 7's summed
   form ``sum_j |ratio_j(n) - ratio_j(n-1)| <= N * xi`` for a vector)
   and, on success, announces convergence to its neighbours.
2. **Neighbourhood convergence** — a converged node keeps gossiping
   (its neighbours may still need its pushes) and only *stops* once it
   and every one of its neighbours have announced convergence.

:class:`ConvergenceProtocol` implements both layers over arrays so the
vectorised engine can drive thousands of nodes per step; the
message-level engine uses the same class one node at a time.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.network.graph import Graph
from repro.utils.validation import check_positive


class ConvergenceProtocol:
    """Tracks per-node convergence and the neighbour-announcement stop rule.

    Parameters
    ----------
    graph:
        Topology (neighbour sets drive the stop rule).
    xi:
        Error tolerance ``xi`` of the paper. For vector gossip over
        ``d`` components the per-node threshold is ``d * xi`` (eq. 7
        with ``d = N``).
    num_components:
        Number of gossiped components ``d`` (1 for Algorithms 1–2).
    num_channels:
        Number of independent reputation channels ``V`` the ``d``
        components are split into (channel-major: components
        ``[c * d/V, (c+1) * d/V)`` belong to channel ``c``). Each
        channel runs the paper's eq.-7 test independently against the
        per-channel threshold ``xi * d/V``; a node announces
        convergence only once *every* channel has latched, so one
        converged channel can never stop a straggler channel. The
        default 1 is the single-channel protocol of the paper.
    patience:
        Number of *consecutive* satisfied checks required before a node
        announces convergence. The paper announces on the first
        satisfied check (``patience = 1``); with few feedback sources
        that single-shot test can fire while a region is still
        exchanging mass from just one source (every local ratio equal,
        globally wrong), freezing the round early. A small patience
        (2–3) makes the local rule reliable at negligible step cost; the
        deviation from the paper is documented in DESIGN.md.
    warmup_steps:
        Checks during the first ``warmup_steps`` steps never count: a
        node whose estimate has not moved *because no value mass has
        reached it yet* is indistinguishable from a converged one by the
        local test, and Theorem 5.1 says mass needs ~polylog(N) steps to
        spread. Engines default this to ``ceil(log2 N) + 1``, the PA
        diameter scale. ``warmup_steps = 0`` is the paper-literal rule.

    Notes
    -----
    Isolated nodes (degree 0) can neither push nor receive; they are
    treated as stopped from the outset so they never block termination.
    """

    def __init__(
        self,
        graph: Graph,
        xi: float,
        *,
        num_components: int = 1,
        num_channels: int = 1,
        patience: int = 1,
        warmup_steps: int = 0,
    ):
        check_positive(xi, "xi")
        if num_components < 1:
            raise ValueError(f"num_components must be >= 1, got {num_components}")
        if num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {num_channels}")
        if num_components % num_channels:
            raise ValueError(
                f"num_components ({num_components}) must be a multiple of "
                f"num_channels ({num_channels})"
            )
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
        self._xi = float(xi)
        self._num_channels = int(num_channels)
        self._threshold = float(xi) * (num_components // num_channels)
        self._patience = int(patience)
        self._warmup_steps = int(warmup_steps)
        self._bind(graph)

    def _bind(self, graph: Graph) -> None:
        """Install ``graph`` and zero every per-node counter.

        The degree vector is copied at bind time: the stop rule
        compares ``_converged_neighbor_count`` against it, and both
        must describe the *same* topology. Reading degrees freshly off
        ``graph`` on every refresh invited a stale-counter bug — a
        caller swapping the graph object (e.g. a dynamic-epoch runtime
        reusing one protocol across overlay snapshots) would have
        counters accumulated on the old topology compared against the
        new degree vector, stopping nodes that never converged on the
        new graph. Swapping topologies is now an explicit
        :meth:`rebind`, which resets the counters.
        """
        self._graph = graph
        self._degrees = graph.degrees.copy()
        self._observed_steps = 0
        n = graph.num_nodes
        self._converged = np.zeros(n, dtype=bool)
        self._converged_neighbor_count = np.zeros(n, dtype=np.int64)
        isolated = self._degrees == 0
        self._converged[isolated] = True
        self._isolated = isolated
        self._stopped = isolated.copy()
        # Reusable per-step scratch (observe runs every gossip round;
        # at large N the boolean temporaries dominate its cost). With
        # V > 1 channels the streak/satisfied/failed state is kept per
        # (node, channel); the single-channel layout is untouched.
        if self._num_channels == 1:
            self._satisfied_streak = np.zeros(n, dtype=np.int64)
            self._satisfied = np.empty(n, dtype=bool)
            self._failed = np.empty(n, dtype=bool)
            self._scratch = np.empty(n, dtype=bool)
        else:
            V = self._num_channels
            self._satisfied_streak = np.zeros((n, V), dtype=np.int64)
            self._channel_converged = np.zeros((n, V), dtype=bool)
            self._channel_converged[isolated, :] = True
            self._satisfied = np.empty((n, V), dtype=bool)
            self._failed = np.empty((n, V), dtype=bool)
            self._scratch = np.empty((n, V), dtype=bool)
            self._node_scratch = np.empty(n, dtype=bool)

    def rebind(self, graph: Graph) -> None:
        """Re-target the protocol at a new topology, resetting all state.

        Convergence flags, patience streaks and converged-neighbour
        counters are per-topology quantities: carrying them across a
        graph swap would let counters earned on the old neighbourhoods
        satisfy the new degree vector (a node could be marked stopped
        against neighbours it never heard announce). Use this between
        dynamic-network epochs when reusing one protocol object;
        warm-start state lives in the gossip pairs, not here.
        """
        self._bind(graph)

    # -- read-only state -------------------------------------------------------

    @property
    def xi(self) -> float:
        """Configured error tolerance."""
        return self._xi

    @property
    def threshold(self) -> float:
        """Per-channel deviation threshold (``xi * num_components / num_channels``)."""
        return self._threshold

    @property
    def num_channels(self) -> int:
        """Number of independent reputation channels ``V``."""
        return self._num_channels

    @property
    def channel_converged(self) -> np.ndarray:
        """``(N, V)`` per-channel convergence latches (read-only).

        With a single channel this is the node-level ``converged`` mask
        viewed as an ``(N, 1)`` column.
        """
        if self._num_channels == 1:
            view = self._converged.reshape(-1, 1).view()
        else:
            view = self._channel_converged.view()
        view.flags.writeable = False
        return view

    @property
    def converged(self) -> np.ndarray:
        """Boolean mask of nodes that have announced convergence (read-only)."""
        view = self._converged.view()
        view.flags.writeable = False
        return view

    @property
    def stopped(self) -> np.ndarray:
        """Boolean mask of nodes that stopped gossiping (read-only)."""
        view = self._stopped.view()
        view.flags.writeable = False
        return view

    @property
    def all_stopped(self) -> bool:
        """Whether every node has stopped — the round is over."""
        return bool(self._stopped.all())

    @property
    def num_unconverged(self) -> int:
        """Number of nodes that have not announced convergence yet."""
        return int((~self._converged).sum())

    # -- per-step update ---------------------------------------------------------

    def observe(
        self,
        deviations: np.ndarray,
        heard_external: np.ndarray,
        ratio_defined: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Fold one step's estimate movements into the protocol.

        Parameters
        ----------
        deviations:
            Per-node total estimate movement this step
            (``sum_j |ratio_j(n) - ratio_j(n-1)|``; plain absolute
            difference when ``d = 1``). With ``num_channels > 1`` this
            is the ``(N, V)`` per-channel movement matrix
            (:func:`channel_deviations`).
        heard_external:
            Boolean mask — node received at least one gossip pair from a
            node other than itself this step (the ``|S| > 1`` guard).
        ratio_defined:
            Boolean mask — node's estimate is defined, i.e. its gossip
            weight is non-zero on every live component. While a node's
            weight is zero its ratio is the sentinel ``u = 10``
            (undefined), and the paper's convergence test cannot be
            passed: a node that knows nothing has not converged, however
            still its sentinel sits. ``None`` means "all defined".

        Returns
        -------
        numpy.ndarray
            Ids of nodes that *newly* announced convergence this step.
        """
        if self._num_channels > 1:
            return self._observe_channels(deviations, heard_external, ratio_defined)
        deviations = np.asarray(deviations, dtype=np.float64)
        heard_external = np.asarray(heard_external, dtype=bool)
        n = self._graph.num_nodes
        if deviations.shape != (n,) or heard_external.shape != (n,):
            raise ValueError(
                f"expected shape ({n},) arrays, got {deviations.shape} and {heard_external.shape}"
            )
        self._observed_steps += 1
        # All boolean algebra below runs in preallocated buffers — the
        # per-step temporaries were a measurable fraction of large-N
        # step time. The decisions are identical to the expression
        # satisfied = ~converged & heard & (deviations <= threshold).
        satisfied = self._satisfied
        not_converged = self._scratch
        np.less_equal(deviations, self._threshold, out=satisfied)
        satisfied &= heard_external
        np.logical_not(self._converged, out=not_converged)
        satisfied &= not_converged
        if ratio_defined is not None:
            ratio_defined = np.asarray(ratio_defined, dtype=bool)
            if ratio_defined.shape != (n,):
                raise ValueError(f"ratio_defined must have shape ({n},), got {ratio_defined.shape}")
            satisfied &= ratio_defined
        if self._observed_steps <= self._warmup_steps:
            satisfied[:] = False
        # A failed check (on a step where the node heard something) resets
        # the streak; steps with no external input leave it unchanged, as
        # the pseudocode skips the check entirely when |S| <= 1.
        failed = self._failed
        np.logical_not(satisfied, out=failed)
        failed &= heard_external
        failed &= not_converged
        # Masked in-place updates: the boolean-index forms
        # (streak[mask] += 1 / streak[mask] = 0) materialise index lists
        # and cost ~2x at large N for identical results.
        np.add(self._satisfied_streak, 1, out=self._satisfied_streak, where=satisfied)
        np.copyto(self._satisfied_streak, 0, where=failed)
        announced = self._scratch  # not_converged is dead past this point
        np.greater_equal(self._satisfied_streak, self._patience, out=announced)
        announced &= satisfied
        newly = np.flatnonzero(announced)
        if newly.size:
            self._announce(newly)
        self._refresh_stopped()
        return newly

    def _observe_channels(
        self,
        deviations: np.ndarray,
        heard_external: np.ndarray,
        ratio_defined: "np.ndarray | None",
    ) -> np.ndarray:
        """Multi-channel :meth:`observe`: per-channel eq.-7 latches.

        Each channel keeps its own satisfied streak and, once it has
        held ``patience`` consecutive satisfied checks, latches
        converged — permanently, mirroring the single-channel announce.
        The *node* announces (and starts counting toward the
        neighbourhood stop rule) only when all ``V`` of its channels
        have latched, so a straggler channel keeps the whole node
        gossiping.
        """
        deviations = np.asarray(deviations, dtype=np.float64)
        heard_external = np.asarray(heard_external, dtype=bool)
        n = self._graph.num_nodes
        V = self._num_channels
        if deviations.shape != (n, V) or heard_external.shape != (n,):
            raise ValueError(
                f"expected ({n}, {V}) deviations and ({n},) heard mask, "
                f"got {deviations.shape} and {heard_external.shape}"
            )
        self._observed_steps += 1
        satisfied = self._satisfied
        not_latched = self._scratch
        np.less_equal(deviations, self._threshold, out=satisfied)
        satisfied &= heard_external[:, None]
        np.logical_not(self._channel_converged, out=not_latched)
        satisfied &= not_latched
        if ratio_defined is not None:
            ratio_defined = np.asarray(ratio_defined, dtype=bool)
            if ratio_defined.shape == (n,):
                satisfied &= ratio_defined[:, None]
            elif ratio_defined.shape == (n, V):
                satisfied &= ratio_defined
            else:
                raise ValueError(
                    f"ratio_defined must have shape ({n},) or ({n}, {V}), "
                    f"got {ratio_defined.shape}"
                )
        if self._observed_steps <= self._warmup_steps:
            satisfied[:] = False
        failed = self._failed
        np.logical_not(satisfied, out=failed)
        failed &= heard_external[:, None]
        failed &= not_latched
        np.add(self._satisfied_streak, 1, out=self._satisfied_streak, where=satisfied)
        np.copyto(self._satisfied_streak, 0, where=failed)
        latched = self._scratch  # not_latched is dead past this point
        np.greater_equal(self._satisfied_streak, self._patience, out=latched)
        latched &= satisfied
        self._channel_converged |= latched
        node_ready = self._node_scratch
        np.all(self._channel_converged, axis=1, out=node_ready)
        node_ready &= ~self._converged
        newly = np.flatnonzero(node_ready)
        if newly.size:
            self._announce(newly)
        self._refresh_stopped()
        return newly

    def _announce(self, nodes: Iterable[int]) -> None:
        """Mark ``nodes`` converged and notify their neighbours."""
        node_array = np.asarray(list(nodes), dtype=np.int64)
        self._converged[node_array] = True
        # Each announcement increments the converged-neighbour counter of
        # every neighbour; np.add.at handles shared neighbours correctly.
        indptr, indices = self._graph.indptr, self._graph.indices
        neighbor_lists: List[np.ndarray] = [
            indices[indptr[node] : indptr[node + 1]] for node in node_array
        ]
        if neighbor_lists:
            all_neighbors = np.concatenate(neighbor_lists)
            np.add.at(self._converged_neighbor_count, all_neighbors, 1)

    def _refresh_stopped(self) -> None:
        # Compare counters against the bind-time degree copy, never a
        # freshly read graph attribute — see _bind.
        stopped = self._stopped
        np.greater_equal(self._converged_neighbor_count, self._degrees, out=stopped)
        stopped &= self._converged
        stopped |= self._isolated


def deviation_scalar(new_ratios: np.ndarray, old_ratios: np.ndarray) -> np.ndarray:
    """Per-node estimate movement for scalar gossip (``d = 1``)."""
    return np.abs(np.asarray(new_ratios) - np.asarray(old_ratios)).reshape(-1)


def deviation_vector(new_ratios: np.ndarray, old_ratios: np.ndarray) -> np.ndarray:
    """Per-node estimate movement for vector gossip (eq. 7 left-hand side).

    Parameters
    ----------
    new_ratios, old_ratios:
        ``(N, d)`` ratio arrays from consecutive steps.
    """
    new_ratios = np.asarray(new_ratios)
    old_ratios = np.asarray(old_ratios)
    if new_ratios.ndim != 2:
        raise ValueError(f"expected (N, d) ratios, got shape {new_ratios.shape}")
    return np.abs(new_ratios - old_ratios).sum(axis=1)


def channel_deviations(
    new_ratios: np.ndarray, old_ratios: np.ndarray, num_channels: int
) -> np.ndarray:
    """Per-node, per-channel estimate movement for multi-channel gossip.

    The ``(N, d)`` ratio matrix is channel-major — channel ``c`` owns
    columns ``[c * d/V, (c+1) * d/V)`` — so the eq.-7 sum restricted to
    one channel is a reshape-and-reduce.

    Returns
    -------
    numpy.ndarray
        ``(N, V)`` absolute movement summed within each channel.
    """
    new_ratios = np.asarray(new_ratios)
    old_ratios = np.asarray(old_ratios)
    if new_ratios.ndim != 2:
        raise ValueError(f"expected (N, d) ratios, got shape {new_ratios.shape}")
    n, d = new_ratios.shape
    if num_channels < 1 or d % num_channels:
        raise ValueError(
            f"num_channels ({num_channels}) must divide the component count ({d})"
        )
    return (
        np.abs(new_ratios - old_ratios)
        .reshape(n, num_channels, d // num_channels)
        .sum(axis=2)
    )
