"""Algorithm variant 3 — simultaneous global aggregation for all nodes.

Instead of gossiping about one target, every node pushes its whole
feedback *vector* ``y_i`` (one slot per target) and weight vector
``g_i``, tagged with target ids so receivers add slot-wise. Convergence
uses the summed criterion of eq. 7. Dynamics per slot are identical to
Algorithm 1 run under shared push randomness, so one engine invocation
with an ``(N, d)`` state matrix is an exact simulation.

Memory is ``O(N * d)``: tracking all ``N`` targets is feasible to a few
thousand nodes; beyond that, pass a ``targets`` subset (the experiments
sample targets — slot dynamics are independent, so a sample is unbiased).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.backend import GossipConfig, run_backend
from repro.core.results import GossipOutcome
from repro.core.single_global import Convention
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike


@dataclass
class VectorGlobalResult:
    """Outcome of variant 3.

    Attributes
    ----------
    targets:
        Target node ids, one per column.
    estimates:
        ``(N, d)`` matrix: ``estimates[I, c]`` is node ``I``'s estimate
        of target ``targets[c]``'s global reputation.
    true_values:
        Exact per-target values (length ``d``).
    outcome:
        Raw engine outcome.
    """

    targets: np.ndarray
    estimates: np.ndarray
    true_values: np.ndarray
    outcome: GossipOutcome

    @property
    def max_relative_error(self) -> float:
        """Worst relative error over every (node, target) cell."""
        scale = np.where(np.abs(self.true_values) > 0, np.abs(self.true_values), 1.0)
        return float((np.abs(self.estimates - self.true_values[None, :]) / scale[None, :]).max())


def initial_state_vector_global(
    trust: TrustMatrix,
    targets: Sequence[int],
    convention: Convention = "observers",
) -> tuple:
    """Initial ``(values, weights)`` matrices, one column per target."""
    n = trust.num_nodes
    d = len(targets)
    values = np.zeros((n, d), dtype=np.float64)
    weights = np.zeros((n, d), dtype=np.float64)
    for col, target in enumerate(targets):
        for observer, value in trust.column(int(target)).items():
            values[observer, col] = value
            weights[observer, col] = 1.0
    if convention == "all":
        weights[:, :] = 1.0
    elif convention != "observers":
        raise ValueError(f"convention must be 'observers' or 'all', got {convention!r}")
    return values, weights


def aggregate_vector_global(
    graph: Graph,
    trust: TrustMatrix,
    *,
    targets: Optional[Sequence[int]] = None,
    xi: float = 1e-4,
    convention: Convention = "observers",
    backend: str = "auto",
    push_counts: Optional[np.ndarray] = None,
    loss_model: Optional[PacketLossModel] = None,
    rng: RngLike = None,
    max_steps: int = 10_000,
    track_history: bool = False,
    patience: int = 3,
) -> VectorGlobalResult:
    """Run variant 3: every node estimates every target's global reputation.

    Parameters
    ----------
    graph, trust:
        Topology and local trust matrix (sizes must agree).
    targets:
        Target columns to aggregate (default: all ``N`` nodes — mind the
        ``O(N^2)`` memory).
    xi:
        Eq.-7 tolerance (per-node threshold is ``d * xi``).
    convention:
        See :mod:`repro.core.single_global`.
    backend:
        Gossip backend name (or ``"auto"``); see
        :func:`repro.core.backend.available_backends`.
    Other parameters as in
    :func:`repro.core.single_global.aggregate_single_global`.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> from repro.trust.matrix import random_trust_matrix
    >>> graph = example_network()
    >>> trust = random_trust_matrix(graph, rng=1)
    >>> result = aggregate_vector_global(graph, trust, targets=[0, 3], rng=2)
    >>> result.estimates.shape
    (10, 2)
    """
    if graph.num_nodes != trust.num_nodes:
        raise ValueError(
            f"graph has {graph.num_nodes} nodes but trust matrix has {trust.num_nodes}"
        )
    if targets is None:
        targets = range(graph.num_nodes)
    target_array = np.asarray(list(targets), dtype=np.int64)
    if target_array.size == 0:
        raise ValueError("targets must be non-empty")
    if np.any((target_array < 0) | (target_array >= graph.num_nodes)):
        raise ValueError(f"targets outside 0..{graph.num_nodes - 1}")
    if np.unique(target_array).size != target_array.size:
        raise ValueError("targets must be distinct")

    values, weights = initial_state_vector_global(trust, target_array, convention)
    outcome = run_backend(
        graph,
        values,
        weights,
        config=GossipConfig(
            xi=xi,
            push_counts=push_counts,
            loss_model=loss_model,
            rng=rng,
            max_steps=max_steps,
            track_history=track_history,
            patience=patience,
        ),
        backend=backend,
    )

    if convention == "observers":
        true_values = np.array(
            [trust.column_mean_over_observers(int(t)) for t in target_array]
        )
    else:
        true_values = np.array([trust.column_mean_over_all(int(t)) for t in target_array])

    return VectorGlobalResult(
        targets=target_array,
        estimates=outcome.estimates,
        true_values=true_values,
        outcome=outcome,
    )
