"""Message-level differential-gossip engine.

Where :mod:`repro.core.vector_engine` vectorises the update rule for
scale, this engine models the *protocol*: every node is an object with a
mailbox, pushes are discrete messages, and the convergence announcement
is a message-like event between neighbours. It exists for three reasons:

1. it is a line-by-line rendering of the paper's Algorithm 1/2
   pseudocode, so reviewers can audit fidelity;
2. it cross-checks the vectorised engine (integration tests run both on
   the same topology and compare converged estimates);
3. it produces the per-iteration, per-node traces behind the paper's
   Table 1.

It is O(N) Python objects per step — use it for small networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.differential import resolve_push_counts
from repro.core.errors import ConvergenceError
from repro.core.results import GossipOutcome
from repro.core.state import UNDEFINED_RATIO
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class PushMessage:
    """One gossip push: a ``1/(k+1)`` share of the sender's components."""

    sender: int
    value: np.ndarray  # shape (d,)
    weight: np.ndarray  # shape (d,)
    extras: Dict[str, np.ndarray] = field(default_factory=dict)


class GossipNode:
    """Per-node protocol state machine for differential gossip.

    Mirrors Algorithm 1's per-node variables: the gossip components, the
    previous-step ratio ``u``, the convergence flag, and the set of
    neighbours known to have converged.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: np.ndarray,
        k: int,
        value: np.ndarray,
        weight: np.ndarray,
        extras: Dict[str, np.ndarray],
    ):
        self.node_id = node_id
        self.neighbors = neighbors
        self.k = int(k)
        self.value = value.astype(np.float64).copy()
        self.weight = weight.astype(np.float64).copy()
        self.extras = {name: arr.astype(np.float64).copy() for name, arr in extras.items()}
        self.inbox: List[PushMessage] = []
        self.ever_defined = self.weight != 0.0
        self.previous_ratio = np.full_like(self.value, UNDEFINED_RATIO)
        np.divide(self.value, self.weight, out=self.previous_ratio, where=self.weight != 0.0)
        self.converged = False
        self.satisfied_streak = 0
        self.converged_neighbors: set = set()
        self.stopped = neighbors.size == 0  # isolated nodes never gossip

    def _ratio(self) -> np.ndarray:
        """Current estimate, carrying the last defined ratio through
        drained cells.

        Splitting preserves the ratio exactly in real arithmetic, so a
        cell whose pair underflowed to float zero keeps its previous
        estimate; only never-defined cells show the sentinel.
        """
        defined_now = self.weight != 0.0
        self.ever_defined |= defined_now
        out = self.previous_ratio.copy()
        np.divide(self.value, self.weight, out=out, where=defined_now)
        out[~self.ever_defined] = UNDEFINED_RATIO
        return out

    def absorb_inbox(self) -> bool:
        """Sum all received pairs into local state (Algorithm 1's update).

        Returns whether any pair arrived from a node other than self —
        the ``|S| > 1`` guard on the convergence check.
        """
        heard_external = False
        for message in self.inbox:
            self.value += message.value
            self.weight += message.weight
            for name, arr in message.extras.items():
                self.extras[name] += arr
            if message.sender != self.node_id:
                heard_external = True
        self.inbox.clear()
        return heard_external

    def make_shares(self) -> Tuple[PushMessage, PushMessage]:
        """Split state into ``k + 1`` shares; return (self-share, outgoing-share).

        The outgoing share is identical for every chosen target, so one
        prototype message is built and copied per target by the engine.
        """
        divisor = self.k + 1
        share_value = self.value / divisor
        share_weight = self.weight / divisor
        share_extras = {name: arr / divisor for name, arr in self.extras.items()}
        self_share = PushMessage(self.node_id, share_value, share_weight, share_extras)
        out_share = PushMessage(
            self.node_id,
            share_value.copy(),
            share_weight.copy(),
            {name: arr.copy() for name, arr in share_extras.items()},
        )
        # After splitting, local state is emptied; the self-share comes back
        # through the mailbox exactly as the pseudocode's "send ... to itself".
        self.value = np.zeros_like(self.value)
        self.weight = np.zeros_like(self.weight)
        self.extras = {name: np.zeros_like(arr) for name, arr in self.extras.items()}
        return self_share, out_share

    def check_convergence(
        self,
        threshold: float,
        heard_external: bool,
        live_components: np.ndarray,
        patience: int,
    ) -> bool:
        """Run the ``|y/g - u| <= xi`` test; returns True if newly converged.

        A node whose weight has never been non-zero on a live component
        has an undefined (sentinel) estimate and cannot converge yet.
        The test must hold for ``patience`` consecutive heard-external
        steps (see :class:`repro.core.convergence.ConvergenceProtocol`).
        """
        ratio = self._ratio()
        deviation = float(np.abs(ratio - self.previous_ratio).sum())
        self.previous_ratio = ratio
        if self.converged or not heard_external:
            return False
        if np.any(~self.ever_defined[live_components]) or deviation > threshold:
            self.satisfied_streak = 0
            return False
        self.satisfied_streak += 1
        if self.satisfied_streak >= patience:
            self.converged = True
            return True
        return False

    def note_neighbor_converged(self, neighbor: int) -> None:
        """Record a neighbour's convergence announcement."""
        self.converged_neighbors.add(neighbor)

    def refresh_stopped(self) -> None:
        """Stop once self and every neighbour have converged."""
        if self.converged and len(self.converged_neighbors) >= self.neighbors.size:
            self.stopped = True


class MessageLevelGossip:
    """Protocol-faithful gossip executor over :class:`GossipNode` objects.

    Parameters
    ----------
    graph:
        Topology.
    push_counts:
        Per-node ``k_i``; defaults to the differential rule.
    loss_model:
        Optional churn model; a lost push is re-enqueued to the sender.
    rng:
        Seed / generator for target selection.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.network.topology_example import example_network
    >>> engine = MessageLevelGossip(example_network(), rng=3)
    >>> out = engine.run(np.arange(10.0), np.ones(10))
    >>> bool(np.allclose(out.estimates, 4.5, atol=1e-3))  # mean of 0..9
    True
    """

    def __init__(
        self,
        graph: Graph,
        *,
        push_counts: Optional[np.ndarray] = None,
        loss_model: Optional[PacketLossModel] = None,
        rng: RngLike = None,
    ):
        self._graph = graph
        # Non-strict: oversized counts are clamped to node degree (with
        # a PushCountClampWarning) — the clamp must happen before the
        # (k + 1)-way split or the excess shares would leak gossip mass.
        self._push_counts = resolve_push_counts(graph, push_counts, strict=False)
        self._loss_model = loss_model
        self._rng = as_generator(rng)

    def run(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        xi: float = 1e-4,
        extras: Optional[Dict[str, np.ndarray]] = None,
        max_steps: int = 10_000,
        track_history: bool = False,
        patience: int = 3,
        warmup_steps: Optional[int] = None,
    ) -> GossipOutcome:
        """Execute one gossip round; same contract as the vector engine.

        See :meth:`repro.core.vector_engine.VectorGossipEngine.run`.
        """
        check_positive(xi, "xi")
        graph = self._graph
        n = graph.num_nodes
        values = np.array(values, dtype=np.float64, copy=True)
        weights = np.array(weights, dtype=np.float64, copy=True)
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        if weights.ndim == 1:
            weights = weights.reshape(-1, 1)
        if values.shape != weights.shape or values.shape[0] != n:
            raise ValueError(
                f"values/weights must share shape (N, d) with N={n}; got {values.shape} and {weights.shape}"
            )
        d = values.shape[1]
        extra_arrays = {}
        for name, arr in (extras or {}).items():
            arr = np.array(arr, dtype=np.float64, copy=True)
            if arr.ndim == 1:
                arr = arr.reshape(-1, 1)
            if arr.shape != values.shape:
                raise ValueError(f"extras[{name}] shape {arr.shape} != values shape {values.shape}")
            extra_arrays[name] = arr
        threshold = xi * d

        nodes = [
            GossipNode(
                i,
                graph.neighbors(i),
                self._push_counts[i],
                values[i],
                weights[i],
                {name: arr[i] for name, arr in extra_arrays.items()},
            )
            for i in range(n)
        ]

        history: Optional[List[np.ndarray]] = [] if track_history else None
        live_components = weights.sum(axis=0) != 0.0
        if warmup_steps is None:
            warmup_steps = int(np.ceil(np.log2(max(2, n)))) + 1
        push_messages = 0
        protocol_messages = int(graph.degrees.sum())  # degree announcements
        active_node_steps = 0
        steps = 0

        while not all(node.stopped for node in nodes):
            if steps >= max_steps:
                raise ConvergenceError(steps, sum(1 for node in nodes if not node.converged))

            # Send phase: every active node splits and pushes.
            for node in nodes:
                if node.stopped or node.neighbors.size == 0:
                    continue
                active_node_steps += 1
                self_share, out_share = node.make_shares()
                node.inbox.append(self_share)
                if node.k >= node.neighbors.size:
                    chosen = node.neighbors
                else:
                    chosen = self._rng.choice(node.neighbors, size=node.k, replace=False)
                for target in np.atleast_1d(chosen):
                    push_messages += 1
                    receiver = int(target)
                    if self._loss_model is not None:
                        redirected = self._loss_model.apply(
                            np.array([node.node_id]), np.array([receiver])
                        )
                        receiver = int(redirected[0])
                    message = PushMessage(
                        node.node_id,
                        out_share.value.copy(),
                        out_share.weight.copy(),
                        {name: arr.copy() for name, arr in out_share.extras.items()},
                    )
                    nodes[receiver].inbox.append(message)

            # Receive phase: absorb, check convergence, announce.
            announcements: List[int] = []
            in_warmup = steps < warmup_steps
            for node in nodes:
                if node.inbox:
                    heard_external = node.absorb_inbox()
                    if node.check_convergence(
                        threshold, heard_external and not in_warmup, live_components, patience
                    ):
                        announcements.append(node.node_id)
            for announcer in announcements:
                protocol_messages += int(nodes[announcer].neighbors.size)
                for neighbor in nodes[announcer].neighbors:
                    nodes[int(neighbor)].note_neighbor_converged(announcer)
            for node in nodes:
                node.refresh_stopped()

            steps += 1
            if history is not None:
                snapshot = np.vstack([node._ratio() for node in nodes])
                history.append(snapshot)

        final_values = np.vstack([node.value for node in nodes])
        final_weights = np.vstack([node.weight for node in nodes])
        final_extras = {
            name: np.vstack([node.extras[name] for node in nodes]) for name in extra_arrays
        }
        return GossipOutcome(
            values=final_values,
            weights=final_weights,
            extras=final_extras,
            steps=steps,
            push_messages=push_messages,
            protocol_messages=protocol_messages,
            active_node_steps=active_node_steps,
            converged=np.array([node.converged for node in nodes]),
            ratio_history=history,
        )
