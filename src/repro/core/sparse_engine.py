"""Sparse CSR differential-gossip engine.

This is the scale-path engine: it executes the exact Algorithm 1–4
update rule of :class:`repro.core.vector_engine.VectorGossipEngine`, but
every per-step operation is a flat vectorised pass over preallocated
buffers — no Python loop over nodes, however skewed the degree
distribution. The differences that matter at large N:

- **Target selection** is fully vectorised. Nodes are grouped by push
  count ``k`` at construction time; each group's neighbour lists are
  padded into a dense ``(group_size, max_degree)`` matrix once, and a
  step draws one uniform key per neighbour slot and takes the ``k``
  smallest keys per node (``argpartition``), which is a uniform random
  ``k``-subset of distinct neighbours. The dense engine instead loops
  over every hub in Python (``rng.choice`` per node per step).
- **Accumulation** uses per-column ``np.bincount`` scatter-adds instead
  of ``np.add.at`` (bincount is several times faster for int64 targets).
- **State** for all gossiped components (value, weight, extras) lives in
  one contiguous ``(N, C)`` matrix, so each step performs a single
  gather and a single scale instead of one per component.

Semantics are identical to the dense engine: the same
:class:`repro.core.convergence.ConvergenceProtocol` stop rule, the same
:class:`repro.network.churn.PacketLossModel` mass-conserving redirect,
the same per-step mass-conservation assertions, and the same
drained-ratio carry for underflowed cells. Identical seeds replay
identical *sparse* runs bit-for-bit; the sparse and dense engines
consume randomness in different patterns, so their trajectories differ
step-by-step while converging to the same estimates (the cross-engine
integration tests pin this to 1e-8 relative agreement).

The engine accepts either a :class:`repro.network.graph.Graph` or any
``scipy.sparse`` adjacency matrix (converted once via
:meth:`repro.network.graph.Graph.from_scipy_sparse`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.convergence import ConvergenceProtocol, deviation_vector
from repro.core.differential import resolve_push_counts
from repro.core.errors import ConvergenceError, MassConservationError
from repro.core.results import GossipOutcome
from repro.core.state import MASS_RTOL, ratios
from repro.core.vector_engine import _as_state_matrix
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator


def _coerce_graph(graph) -> Graph:
    """Accept a :class:`Graph` or a scipy sparse adjacency matrix."""
    if isinstance(graph, Graph):
        return graph
    if hasattr(graph, "tocsr"):
        return Graph.from_scipy_sparse(graph)
    raise TypeError(
        f"graph must be a repro Graph or a scipy sparse adjacency matrix, got {type(graph)!r}"
    )


class _PushGroup:
    """Preallocated sampling state for nodes sharing one push count ``k >= 2``.

    ``padded_neighbors[r]`` holds node ``nodes[r]``'s neighbour list,
    right-padded to the group's maximum degree; ``invalid`` marks the
    padding slots. ``keys`` is a reusable scratch buffer for the random
    sort keys (rows beyond the active count are simply unused that step).

    Groups are built per (k, degree band) — see the engine constructor —
    so the padding width stays within 2x of every member's degree and
    total padded storage is O(E), however skewed the degree distribution.
    """

    __slots__ = ("k", "nodes", "padded_neighbors", "invalid", "keys")

    def __init__(self, k: int, nodes: np.ndarray, graph: Graph):
        self.k = int(k)
        self.nodes = nodes
        degrees = graph.degrees[nodes]
        width = int(degrees.max())
        starts = graph.indptr[nodes]
        cols = np.arange(width, dtype=np.int64)
        slots = starts[:, None] + cols[None, :]
        valid = cols[None, :] < degrees[:, None]
        # Clamp padding reads into range; the values there are never used.
        slots[~valid] = 0
        self.padded_neighbors = graph.indices[slots]
        self.invalid = ~valid
        self.keys = np.empty((nodes.size, width), dtype=np.float64)


class SparseGossipEngine:
    """Vectorised CSR engine for very large gossip rounds.

    Drop-in compatible with
    :class:`repro.core.vector_engine.VectorGossipEngine`: same
    constructor parameters (the topology may additionally be a
    ``scipy.sparse`` matrix), same :meth:`run` signature, same
    :class:`repro.core.results.GossipOutcome`.

    Parameters
    ----------
    graph:
        Overlay topology — a :class:`repro.network.graph.Graph` or a
        square symmetric zero-diagonal ``scipy.sparse`` matrix.
    push_counts:
        Per-node push counts ``k_i``; defaults to the differential rule.
    loss_model:
        Optional churn/packet-loss model applied to every push.
    rng:
        Seed / generator for target selection.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> import numpy as np
    >>> g = example_network()
    >>> engine = SparseGossipEngine(g, rng=7)
    >>> values = np.arange(10, dtype=float)
    >>> outcome = engine.run(values, np.ones(10), xi=1e-6)
    >>> bool(np.allclose(outcome.estimates, values.mean(), atol=1e-3))
    True
    """

    def __init__(
        self,
        graph,
        *,
        push_counts: Optional[np.ndarray] = None,
        loss_model: Optional[PacketLossModel] = None,
        rng: RngLike = None,
        degree_announcements: Optional[bool] = None,
    ):
        graph = _coerce_graph(graph)
        self._graph = graph
        if degree_announcements is None:
            degree_announcements = push_counts is None
        self._degree_announcements = bool(degree_announcements)
        push_counts = resolve_push_counts(graph, push_counts)
        self._push_counts = push_counts
        self._loss_model = loss_model
        self._rng = as_generator(rng)

        degrees = graph.degrees
        eligible = degrees > 0
        self._k1_nodes = np.flatnonzero(eligible & (push_counts == 1))
        self._groups: List[_PushGroup] = []
        for k in np.unique(push_counts[eligible & (push_counts >= 2)]):
            nodes = np.flatnonzero(push_counts == k)
            # Sub-bucket by degree scale (powers of two): one huge hub
            # sharing k with thousands of low-degree nodes must not
            # widen every row of their padded matrix to its degree.
            bands = np.ceil(np.log2(degrees[nodes])).astype(np.int64)
            for band in np.unique(bands):
                self._groups.append(_PushGroup(int(k), nodes[bands == band], graph))
        # Reusable per-step buffers (flat, preallocated once).
        n = graph.num_nodes
        self._scale = np.empty(n, dtype=np.float64)
        self._inv_k_plus_one = 1.0 / (push_counts + 1.0)
        self._max_pushes = int(push_counts[eligible].sum())

    @property
    def graph(self) -> Graph:
        """Topology this engine is bound to."""
        return self._graph

    @property
    def push_counts(self) -> np.ndarray:
        """Per-node push counts ``k_i`` (read-only)."""
        view = self._push_counts.view()
        view.flags.writeable = False
        return view

    # -- target selection -------------------------------------------------------

    def _choose_targets(self, active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Random push targets for every active node, fully vectorised.

        Returns ``(senders, targets)`` flat arrays: node ``senders[p]``
        pushes its share to ``targets[p]``. Each sender appears ``k_i``
        times with *distinct* targets, uniformly over the
        ``k_i``-subsets of its neighbourhood.
        """
        graph = self._graph
        indptr, indices = graph.indptr, graph.indices
        degrees = graph.degrees
        rng = self._rng
        sender_chunks: List[np.ndarray] = []
        target_chunks: List[np.ndarray] = []

        k1 = self._k1_nodes[active[self._k1_nodes]]
        if k1.size:
            # integers() is exact: offsets are in [0, degree) by
            # construction (float scaling could round up to degree).
            offsets = rng.integers(degrees[k1])
            target_chunks.append(indices[indptr[k1] + offsets])
            sender_chunks.append(k1)

        for group in self._groups:
            rows = np.flatnonzero(active[group.nodes])
            if not rows.size:
                continue
            k = group.k
            keys = group.keys[: rows.size]
            rng.random(out=keys)
            keys[group.invalid[rows]] = np.inf
            # The k smallest iid-uniform keys per row select a uniform
            # random k-subset of that row's (distinct) valid neighbours.
            chosen_cols = np.argpartition(keys, k - 1, axis=1)[:, :k]
            chosen = group.padded_neighbors[rows[:, None], chosen_cols]
            target_chunks.append(chosen.ravel())
            sender_chunks.append(np.repeat(group.nodes[rows], k))

        if not sender_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(sender_chunks), np.concatenate(target_chunks)

    # -- main loop ----------------------------------------------------------------

    def run(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        xi: float = 1e-4,
        extras: Optional[Dict[str, np.ndarray]] = None,
        max_steps: int = 10_000,
        track_history: bool = False,
        run_to_max: bool = False,
        patience: int = 3,
        warmup_steps: Optional[int] = None,
    ) -> GossipOutcome:
        """Execute one gossip round to the stopping condition.

        Parameters, semantics, return type and raised exceptions are
        identical to
        :meth:`repro.core.vector_engine.VectorGossipEngine.run`.
        """
        graph = self._graph
        n = graph.num_nodes
        value = _as_state_matrix(values, n, "values")
        weight = _as_state_matrix(weights, n, "weights")
        d = value.shape[1]
        if weight.shape != value.shape:
            raise ValueError(f"weights shape {weight.shape} != values shape {value.shape}")
        names: List[str] = ["value", "weight"]
        columns: List[np.ndarray] = [value, weight]
        for name, extra in (extras or {}).items():
            matrix = _as_state_matrix(extra, n, f"extras[{name}]")
            if matrix.shape != value.shape:
                raise ValueError(
                    f"extras[{name}] shape {matrix.shape} != values shape {value.shape}"
                )
            if name in ("value", "weight"):
                raise ValueError(f"extra component name {name!r} is reserved")
            names.append(name)
            columns.append(matrix)

        # One contiguous (N, C) state matrix; component i owns columns
        # [i*d, (i+1)*d). Gather/scale/scatter touch all components at once.
        state = np.concatenate(columns, axis=1)
        slices = {name: slice(i * d, (i + 1) * d) for i, name in enumerate(names)}
        total_cols = state.shape[1]

        initial_mass = {name: float(state[:, sl].sum()) for name, sl in slices.items()}
        live_components = state[:, slices["weight"]].sum(axis=0) != 0.0
        if warmup_steps is None:
            warmup_steps = int(np.ceil(np.log2(max(2, n)))) + 1
        protocol = ConvergenceProtocol(
            graph, xi, num_components=d, patience=patience, warmup_steps=warmup_steps
        )
        previous_ratios = ratios(state[:, slices["value"]], state[:, slices["weight"]])
        ever_defined = state[:, slices["weight"]] != 0.0
        history: Optional[List[np.ndarray]] = [] if track_history else None

        inv_k_plus_one = self._inv_k_plus_one
        scale = self._scale
        shares_buf = np.empty((self._max_pushes, total_cols), dtype=np.float64)
        push_messages = 0
        protocol_messages = int(graph.degrees.sum()) if self._degree_announcements else 0
        degrees = graph.degrees
        active_node_steps = 0
        steps = 0

        while not protocol.all_stopped or (run_to_max and steps < max_steps):
            if steps >= max_steps:
                if run_to_max:
                    break
                raise ConvergenceError(steps, protocol.num_unconverged)
            active = ~protocol.stopped & (degrees > 0)
            if run_to_max:
                active = degrees > 0
            senders, targets = self._choose_targets(active)
            if self._loss_model is not None:
                effective_targets = self._loss_model.apply(senders, targets)
            else:
                effective_targets = targets
            push_messages += int(senders.size)
            active_node_steps += int(active.sum())

            # Shares come from the pre-split state; the scale pass then
            # leaves exactly the self-share behind at every active node.
            shares = shares_buf[: senders.size]
            np.multiply(state[senders], inv_k_plus_one[senders, None], out=shares)
            scale.fill(1.0)
            scale[active] = inv_k_plus_one[active]
            state *= scale[:, None]
            for c in range(total_cols):
                state[:, c] += np.bincount(
                    effective_targets, weights=shares[:, c], minlength=n
                )

            heard_external = np.zeros(n, dtype=bool)
            external = effective_targets[effective_targets != senders]
            heard_external[external] = True

            defined_now = state[:, slices["weight"]] != 0.0
            ever_defined |= defined_now
            new_ratios = ratios(state[:, slices["value"]], state[:, slices["weight"]])
            drained = ever_defined & ~defined_now
            if drained.any():
                new_ratios[drained] = previous_ratios[drained]
            if live_components.all():
                ratio_defined = ever_defined.all(axis=1)
            else:
                ratio_defined = ever_defined[:, live_components].all(axis=1)
            newly_converged = protocol.observe(
                deviation_vector(new_ratios, previous_ratios), heard_external, ratio_defined
            )
            if newly_converged.size:
                protocol_messages += int(degrees[newly_converged].sum())
            previous_ratios = new_ratios
            if history is not None:
                history.append(new_ratios.copy())
            steps += 1

            for name, sl in slices.items():
                total = float(state[:, sl].sum())
                mass_scale = max(abs(initial_mass[name]), 1.0)
                if abs(total - initial_mass[name]) > MASS_RTOL * mass_scale * max(1.0, np.sqrt(n * d)):
                    raise MassConservationError(
                        f"component {name!r} mass drifted from {initial_mass[name]!r} to {total!r} at step {steps}"
                    )

        extra_names = [name for name in names if name not in ("value", "weight")]
        return GossipOutcome(
            values=state[:, slices["value"]].copy(),
            weights=state[:, slices["weight"]].copy(),
            extras={name: state[:, slices[name]].copy() for name in extra_names},
            steps=steps,
            push_messages=push_messages,
            protocol_messages=protocol_messages,
            active_node_steps=active_node_steps,
            converged=protocol.converged.copy(),
            ratio_history=history,
        )
