"""Sparse CSR differential-gossip engine.

This is the scale-path engine: it executes the exact Algorithm 1–4
update rule of :class:`repro.core.vector_engine.VectorGossipEngine`, but
every per-step operation is a flat vectorised pass over preallocated
buffers — no Python loop over nodes, however skewed the degree
distribution.

The push round itself — target sampling, share split, self-share scale,
scatter-accumulate, heard bookkeeping — is delegated to a pluggable
*kernel* from :mod:`repro.core.kernels`:

- ``fused`` (default): prescales the state matrix once and buffer-swaps
  instead of re-scaling, gathers shares with a single ``take``, and
  scatter-adds all columns through one combined ``bincount`` — no
  ``(N, C)`` temporaries in the hot loop.
- ``numba``: the same round with compiled selection and a fully fused
  scatter pass; requires the optional ``kernels`` extra.
- ``unfused``: the historical step, byte-for-byte, kept as the parity
  and benchmark reference.

All kernels draw targets through one shared
:class:`~repro.core.kernels.plan.PushPlan`, so a fixed seed samples the
same neighbour subsets under every kernel; see the kernels package for
the exact byte-compatibility contract. The engine also accepts a state
``dtype`` — float64 is the reference, float32 halves memory traffic
while keeping sampling (and therefore the gossip communication pattern)
byte-identical, since random keys always stay float64.

Semantics are identical to the dense engine: the same
:class:`repro.core.convergence.ConvergenceProtocol` stop rule, the same
:class:`repro.network.churn.PacketLossModel` mass-conserving redirect,
the same per-step mass-conservation assertions (tolerance scaled to the
state dtype), and the same drained-ratio carry for underflowed cells.
Identical seeds replay identical *sparse* runs bit-for-bit under a
fixed kernel; the sparse and dense engines consume randomness in
different patterns, so their trajectories differ step-by-step while
converging to the same estimates (the cross-engine integration tests
pin this to 1e-8 relative agreement).

The engine accepts either a :class:`repro.network.graph.Graph` or any
``scipy.sparse`` adjacency matrix (converted once via
:meth:`repro.network.graph.Graph.from_scipy_sparse`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.convergence import ConvergenceProtocol
from repro.core.differential import resolve_push_counts
from repro.core.errors import ConvergenceError, MassConservationError
from repro.core.kernels import PushPlan, select_kernel
from repro.core.results import GossipOutcome
from repro.core.state import UNDEFINED_RATIO, mass_rtol_for, resolve_state_dtype
from repro.core.vector_engine import _as_state_matrix
from repro.network.churn import PacketLossModel
from repro.network.graph import Graph
from repro.utils.rng import RngLike, as_generator


def _coerce_graph(graph) -> Graph:
    """Accept a :class:`Graph` or a scipy sparse adjacency matrix."""
    if isinstance(graph, Graph):
        return graph
    if hasattr(graph, "tocsr"):
        return Graph.from_scipy_sparse(graph)
    raise TypeError(
        f"graph must be a repro Graph or a scipy sparse adjacency matrix, got {type(graph)!r}"
    )


class SparseGossipEngine:
    """Vectorised CSR engine for very large gossip rounds.

    Drop-in compatible with
    :class:`repro.core.vector_engine.VectorGossipEngine`: same
    constructor parameters (the topology may additionally be a
    ``scipy.sparse`` matrix), same :meth:`run` signature, same
    :class:`repro.core.results.GossipOutcome`.

    Parameters
    ----------
    graph:
        Overlay topology — a :class:`repro.network.graph.Graph` or a
        square symmetric zero-diagonal ``scipy.sparse`` matrix.
    push_counts:
        Per-node push counts ``k_i``; defaults to the differential rule.
    loss_model:
        Optional churn/packet-loss model applied to every push.
    rng:
        Seed / generator for target selection.
    dtype:
        Gossip state precision: ``"float64"`` (reference, default) or
        ``"float32"`` (half the memory traffic; target sampling stays
        byte-identical). Anything else raises
        :class:`repro.core.errors.UnsupportedDtypeError`.
    kernel:
        Push-round kernel name (``"fused"``, ``"numba"``,
        ``"unfused"``) or ``None``/"auto" for the best available — see
        :func:`repro.core.kernels.select_kernel`.

    Examples
    --------
    >>> from repro.network.topology_example import example_network
    >>> import numpy as np
    >>> g = example_network()
    >>> engine = SparseGossipEngine(g, rng=7)
    >>> values = np.arange(10, dtype=float)
    >>> outcome = engine.run(values, np.ones(10), xi=1e-6)
    >>> bool(np.allclose(outcome.estimates, values.mean(), atol=1e-3))
    True
    """

    def __init__(
        self,
        graph,
        *,
        push_counts: Optional[np.ndarray] = None,
        loss_model: Optional[PacketLossModel] = None,
        rng: RngLike = None,
        degree_announcements: Optional[bool] = None,
        dtype=np.float64,
        kernel: Optional[str] = None,
    ):
        graph = _coerce_graph(graph)
        self._graph = graph
        if degree_announcements is None:
            degree_announcements = push_counts is None
        self._degree_announcements = bool(degree_announcements)
        push_counts = resolve_push_counts(graph, push_counts)
        self._push_counts = push_counts
        self._loss_model = loss_model
        self._rng = as_generator(rng)
        self._dtype = resolve_state_dtype(dtype)
        # Resolve the kernel spec up front so an unavailable request
        # fails at construction, not mid-run.
        self._kernel_spec = select_kernel(kernel)
        self._plan = PushPlan(graph.indptr, graph.indices, graph.degrees, push_counts)
        self._inv_k_plus_one = 1.0 / (push_counts + 1.0)
        self._max_pushes = self._plan.max_pushes
        self._kernels: Dict[Tuple[int, int], object] = {}

    @property
    def graph(self) -> Graph:
        """Topology this engine is bound to."""
        return self._graph

    @property
    def push_counts(self) -> np.ndarray:
        """Per-node push counts ``k_i`` (read-only)."""
        view = self._push_counts.view()
        view.flags.writeable = False
        return view

    @property
    def kernel_name(self) -> str:
        """Name of the push kernel this engine resolved to."""
        return self._kernel_spec.name

    @property
    def dtype(self) -> np.dtype:
        """Gossip state precision this engine runs at."""
        return self._dtype

    @property
    def _groups(self):
        """Padded sampling groups (compatibility accessor for tests)."""
        return self._plan.groups

    @property
    def _k1_nodes(self) -> np.ndarray:
        return self._plan.k1_nodes

    # -- target selection -------------------------------------------------------

    def _choose_targets(self, active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Random push targets for every active node, fully vectorised.

        Returns ``(senders, targets)`` flat arrays: node ``senders[p]``
        pushes its share to ``targets[p]``. Each sender appears ``k_i``
        times with *distinct* targets, uniformly over the
        ``k_i``-subsets of its neighbourhood.
        """
        return self._plan.sample_subset(self._rng, active)

    def _kernel_for(self, num_cols: int, num_channels: int = 1):
        """Kernel instance for a ``num_cols``-wide state (cached per width)."""
        key = (num_cols, num_channels)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = self._kernel_spec.factory(
                self._plan,
                self._inv_k_plus_one,
                num_cols,
                self._dtype,
                num_channels=num_channels,
            )
            self._kernels[key] = kernel
        return kernel

    # -- main loop ----------------------------------------------------------------

    def run(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        *,
        xi: float = 1e-4,
        extras: Optional[Dict[str, np.ndarray]] = None,
        max_steps: int = 10_000,
        track_history: bool = False,
        run_to_max: bool = False,
        patience: int = 3,
        warmup_steps: Optional[int] = None,
        num_channels: int = 1,
    ) -> GossipOutcome:
        """Execute one gossip round to the stopping condition.

        Parameters, semantics, return type and raised exceptions are
        identical to
        :meth:`repro.core.vector_engine.VectorGossipEngine.run`.
        """
        graph = self._graph
        n = graph.num_nodes
        value = _as_state_matrix(values, n, "values", dtype=self._dtype)
        weight = _as_state_matrix(weights, n, "weights", dtype=self._dtype)
        d = value.shape[1]
        if num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {num_channels}")
        if d % num_channels:
            raise ValueError(
                f"values width ({d}) must be a multiple of num_channels ({num_channels})"
            )
        if weight.shape != value.shape:
            raise ValueError(f"weights shape {weight.shape} != values shape {value.shape}")
        names: List[str] = ["value", "weight"]
        columns: List[np.ndarray] = [value, weight]
        for name, extra in (extras or {}).items():
            matrix = _as_state_matrix(extra, n, f"extras[{name}]", dtype=self._dtype)
            if matrix.shape != value.shape:
                raise ValueError(
                    f"extras[{name}] shape {matrix.shape} != values shape {value.shape}"
                )
            if name in ("value", "weight"):
                raise ValueError(f"extra component name {name!r} is reserved")
            names.append(name)
            columns.append(matrix)

        # One contiguous (N, C) state matrix; component i owns columns
        # [i*d, (i+1)*d). Gather/scale/scatter touch all components at once.
        state = np.concatenate(columns, axis=1)
        slices = {name: slice(i * d, (i + 1) * d) for i, name in enumerate(names)}
        total_cols = state.shape[1]

        initial_mass = {
            name: float(state[:, sl].sum(dtype=np.float64)) for name, sl in slices.items()
        }
        live_components = state[:, slices["weight"]].sum(axis=0) != 0.0
        all_live = bool(live_components.all())
        if warmup_steps is None:
            warmup_steps = int(np.ceil(np.log2(max(2, n)))) + 1
        protocol = ConvergenceProtocol(
            graph,
            xi,
            num_components=d,
            num_channels=num_channels,
            patience=patience,
            warmup_steps=warmup_steps,
        )
        history: Optional[List[np.ndarray]] = [] if track_history else None

        kernel = self._kernel_for(total_cols, num_channels)
        degrees = graph.degrees
        eligible = degrees > 0
        eligible_count = self._plan.eligible_count
        mass_rtol = mass_rtol_for(self._dtype)
        mass_bound = {
            name: mass_rtol * max(abs(initial_mass[name]), 1.0) * max(1.0, np.sqrt(n * d))
            for name in names
        }

        # Reusable bookkeeping buffers: the ratio matrices ping-pong
        # between steps, everything else is overwritten in full each
        # round. All derived quantities are float64 regardless of the
        # state dtype (the stop protocol is control flow, not mass).
        ratio_a = np.full((n, d), UNDEFINED_RATIO, dtype=np.float64)
        ratio_b = np.empty((n, d), dtype=np.float64)
        deviation_matrix = np.empty((n, d), dtype=np.float64)
        deviations = np.empty(n, dtype=np.float64)
        channel_dev = (
            np.empty((n, num_channels), dtype=np.float64) if num_channels > 1 else None
        )
        defined_now = np.empty((n, d), dtype=bool)
        not_defined = np.empty((n, d), dtype=bool)
        drained = np.empty((n, d), dtype=bool)
        heard_external = np.empty(n, dtype=bool)
        active_buf = np.empty(n, dtype=bool)
        not_stopped = np.empty(n, dtype=bool)

        def compute_ratios(out: np.ndarray) -> bool:
            # Same operations as state.ratios(): fill the sentinel, then
            # a masked divide. The quotient is computed at state
            # precision and stored float64, so float32 runs carry
            # float32-accurate ratios — bounded by the dtype-drift
            # parity tests, and well inside any practical xi.
            value_view = state[:, slices["value"]]
            weight_view = state[:, slices["weight"]]
            np.not_equal(weight_view, 0.0, out=defined_now)
            if defined_now.all():
                # No zero weights: a plain divide writes every slot the
                # masked divide would, so the sentinel fill is dead work.
                np.divide(value_view, weight_view, out=out)
                return True
            out.fill(UNDEFINED_RATIO)
            np.divide(value_view, weight_view, out=out, where=defined_now)
            return False

        all_defined = compute_ratios(ratio_a)
        previous_ratios = ratio_a
        new_ratios = ratio_b
        ever_defined = defined_now.copy()
        # Once every weight is non-zero, ever_defined is all-True and
        # the drained/ratio_defined algebra below is constant: the flag
        # lets the common case (weights initialised positive everywhere)
        # skip it entirely. Decisions are identical either way.
        ever_defined_all = bool(all_defined)

        push_messages = 0
        protocol_messages = int(degrees.sum()) if self._degree_announcements else 0
        active_node_steps = 0
        steps = 0

        while not protocol.all_stopped or (run_to_max and steps < max_steps):
            if steps >= max_steps:
                if run_to_max:
                    break
                raise ConvergenceError(steps, protocol.num_unconverged)
            if run_to_max:
                active = eligible
                active_count = eligible_count
            else:
                np.logical_not(protocol.stopped, out=not_stopped)
                active = np.logical_and(eligible, not_stopped, out=active_buf)
                active_count = int(active.sum())
            active_node_steps += active_count

            state, num_pushes = kernel.step(
                state,
                active,
                all_active=active_count == eligible_count,
                rng=self._rng,
                loss_model=self._loss_model,
                heard_out=heard_external,
            )
            push_messages += num_pushes

            all_defined = compute_ratios(new_ratios)
            if all_defined:
                # Every cell defined this step: nothing can have
                # drained (drained = ever_defined & ~defined_now is
                # empty), and the defined mask observe needs is
                # all-True (None in its calling convention).
                if not ever_defined_all:
                    ever_defined[:] = True
                    ever_defined_all = True
                ratio_defined = None
            else:
                ever_defined |= defined_now
                np.logical_not(defined_now, out=not_defined)
                np.logical_and(ever_defined, not_defined, out=drained)
                if drained.any():
                    # A cell whose weight underflowed to zero keeps its
                    # last defined ratio instead of snapping to the
                    # sentinel.
                    new_ratios[drained] = previous_ratios[drained]
                if num_channels > 1:
                    # Per-channel defined mask: every live column the
                    # channel owns has held weight (dead columns are
                    # vacuously defined).
                    if all_live:
                        defined_full = ever_defined
                    else:
                        defined_full = ever_defined | ~live_components[None, :]
                    ratio_defined = defined_full.reshape(
                        n, num_channels, d // num_channels
                    ).all(axis=2)
                elif all_live:
                    # (n, 1) column view == .all(axis=1) minus the reduce.
                    ratio_defined = ever_defined[:, 0] if d == 1 else ever_defined.all(axis=1)
                else:
                    ratio_defined = ever_defined[:, live_components].all(axis=1)

            if num_channels > 1:
                np.subtract(new_ratios, previous_ratios, out=deviation_matrix)
                np.abs(deviation_matrix, out=deviation_matrix)
                np.sum(
                    deviation_matrix.reshape(n, num_channels, d // num_channels),
                    axis=2,
                    out=channel_dev,
                )
                step_deviations = channel_dev
            elif d == 1:
                np.subtract(new_ratios[:, 0], previous_ratios[:, 0], out=deviations)
                np.abs(deviations, out=deviations)
                step_deviations = deviations
            else:
                np.subtract(new_ratios, previous_ratios, out=deviation_matrix)
                np.abs(deviation_matrix, out=deviation_matrix)
                np.sum(deviation_matrix, axis=1, out=deviations)
                step_deviations = deviations
            newly_converged = protocol.observe(step_deviations, heard_external, ratio_defined)
            if newly_converged.size:
                protocol_messages += int(degrees[newly_converged].sum())
            previous_ratios, new_ratios = new_ratios, previous_ratios
            if history is not None:
                history.append(previous_ratios.copy())
            steps += 1

            # Per-slice strided sums: ~13x faster than one
            # state.sum(axis=0) pass (numpy's axis-0 reduce over a
            # C-order matrix is a slow strided inner loop).
            for name, sl in slices.items():
                total = float(state[:, sl].sum(dtype=np.float64))
                if abs(total - initial_mass[name]) > mass_bound[name]:
                    raise MassConservationError(
                        f"component {name!r} mass drifted from {initial_mass[name]!r} to {total!r} at step {steps}"
                    )

        extra_names = [name for name in names if name not in ("value", "weight")]
        return GossipOutcome(
            values=state[:, slices["value"]].copy(),
            weights=state[:, slices["weight"]].copy(),
            extras={name: state[:, slices[name]].copy() for name in extra_names},
            steps=steps,
            push_messages=push_messages,
            protocol_messages=protocol_messages,
            active_node_steps=active_node_steps,
            converged=protocol.converged.copy(),
            ratio_history=history,
            num_channels=num_channels,
            channel_converged=(
                protocol.channel_converged.copy() if num_channels > 1 else None
            ),
        )
