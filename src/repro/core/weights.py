"""The GCLR weighting scheme ``w_Ii = a_I ** (b_Ii * t_Ii)`` (eq. 2).

Node ``I`` weighs the feedback of node ``i`` by how much it trusts
``i`` directly. The exponential form has the properties Section 4.1.2
lists:

- a stranger (``t = 0``) still gets weight exactly 1, so its feedback is
  *counted* but never amplified;
- a distrusted neighbour (``t`` near 0) is indistinguishable from a
  stranger, so badmouthing one's way into influence is impossible;
- a trusted neighbour's weight grows exponentially in trust, letting
  honest long-term partners dominate the local correction term;
- with ``a >= 1`` and ``b >= 0`` every weight is >= 1, which the
  collusion-damping algebra (eq. 17) relies on.

The paper treats ``a_I`` and ``b_Ii`` as per-node tunables but fixes
them to constants in all experiments; :class:`WeightParams` captures the
constants, and :func:`weight_vector` produces the per-observer weights
an estimating node derives from its own trust row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.utils.validation import check_trust_value

#: Paper-style defaults: a moderate base so that full trust (t = 1)
#: multiplies a neighbour's feedback by a = 4 relative to a stranger.
DEFAULT_A: float = 4.0
DEFAULT_B: float = 1.0


@dataclass(frozen=True)
class WeightParams:
    """Constants of the weighting law ``w = a ** (b * t)``.

    Attributes
    ----------
    a:
        Base, ``>= 1``. ``a = 1`` disables weighting (every ``w = 1``,
        GCLR degenerates to the plain global average — eq. 5 -> eq. 1).
    b:
        Exponent gain, ``>= 0``.

    Examples
    --------
    >>> params = WeightParams(a=16.0, b=2.0)
    >>> params.weight(0.0), params.weight(1.0)
    (1.0, 256.0)
    >>> params.max_weight
    256.0
    """

    a: float = DEFAULT_A
    b: float = DEFAULT_B

    def __post_init__(self) -> None:
        if not math.isfinite(self.a) or self.a < 1.0:
            raise ValueError(f"weight base a must be >= 1, got {self.a!r}")
        if not math.isfinite(self.b) or self.b < 0.0:
            raise ValueError(f"weight gain b must be >= 0, got {self.b!r}")

    def weight(self, trust: float) -> float:
        """Weight granted to an observer trusted at level ``trust``."""
        check_trust_value(trust)
        return self.a ** (self.b * trust)

    @property
    def max_weight(self) -> float:
        """Largest achievable weight (at full trust ``t = 1``)."""
        return self.a**self.b


def weight_vector(
    params: WeightParams,
    trust_row: Mapping[int, float],
    num_nodes: int,
) -> np.ndarray:
    """Per-observer weights ``w_Ii`` for an estimating node.

    Parameters
    ----------
    params:
        Weighting constants.
    trust_row:
        The estimating node's direct-trust row ``{peer: t_I,peer}``.
        Peers absent from the row are strangers with ``t = 0``, which
        the law maps to weight exactly 1 — no special-casing needed.
    num_nodes:
        Network size ``N``.

    Returns
    -------
    numpy.ndarray
        Dense length-``N`` weight vector, every entry >= 1.
    """
    weights = np.ones(num_nodes, dtype=np.float64)
    for peer, trust in trust_row.items():
        if not 0 <= peer < num_nodes:
            raise ValueError(f"peer id {peer} outside 0..{num_nodes - 1}")
        weights[peer] = params.weight(trust)
    return weights


def excess_weights(
    params: WeightParams,
    trust_row: Mapping[int, float],
) -> Dict[int, float]:
    """Sparse ``(w_Ii - 1)`` terms, only for peers with non-trivial weight.

    Eq. 6 rewrites the GCLR estimate so that only the *excess* weight
    ``w - 1`` of direct neighbours enters the correction sums; strangers
    contribute exactly 0 and can be skipped entirely. This is what makes
    the per-node correction O(degree) instead of O(N).
    """
    out: Dict[int, float] = {}
    for peer, trust in trust_row.items():
        excess = params.weight(trust) - 1.0
        if excess != 0.0:
            out[peer] = excess
    return out


def collusion_damping_factor(num_nodes: int, total_excess_weight: float) -> float:
    """Eq. 17's attenuation ``N / (N + sum_i (w_oi - 1))``.

    The expected collusion-induced estimation error of the weighted
    scheme is the unweighted scheme's error multiplied by this factor;
    it is < 1 whenever the estimating node extends any trust at all.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if total_excess_weight < 0:
        raise ValueError(f"total excess weight must be >= 0, got {total_excess_weight}")
    return num_nodes / (num_nodes + total_excess_weight)
