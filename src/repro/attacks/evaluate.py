"""Attack-impact measurement through the unified gossip backend layer.

One measurement = two vector-gclr aggregation runs over the *same*
topology and the same gossip randomness — once with the honest trust
matrix, once with the attack-poisoned copy — compared by the paper's
eq.-18 average RMS error. Sharing the seed between the two runs cancels
gossip noise, so the measured error isolates the attack effect.

This used to live inside the Figure-5/6 experiment plumbing and was
hard-wired to the dense engine; routing it through
:func:`repro.core.backend.run_backend` (via the variant entry point)
lets any registered backend — and any churn level — carry the same
measurement, which is what the ``collusion-under-churn`` scenario runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.attacks.collusion import CollusionAttack, apply_collusion
from repro.core.backend import GossipConfig
from repro.core.results import GossipOutcome
from repro.core.vector_gclr import gclr_reputations, true_vector_gclr
from repro.core.weights import WeightParams
from repro.facade import aggregate
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class CollusionImpact:
    """Eq.-18 RMS errors of one attack, weighted vs unweighted scheme."""

    rms_gclr: float
    rms_unweighted: float
    clean_outcome: Optional[GossipOutcome] = None
    dirty_outcome: Optional[GossipOutcome] = None


def _derive_seed(config: GossipConfig) -> int:
    """One integer seed reused by both runs (noise cancellation).

    ``rng=None`` keeps the library-wide fresh-entropy convention: a
    random seed is drawn once and shared by the clean/dirty pair.
    """
    if config.rng is None:
        return int(as_generator(None).integers(2**62))
    if isinstance(config.rng, (int, np.integer)):
        return int(config.rng)
    return int(as_generator(config.rng).integers(2**62))


def collusion_impact(
    graph: Graph,
    trust: TrustMatrix,
    attack: CollusionAttack,
    *,
    params: Optional[WeightParams] = None,
    targets: Optional[Sequence[int]] = None,
    use_gossip: bool = True,
    config: Optional[GossipConfig] = None,
    backend: str = "dense",
) -> CollusionImpact:
    """Measure eq.-18 RMS error for one concrete attack on any backend.

    Parameters
    ----------
    graph, trust:
        The honest world.
    attack:
        The collusion instance to inject (honest matrix is not mutated).
    params:
        GCLR weighting constants; defaults to ``config.params``.
    targets:
        Tracked reputation columns (default: every node).
    use_gossip:
        ``True`` runs real differential gossip on ``backend``; ``False``
        uses the exact eq.-6 fixpoint (large sweeps, benchmarks).
    config:
        Gossip knobs, forwarded whole through :func:`repro.aggregate`
        (``k``/``push_counts``, ``warmup_steps``, ``track_history``,
        ... all apply). ``rng`` is reduced to one integer seed shared by
        the clean and poisoned runs, and ``loss_probability`` churn is
        derived statelessly from that seed
        (:meth:`~repro.core.backend.GossipConfig.materialize`), so both
        gossip noise and churn noise cancel between the two runs. A
        stateful ``loss_model`` cannot be replayed per run and is
        rejected — use ``loss_probability``.
    backend:
        Registered gossip backend name (or ``"auto"``).

    Returns
    -------
    CollusionImpact
        Eq.-18 errors for the weighted scheme and the unweighted
        comparator, plus the raw outcomes when gossip ran.
    """
    from repro.analysis.metrics import average_rms_error
    from repro.baselines.gossip_trust import unweighted_global_estimate

    n = graph.num_nodes
    target_list = list(targets) if targets is not None else list(range(n))
    poisoned = apply_collusion(trust, attack)
    config = config if config is not None else GossipConfig(xi=1e-5)
    params = params if params is not None else config.params

    clean_outcome = dirty_outcome = None
    if use_gossip:
        if config.loss_model is not None:
            raise ValueError(
                "collusion_impact replays churn identically across the clean and "
                "poisoned runs; a shared stateful loss_model cannot be re-seeded — "
                "pass loss_probability instead"
            )
        run_config = replace(config, rng=_derive_seed(config))
        target_array = np.asarray(target_list, dtype=np.int64)
        reputations = []
        outcomes = []
        for matrix in (trust, poisoned):
            outcome = aggregate(
                graph,
                matrix,
                run_config,
                backend=backend,
                variant="vector-gclr",
                targets=target_list,
            )
            outcomes.append(outcome)
            reputations.append(
                gclr_reputations(graph, matrix, target_array, outcome, params, "all")
            )
        clean, dirty = reputations
        clean_outcome, dirty_outcome = outcomes
    else:
        clean = true_vector_gclr(graph, trust, target_list, params, "all")
        dirty = true_vector_gclr(graph, poisoned, target_list, params, "all")

    rms_gclr = average_rms_error(dirty, clean)

    clean_unweighted = unweighted_global_estimate(trust)[target_list]
    dirty_unweighted = unweighted_global_estimate(poisoned)[target_list]
    rms_unweighted = average_rms_error(
        np.tile(dirty_unweighted, (n, 1)), np.tile(clean_unweighted, (n, 1))
    )
    return CollusionImpact(
        rms_gclr=rms_gclr,
        rms_unweighted=rms_unweighted,
        clean_outcome=clean_outcome,
        dirty_outcome=dirty_outcome,
    )
