"""Attack-impact measurement through the unified gossip backend layer.

One measurement = two vector-gclr aggregation runs over the same gossip
randomness — once in the honest world, once in the attack-poisoned copy
— compared by the paper's eq.-18 average RMS error. Sharing the seed
between the two runs cancels gossip noise, so the measured error
isolates the attack effect.

:func:`attack_impact` measures **any registered attack family**
(:mod:`repro.attacks.models`) on any registered gossip backend; for
topology-touching attacks (sybil floods) the dirty run executes on the
enlarged overlay and the eq.-18 comparison restricts to the original
honest peers. :func:`attack_impact_series` replays the same measurement
per epoch, which is what makes on–off oscillation and per-epoch
whitewashing observable. :func:`collusion_impact` survives as the
backward-compatible wrapper the Figure-5/6 experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.base import AggregationAlgorithm, AlgorithmOutcome

from repro.attacks.collusion import CollusionAttack, apply_collusion
from repro.attacks.models import AttackModel, make_attack
from repro.core.backend import GossipConfig, choose_backend_name
from repro.core.results import GossipOutcome
from repro.core.vector_gclr import gclr_reputations, true_vector_gclr
from repro.core.weights import WeightParams
from repro.facade import aggregate
from repro.network.graph import Graph
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import as_generator

AttackLike = Union[AttackModel, CollusionAttack, str]


@dataclass(frozen=True)
class AttackImpact:
    """Eq.-18 RMS errors of one attack, weighted vs unweighted scheme.

    Attributes
    ----------
    rms_gclr:
        Average RMS error of Differential Gossip Trust (GCLR weights).
        When ``algorithm=`` was given, this column holds the measured
        algorithm's clean-vs-poisoned shift instead (one unified column,
        so sweep code reads the same field for every algorithm).
    rms_unweighted:
        Same attack against the plain global average (eqs. 8–12), the
        comparator whose gap to ``rms_gclr`` is eq. 17's damping.
    clean_outcome, dirty_outcome:
        Raw gossip outcomes (``None`` under ``use_gossip=False`` and on
        the ``algorithm=`` path).
    backend:
        Resolved backend name both runs executed on (``None`` for the
        exact-fixpoint path and for non-backend algorithms).
    epoch:
        The epoch the attack was applied at (on–off phases).
    num_nodes_dirty:
        Node count of the poisoned world (> clean for sybil floods).
    algorithm:
        Canonical registry name of the measured algorithm, or ``None``
        for the classic vector-gclr path.
    clean_algo_outcome, dirty_algo_outcome:
        The two :class:`~repro.algorithms.base.AlgorithmOutcome` runs on
        the ``algorithm=`` path (``None`` otherwise).
    """

    rms_gclr: float
    rms_unweighted: float
    clean_outcome: Optional[GossipOutcome] = None
    dirty_outcome: Optional[GossipOutcome] = None
    backend: Optional[str] = None
    epoch: int = 0
    num_nodes_dirty: int = 0
    algorithm: Optional[str] = None
    clean_algo_outcome: Optional["AlgorithmOutcome"] = None
    dirty_algo_outcome: Optional["AlgorithmOutcome"] = None


#: Backward-compatible name (pre-adversary-engine API).
CollusionImpact = AttackImpact


@dataclass(frozen=True)
class _ConcreteCollusion(AttackModel):
    """Adapter: a fixed :class:`CollusionAttack` as an AttackModel."""

    name = "collusion"

    attack: CollusionAttack = None  # type: ignore[assignment]
    seed: int = 0

    def apply(self, trust, overlay=None, *, epoch: int = 0):
        return apply_collusion(trust, self.attack), overlay


def as_attack_model(attack: AttackLike) -> AttackModel:
    """Coerce an attack argument to an :class:`AttackModel`.

    Accepts a model instance, a concrete :class:`CollusionAttack`
    (wrapped — the pre-engine API) or a registered family name (built
    with that family's default parameters).
    """
    if isinstance(attack, AttackModel):
        return attack
    if isinstance(attack, CollusionAttack):
        return _ConcreteCollusion(attack=attack)
    if isinstance(attack, str):
        return make_attack(attack)
    raise TypeError(
        f"attack must be an AttackModel, CollusionAttack or registered family "
        f"name, got {type(attack).__name__}"
    )


def _derive_seed(config: GossipConfig) -> int:
    """One integer seed reused by both runs (noise cancellation).

    ``rng=None`` keeps the library-wide fresh-entropy convention: a
    random seed is drawn once and shared by the clean/dirty pair.
    """
    if config.rng is None:
        return int(as_generator(None).integers(2**62))
    if isinstance(config.rng, (int, np.integer)):
        return int(config.rng)
    return int(as_generator(config.rng).integers(2**62))


def _poisoned_world(
    graph: Graph, trust: TrustMatrix, model: AttackModel, epoch: int
) -> tuple:
    """Apply ``model`` at ``epoch``; return ``(dirty_graph, dirty_trust)``.

    Matrix-only attacks keep the honest topology; topology-touching
    attacks get a fresh overlay wrap so sybils join ids ``N..N+S-1``
    and the snapshot maps them back to contiguous graph nodes.
    """
    if not model.affects_topology:
        return graph, model.poison(trust, epoch=epoch)
    from repro.network.mutable import MutableOverlay

    poisoned, flooded = model.apply(
        trust, MutableOverlay.from_graph(graph), epoch=epoch
    )
    dirty_graph, pids = flooded.snapshot()
    if not np.array_equal(pids, np.arange(dirty_graph.num_nodes)):
        raise ValueError(
            f"attack {model.name!r} produced non-contiguous peer ids; "
            "topology attacks must only add peers to a fresh overlay wrap"
        )
    return dirty_graph, poisoned


class _CleanRunCache(dict):
    """Private epoch-invariant pieces of a measurement (series reuse).

    The clean world does not depend on the attack epoch, so a series
    computes its gossip run, reputations, unweighted estimate and the
    resolved backend once and replays only the dirty side per epoch.
    """


def attack_impact(
    graph: Graph,
    trust: TrustMatrix,
    attack: AttackLike,
    *,
    params: Optional[WeightParams] = None,
    targets: Optional[Sequence[int]] = None,
    use_gossip: bool = True,
    config: Optional[GossipConfig] = None,
    backend: str = "auto",
    epoch: int = 0,
    algorithm: Optional[Union[str, "AggregationAlgorithm"]] = None,
    _clean_cache: Optional[_CleanRunCache] = None,
) -> AttackImpact:
    """Measure eq.-18 RMS error for one attack on any backend.

    Parameters
    ----------
    graph, trust:
        The honest world.
    attack:
        An :class:`~repro.attacks.models.AttackModel`, a concrete
        :class:`~repro.attacks.collusion.CollusionAttack` (wrapped), or
        a registered family name with default parameters. The honest
        matrix is never mutated.
    params:
        GCLR weighting constants; defaults to ``config.params``.
    targets:
        Tracked reputation columns (default: every honest node).
    use_gossip:
        ``True`` runs real differential gossip on ``backend``; ``False``
        uses the exact eq.-6 fixpoint (large sweeps, benchmarks).
    config:
        Gossip knobs, forwarded whole through :func:`repro.aggregate`
        (``k``/``push_counts``, ``warmup_steps``, ``track_history``,
        ... all apply). ``rng`` is reduced to one integer seed shared by
        the clean and poisoned runs, and ``loss_probability`` churn is
        derived statelessly from that seed
        (:meth:`~repro.core.backend.GossipConfig.materialize`), so both
        gossip noise and churn noise cancel between the two runs. A
        stateful ``loss_model`` cannot be replayed per run and is
        rejected — use ``loss_probability``.
    backend:
        Registered gossip backend name. The default ``"auto"`` follows
        :func:`~repro.core.backend.choose_backend_name` — resolved
        *once*, against the poisoned (larger) world, so the clean and
        dirty runs always execute on the same engine. An explicit name
        pins one.
    epoch:
        Attack epoch — on–off families poison only during their duty
        cycle's attack phases.
    algorithm:
        ``None`` (default) measures Differential Gossip Trust through
        the classic vector-gclr path — byte-identical to the
        pre-registry behaviour. A registered algorithm name (or
        :class:`~repro.algorithms.base.AggregationAlgorithm` instance)
        instead runs *that* algorithm on the clean and poisoned worlds
        under one shared seed and reports its estimate shift in
        ``rms_gclr``; ``use_gossip`` and ``params`` are ignored on this
        path (the adapter owns its own execution), while ``config``,
        ``backend`` (for backend-routed algorithms) and the
        noise-cancellation seed discipline apply unchanged.

    Returns
    -------
    AttackImpact
        Eq.-18 errors for the weighted scheme and the unweighted
        comparator, plus the raw outcomes when gossip ran.

    Examples
    --------
    >>> from repro import make_attack
    >>> from repro.network.topology_example import example_network
    >>> from repro.trust.matrix import complete_trust_matrix
    >>> impact = attack_impact(
    ...     example_network(), complete_trust_matrix(10, rng=1),
    ...     make_attack("collusion", fraction=0.3, group_size=2, seed=2),
    ...     use_gossip=False)  # exact eq.-6 fixpoint, no gossip round
    >>> impact.num_nodes_dirty
    10
    >>> impact.rms_gclr >= 0.0
    True
    """
    from repro.analysis.metrics import average_rms_error
    from repro.baselines.gossip_trust import unweighted_global_estimate

    model = as_attack_model(attack)
    n = graph.num_nodes
    target_list = list(targets) if targets is not None else list(range(n))
    dirty_graph, poisoned = _poisoned_world(graph, trust, model, epoch)
    config = config if config is not None else GossipConfig(xi=1e-5)
    params = params if params is not None else config.params

    cache = _clean_cache if _clean_cache is not None else _CleanRunCache()

    def unweighted_rms() -> float:
        if "clean_unweighted" not in cache:
            cache["clean_unweighted"] = unweighted_global_estimate(trust)[target_list]
        clean_unweighted = cache["clean_unweighted"]
        dirty_unweighted = unweighted_global_estimate(poisoned)[target_list]
        # The unweighted estimate is the same at every node, so eq. 18's
        # mean-over-rows collapses to the single row's RMS — tiling n
        # identical rows would be O(n*T) memory for the same number.
        return average_rms_error(dirty_unweighted[None, :], clean_unweighted[None, :])

    if algorithm is not None:
        from repro.algorithms import get_algorithm

        algo = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
        seed = _derive_seed(config)
        algo_resolved: Optional[str] = None
        if algo.uses_backend:
            algo_resolved = cache.get("resolved")
            if algo_resolved is None:
                algo_resolved = (
                    choose_backend_name(dirty_graph, replace(config, rng=seed))
                    if backend == "auto"
                    else backend
                )
                cache["resolved"] = algo_resolved
        if "clean_algo" not in cache:
            cache["clean_algo"] = algo.prepare(
                graph, trust, config, targets=target_list,
                backend=algo_resolved or backend,
            ).run(rng=seed)
        clean_algo = cache["clean_algo"]
        dirty_algo = algo.prepare(
            dirty_graph, poisoned, config, targets=target_list,
            backend=algo_resolved or backend,
        ).run(rng=seed)
        # Eq.-18 comparison of what the honest peers believe; per-node
        # where the algorithm exposes it, network-level otherwise.
        if clean_algo.node_estimates is not None and dirty_algo.node_estimates is not None:
            rms_algo = average_rms_error(
                dirty_algo.node_estimates[:n], clean_algo.node_estimates
            )
        else:
            rms_algo = average_rms_error(
                dirty_algo.estimates[None, :], clean_algo.estimates[None, :]
            )
        return AttackImpact(
            rms_gclr=rms_algo,
            rms_unweighted=unweighted_rms(),
            backend=algo_resolved,
            epoch=epoch,
            num_nodes_dirty=dirty_graph.num_nodes,
            algorithm=algo.name,
            clean_algo_outcome=clean_algo,
            dirty_algo_outcome=dirty_algo,
        )

    clean_outcome = dirty_outcome = None
    resolved: Optional[str] = None
    if use_gossip:
        if config.loss_model is not None:
            raise ValueError(
                "attack_impact replays churn identically across the clean and "
                "poisoned runs; a shared stateful loss_model cannot be re-seeded — "
                "pass loss_probability instead"
            )
        run_config = replace(config, rng=_derive_seed(config))
        # Resolve once — against the poisoned (larger) world, or from
        # the series cache so every epoch runs on the same engine.
        resolved = cache.get("resolved")
        if resolved is None:
            resolved = (
                choose_backend_name(dirty_graph, run_config)
                if backend == "auto"
                else backend
            )
            cache["resolved"] = resolved
        target_array = np.asarray(target_list, dtype=np.int64)
        if "clean" not in cache:
            clean_outcome = aggregate(
                graph,
                trust,
                run_config,
                backend=resolved,
                variant="vector-gclr",
                targets=target_list,
            )
            cache["clean"] = (
                clean_outcome,
                gclr_reputations(graph, trust, target_array, clean_outcome, params, "all"),
            )
        clean_outcome, clean = cache["clean"]
        dirty_outcome = aggregate(
            dirty_graph,
            poisoned,
            run_config,
            backend=resolved,
            variant="vector-gclr",
            targets=target_list,
        )
        dirty = gclr_reputations(
            dirty_graph, poisoned, target_array, dirty_outcome, params, "all"
        )
    else:
        if "clean_exact" not in cache:
            cache["clean_exact"] = true_vector_gclr(graph, trust, target_list, params, "all")
        clean = cache["clean_exact"]
        dirty = true_vector_gclr(dirty_graph, poisoned, target_list, params, "all")

    # Eq. 18 compares what the *honest* peers believe; sybil rows (ids
    # >= N) are the attacker's own vantage and are excluded.
    rms_gclr = average_rms_error(dirty[:n], clean)
    rms_unweighted = unweighted_rms()
    return AttackImpact(
        rms_gclr=rms_gclr,
        rms_unweighted=rms_unweighted,
        clean_outcome=clean_outcome,
        dirty_outcome=dirty_outcome,
        backend=resolved,
        epoch=epoch,
        num_nodes_dirty=dirty_graph.num_nodes,
    )


def attack_impact_series(
    graph: Graph,
    trust: TrustMatrix,
    attack: AttackLike,
    *,
    epochs: int,
    params: Optional[WeightParams] = None,
    targets: Optional[Sequence[int]] = None,
    use_gossip: bool = True,
    config: Optional[GossipConfig] = None,
    backend: str = "auto",
    algorithm: Optional[Union[str, "AggregationAlgorithm"]] = None,
) -> List[AttackImpact]:
    """Per-epoch impact trace: :func:`attack_impact` at epochs ``0..E-1``.

    All epochs share one derived seed, so the *clean* run's gossip noise
    is identical across the series and epoch-to-epoch differences are
    attack dynamics only — an on–off adversary traces its duty cycle
    (``rms_gclr`` collapses to 0 in every honest phase), a static
    adversary traces a flat line. Because the clean world is
    epoch-invariant, its gossip run (and the ``"auto"`` backend
    resolution) executes once and is reused by every epoch's
    measurement — all returned impacts share one ``clean_outcome``.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    config = config if config is not None else GossipConfig(xi=1e-5)
    shared = replace(config, rng=_derive_seed(config))
    cache = _CleanRunCache()
    return [
        attack_impact(
            graph,
            trust,
            attack,
            params=params,
            targets=targets,
            use_gossip=use_gossip,
            config=shared,
            backend=backend,
            epoch=epoch,
            algorithm=algorithm,
            _clean_cache=cache,
        )
        for epoch in range(epochs)
    ]


def collusion_impact(
    graph: Graph,
    trust: TrustMatrix,
    attack: CollusionAttack,
    *,
    params: Optional[WeightParams] = None,
    targets: Optional[Sequence[int]] = None,
    use_gossip: bool = True,
    config: Optional[GossipConfig] = None,
    backend: str = "auto",
) -> AttackImpact:
    """Measure one concrete collusion attack (pre-engine API).

    Thin wrapper over :func:`attack_impact`. The default ``backend``
    is ``"auto"`` — it used to be hard-wired to ``"dense"``, which
    silently bypassed :func:`~repro.core.backend.choose_backend_name`
    on large graphs (the same bug class
    :func:`repro.baselines.push_sum.push_sum_average` had); pass an
    explicit name to pin an engine.
    """
    return attack_impact(
        graph,
        trust,
        attack,
        params=params,
        targets=targets,
        use_gossip=use_gossip,
        config=config,
        backend=backend,
    )
