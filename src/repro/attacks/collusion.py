"""Collusion attack models (Section 5.2, Figures 5–6).

The paper's collusion model: a subset ``C`` of peers colludes in groups
of size ``G``. A colluder reports trust **1** for fellow members of its
own group and trust **0** for every other node. Figure 5 sweeps the
colluding fraction for several group sizes ("group collusion");
Figure 6 uses ``G = 1`` — lone malicious peers whose only lever is
badmouthing everyone else ("individual collusion").

Attacks are pure functions from an honest trust matrix to a poisoned
copy; the honest matrix is never mutated, so with/without comparisons
(the RMS error of eq. 18) can share one baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.trust.matrix import TrustMatrix
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class CollusionAttack:
    """A concrete collusion instance: who colludes, in which groups.

    Attributes
    ----------
    groups:
        Tuple of colluding groups, each a tuple of node ids. Groups are
        disjoint. Group size 1 models individual (badmouth-only)
        colluders.
    """

    groups: Tuple[Tuple[int, ...], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.groups:
            if len(group) < 1:
                raise ValueError("colluding groups must be non-empty")
            for node in group:
                if node in seen:
                    raise ValueError(f"node {node} appears in more than one colluding group")
                seen.add(node)

    @property
    def colluders(self) -> frozenset:
        """All colluding node ids."""
        return frozenset(node for group in self.groups for node in group)

    @property
    def num_colluders(self) -> int:
        """``C`` — total colluding population."""
        return sum(len(group) for group in self.groups)

    def group_of(self, node: int) -> Tuple[int, ...]:
        """The group containing ``node`` (KeyError if honest)."""
        for group in self.groups:
            if node in group:
                return group
        raise KeyError(f"node {node} is not a colluder")


def select_colluders(
    num_nodes: int,
    fraction: float,
    *,
    rng: RngLike = None,
    exclude: Sequence[int] = (),
) -> np.ndarray:
    """Pick ``round(fraction * N)`` distinct colluding nodes uniformly.

    Parameters
    ----------
    num_nodes:
        Network size ``N``.
    fraction:
        Colluding fraction in ``[0, 1)``.
    rng:
        Seed / generator.
    exclude:
        Node ids that must stay honest (e.g. the measurement observer).
    """
    check_fraction(fraction, "fraction")
    generator = as_generator(rng)
    excluded = set(int(e) for e in exclude)
    candidates = np.array([i for i in range(num_nodes) if i not in excluded], dtype=np.int64)
    count = int(round(fraction * num_nodes))
    count = min(count, candidates.size)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(generator.choice(candidates, size=count, replace=False))


def group_colluders(colluders: np.ndarray, group_size: int) -> CollusionAttack:
    """Partition ``colluders`` into groups of ``group_size``.

    The trailing remainder (fewer than ``group_size`` nodes) forms a
    smaller final group, matching the paper's "colluding in groups with
    a group size of G" without discarding peers.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    ids: List[int] = [int(c) for c in colluders]
    groups = tuple(
        tuple(ids[start : start + group_size]) for start in range(0, len(ids), group_size)
    )
    return CollusionAttack(groups=groups)


def apply_collusion(trust: TrustMatrix, attack: CollusionAttack) -> TrustMatrix:
    """Return a poisoned copy of ``trust`` under ``attack``.

    Each colluder's *entire* reported row is replaced: trust 1 for
    fellow group members, trust 0 for everyone else (including honest
    peers it genuinely interacted with — badmouthing). Honest rows are
    untouched; collusion only corrupts what colluders *report*, not what
    others observed about them.

    Notes
    -----
    A reported 0 is an explicit opinion (it carries gossip weight 1 and
    enters the averages), which is exactly how the colluders depress
    honest peers' aggregated reputation in eqs. 9 and 14.
    """
    poisoned = trust.copy()
    n = trust.num_nodes
    for group in attack.groups:
        members = set(group)
        for colluder in group:
            # Wipe the honest opinions the colluder used to report.
            for target in list(poisoned.row(colluder)):
                poisoned.discard(colluder, target)
            for target in range(n):
                if target == colluder:
                    continue
                poisoned.set(colluder, target, 1.0 if target in members else 0.0)
    return poisoned


def individual_collusion(
    num_nodes: int,
    fraction: float,
    *,
    rng: RngLike = None,
    exclude: Sequence[int] = (),
) -> CollusionAttack:
    """Figure 6's model: lone badmouthing colluders (``G = 1``)."""
    colluders = select_colluders(num_nodes, fraction, rng=rng, exclude=exclude)
    return group_colluders(colluders, 1)
