"""Whitewashing attack model (Section 4.1.2's motivation).

A whitewasher exploits reputation systems that grant newcomers benefit
of the doubt: misbehave, discard the identity, rejoin "clean". The
paper's defence is the initial trust value of **zero** — a fresh
identity starts exactly where a known-bad peer ends up, so shedding
history buys nothing.

:class:`WhitewashingModel` tracks identity resets over simulation time
and rewrites the trust state accordingly, so the file-sharing workload
(and tests) can measure how much a whitewasher gains under a given
initial-trust policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.trust.matrix import TrustMatrix
from repro.utils.validation import check_trust_value


@dataclass
class WhitewashingModel:
    """Tracks whitewashing resets and applies them to trust state.

    Attributes
    ----------
    newcomer_trust:
        The trust value the network grants an unknown identity. The
        paper fixes this at 0.0 and notes a dynamic positive value is
        possible but unstudied; the knob exists so experiments can show
        *why* 0 is the safe choice.
    reset_counts:
        How many times each node has whitewashed so far.
    """

    newcomer_trust: float = 0.0
    reset_counts: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_trust_value(self.newcomer_trust, "newcomer_trust")

    def whitewash(self, trust: TrustMatrix, node: int) -> None:
        """Node ``node`` discards its identity and rejoins.

        Every opinion *about* the node is erased (nobody recognises the
        new identity) and replaced by the newcomer policy: either no
        entry at all (``newcomer_trust == 0``, the paper's choice — the
        node is a stranger with implicit trust 0) or an explicit
        benefit-of-the-doubt entry from its former observers (a
        deliberately naive policy for comparison experiments).

        The node's own outgoing opinions survive — whitewashing changes
        who *it* is, not what it knows.
        """
        observers = list(trust.observers_of(node))
        for observer in observers:
            trust.discard(observer, node)
        if self.newcomer_trust > 0.0:
            for observer in observers:
                trust.set(observer, node, self.newcomer_trust)
        self.reset_counts[node] = self.reset_counts.get(node, 0) + 1

    def total_resets(self) -> int:
        """Total whitewash events across all nodes."""
        return sum(self.reset_counts.values())

    def serial_whitewashers(self, threshold: int = 2) -> List[int]:
        """Nodes that have reset at least ``threshold`` times."""
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        return sorted(node for node, count in self.reset_counts.items() if count >= threshold)
