"""Composable adversary engine: attack families behind one registry.

The paper evaluates two adversaries — collusive groups (Section 5.2)
and whitewashers (Section 4.1.2) — but the attack space of reputation
systems is much wider: Absolute Trust (Awasthi & Singh,
arXiv:1601.01419) measures slandering/bad-mouthing coalitions and
sybil-style malicious collectives, and the statistical-mechanics
analysis of Manoel & Vicente (arXiv:1211.6462) studies noisy and
oscillating raters. This module makes every such adversary a
first-class, *named* object behind one protocol, mirroring the gossip
backend registry of :mod:`repro.core.backend`:

- :class:`AttackModel` is the protocol: a **seeded, pure transform** on
  ``(TrustMatrix, MutableOverlay, epoch)``. ``apply`` never mutates its
  inputs — it returns a poisoned trust copy (and, for topology-touching
  attacks, a poisoned overlay copy) — so with/without comparisons share
  one honest baseline, attacks stack (:class:`ComposedAttack`) and any
  ``(seed, epoch)`` replays bit-identically;
- :func:`register_attack` / :func:`get_attack` / :func:`make_attack` /
  :func:`available_attacks` manage the registry. Six families ship
  built-in: ``"collusion"``, ``"whitewashing"``, ``"slandering"``
  (alias ``"bad-mouthing"``), ``"on-off"`` (alias ``"oscillation"``),
  ``"sybil"`` (alias ``"sybil-flood"``) and
  ``"cross-channel-slander"`` (alias ``"cross-slander"``, the
  multi-channel variant that slanders one reputation channel while
  reporting honestly on the others);
- :meth:`AttackModel.on_epoch` is the dynamic hook: attacks that act on
  a *live* network (whitewashers cycling identities, sybil join floods,
  oscillating raters) plug into
  :class:`repro.runtime.dynamics.DynamicReputationRuntime`'s churn
  epochs through it.

Every family is measurable on every registered gossip backend via
:func:`repro.attacks.evaluate.attack_impact`, and composes with the
scenario axes (:class:`repro.scenarios.AttackSpec`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar, Dict, Optional, Tuple

import numpy as np

from repro.attacks.collusion import (
    CollusionAttack,
    apply_collusion,
    group_colluders,
    select_colluders,
)
from repro.attacks.whitewashing import WhitewashingModel
from repro.trust.matrix import TrustMatrix
from repro.utils.rng import stateless_child_sequence
from repro.utils.validation import check_fraction, check_trust_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.network.mutable import MutableOverlay
    from repro.runtime.dynamics import DynamicReputationRuntime

#: Spawn key of attack streams. Far above sweep indices and distinct
#: from the backend loss key (0xFFFF1055) and the runtime epoch key
#: (0xD1AA0000), so an attack can never alias a gossip stream.
ATTACK_STREAM_KEY = 0xA77AC000

WorldTransform = Tuple[TrustMatrix, Optional["MutableOverlay"]]


class UnknownAttackError(KeyError, ValueError):
    """An unregistered attack family was requested.

    Inherits both ``KeyError`` (registry-lookup convention) and
    ``ValueError`` (bad-argument convention), matching
    :class:`repro.core.backend.UnknownBackendError`.
    """


class AttackModel(ABC):
    """One adversary family: a seeded, pure transform of the honest world.

    Subclasses are frozen dataclasses holding the family's parameters
    plus a ``seed``; all randomness (who attacks, whom they hit) derives
    statelessly from ``(seed, epoch)``, so a model instance is a
    *replayable description* of an adversary, never a stateful actor.

    Two integration points:

    - :meth:`apply` — the static transform measured by
      :func:`repro.attacks.evaluate.attack_impact`;
    - :meth:`on_epoch` — the dynamic hook
      :class:`~repro.runtime.dynamics.DynamicReputationRuntime` calls
      once per churn epoch (default: no-op).

    Examples
    --------
    >>> model = make_attack("slandering", fraction=0.2, seed=7)
    >>> model.name
    'slandering'
    >>> int(model.base_rng().integers(100)) == int(model.base_rng().integers(100))
    True
    """

    #: Registry name of the family (subclasses override).
    name: ClassVar[str] = ""
    #: Whether :meth:`apply` grows/rewires the topology (sybil floods).
    affects_topology: ClassVar[bool] = False

    # -- seeded randomness ---------------------------------------------------

    def base_rng(self) -> np.random.Generator:
        """Epoch-independent stream: *who* attacks (membership persists)."""
        root = np.random.SeedSequence(getattr(self, "seed", 0))
        return np.random.default_rng(
            stateless_child_sequence(root, ATTACK_STREAM_KEY - 1)
        )

    def epoch_rng(self, epoch: int) -> np.random.Generator:
        """Per-epoch stream: what the attackers do *this* epoch."""
        root = np.random.SeedSequence(getattr(self, "seed", 0))
        return np.random.default_rng(
            stateless_child_sequence(root, ATTACK_STREAM_KEY + int(epoch))
        )

    def persistent_members(self, pids: np.ndarray, fraction: float) -> np.ndarray:
        """Churn-stable seeded cohort among live peer ids.

        Every peer id gets one uniform score — a splitmix64 bit-mix of
        ``(id, model seed)``, a pure per-id function, so membership
        never reshuffles as the overlay grows and the cost is O(len
        (pids)) rather than O(max id). An id is a member iff its score
        falls below ``fraction``; membership therefore persists across
        epochs and survives churn — exactly what an *identity-bound*
        adversary (an oscillator) needs, and what per-epoch sampling
        cannot provide.
        """
        pids = np.asarray(pids, dtype=np.int64)
        if pids.size == 0:
            return pids
        # Seed offset computed in Python ints (scalar uint64 overflow
        # warns in numpy; the array ops below wrap silently by design).
        offset = (0x9E3779B97F4A7C15 * (int(getattr(self, "seed", 0)) + 1)) & 0xFFFFFFFFFFFFFFFF
        z = pids.astype(np.uint64) + np.uint64(offset)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
        scores = z.astype(np.float64) / float(2**64)
        return pids[scores < fraction]

    # -- the protocol --------------------------------------------------------

    @abstractmethod
    def apply(
        self,
        trust: TrustMatrix,
        overlay: Optional["MutableOverlay"] = None,
        *,
        epoch: int = 0,
    ) -> WorldTransform:
        """Return the poisoned ``(trust, overlay)`` for ``epoch``.

        Pure: the inputs are never mutated. Matrix-only attacks return
        the input ``overlay`` unchanged; topology-touching attacks
        (``affects_topology``) return a mutated *copy*.
        """

    def poison(
        self,
        trust: TrustMatrix,
        overlay: Optional["MutableOverlay"] = None,
        *,
        epoch: int = 0,
    ) -> TrustMatrix:
        """Trust-matrix-only convenience wrapper over :meth:`apply`."""
        return self.apply(trust, overlay, epoch=epoch)[0]

    def on_epoch(
        self, runtime: "DynamicReputationRuntime", epoch: int, rng: np.random.Generator
    ) -> int:
        """Act on a live dynamic runtime at ``epoch``; return event count.

        The default adversary does nothing per epoch — trust-matrix
        attacks are measured statically. Families whose essence is
        *temporal* (whitewashing identity cycles, sybil join floods,
        on–off oscillation) override this; ``rng`` is the runtime's
        replayable epoch stream, so dynamic runs stay deterministic.
        """
        return 0


# -- built-in families -------------------------------------------------------


@dataclass(frozen=True)
class CollusionModel(AttackModel):
    """Section 5.2's colluding groups, as a registered attack family.

    A seeded re-packaging of :class:`repro.attacks.collusion`: a
    ``fraction`` of peers colludes in groups of ``group_size``, praising
    group-mates (report 1) and badmouthing everyone else (report 0).
    Membership is drawn from ``seed`` only — colluders persist across
    epochs, as in the paper's model.
    """

    name: ClassVar[str] = "collusion"

    fraction: float = 0.3
    group_size: int = 5
    seed: int = 0
    exclude: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        check_fraction(self.fraction, "fraction")
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")

    def attack_for(self, num_nodes: int) -> CollusionAttack:
        """The concrete (seed-determined) collusion instance at size ``N``."""
        colluders = select_colluders(
            num_nodes, self.fraction, rng=self.base_rng(), exclude=self.exclude
        )
        return group_colluders(colluders, self.group_size)

    def apply(self, trust, overlay=None, *, epoch: int = 0) -> WorldTransform:
        return apply_collusion(trust, self.attack_for(trust.num_nodes)), overlay


@dataclass(frozen=True)
class SlanderingModel(AttackModel):
    """Targeted bad-mouthing (Absolute Trust's slandering adversary).

    Unlike collusion — which wipes a colluder's *entire* row — a
    slanderer keeps its honest opinions and only plants ``value``
    (default 0) about a chosen victim set, so the attack is harder to
    spot from report statistics. ``max_victims`` caps the victim set so
    the poisoned matrix stays sparse at any network size; the cap
    defaults to 100 because the planting is O(slanderers × victims) —
    an uncapped 100k-node run would insert ~10⁸ entries. Pass ``None``
    to lift it deliberately.
    """

    name: ClassVar[str] = "slandering"

    #: Default victim cap (see class docstring).
    DEFAULT_MAX_VICTIMS: ClassVar[int] = 100

    fraction: float = 0.2
    victim_fraction: float = 0.1
    value: float = 0.0
    max_victims: Optional[int] = DEFAULT_MAX_VICTIMS
    seed: int = 0

    def __post_init__(self) -> None:
        check_fraction(self.fraction, "fraction")
        check_fraction(self.victim_fraction, "victim_fraction")
        check_trust_value(self.value, "value")
        if self.max_victims is not None and self.max_victims < 1:
            raise ValueError(f"max_victims must be >= 1, got {self.max_victims}")

    def cast(self, num_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
        """Seed-determined ``(slanderers, victims)`` — disjoint sets."""
        rng = self.base_rng()
        slanderers = select_colluders(num_nodes, self.fraction, rng=rng)
        victims = select_colluders(
            num_nodes, self.victim_fraction, rng=rng, exclude=slanderers
        )
        if self.max_victims is not None and victims.size > self.max_victims:
            victims = np.sort(rng.choice(victims, size=self.max_victims, replace=False))
        return slanderers, victims

    def apply(self, trust, overlay=None, *, epoch: int = 0) -> WorldTransform:
        slanderers, victims = self.cast(trust.num_nodes)
        poisoned = trust.copy()
        for slanderer in slanderers:
            for victim in victims:
                poisoned.set(int(slanderer), int(victim), self.value)
        return poisoned, overlay


@dataclass(frozen=True)
class CrossChannelSlanderModel(AttackModel):
    """Slander one reputation channel, behave honestly on the others.

    Multi-channel gossip (Golem's computing + delegating dual rank)
    opens an attack surface single-channel systems cannot express: a
    coalition that bad-mouths its victims on *one* channel while its
    reports on every other channel stay truthful, so channel-blind
    report statistics look clean. The coalition and victim set are the
    seeded :class:`SlanderingModel` cast — same ``(seed → who)``
    mapping — but the poison lands only on ``target_channel``.

    :meth:`apply_channels` is the multi-channel transform (a sequence
    of per-channel trust matrices in, a poisoned copy out, untouched
    channels shared rather than copied). The single-matrix
    :meth:`apply` treats its one matrix *as* the targeted channel, so
    the family still composes with every single-channel harness
    (``attack_impact``, :class:`ComposedAttack`).
    """

    name: ClassVar[str] = "cross-channel-slander"

    fraction: float = 0.2
    victim_fraction: float = 0.1
    value: float = 0.0
    max_victims: Optional[int] = SlanderingModel.DEFAULT_MAX_VICTIMS
    target_channel: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.target_channel < 0:
            raise ValueError(
                f"target_channel must be >= 0, got {self.target_channel}"
            )
        # Construction validates fraction/victim_fraction/value/max_victims.
        self._inner()

    def _inner(self) -> SlanderingModel:
        """The equivalent single-channel slander coalition (same cast)."""
        return SlanderingModel(
            fraction=self.fraction,
            victim_fraction=self.victim_fraction,
            value=self.value,
            max_victims=self.max_victims,
            seed=self.seed,
        )

    def cast(self, num_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
        """Seed-determined ``(slanderers, victims)`` — disjoint sets."""
        return self._inner().cast(num_nodes)

    def apply(self, trust, overlay=None, *, epoch: int = 0) -> WorldTransform:
        return self._inner().apply(trust, overlay, epoch=epoch)

    def apply_channels(
        self,
        channels: "Tuple[TrustMatrix, ...]",
        overlay: "Optional[MutableOverlay]" = None,
        *,
        epoch: int = 0,
    ) -> "Tuple[Tuple[TrustMatrix, ...], Optional[MutableOverlay]]":
        """Poison ``target_channel`` of a per-channel trust sequence.

        Channels other than the target are returned as-is (the
        transform is pure, so sharing the honest matrices is safe).
        """
        channels = tuple(channels)
        if not channels:
            raise ValueError("channels must contain at least one trust matrix")
        if self.target_channel >= len(channels):
            raise ValueError(
                f"target_channel {self.target_channel} outside the "
                f"{len(channels)} provided channels"
            )
        poisoned = list(channels)
        poisoned[self.target_channel], overlay = self._inner().apply(
            poisoned[self.target_channel], overlay, epoch=epoch
        )
        return tuple(poisoned), overlay


@dataclass(frozen=True)
class WhitewashingAttackModel(AttackModel):
    """Identity-shedding whitewashers (Section 4.1.2), per-epoch capable.

    Statically, a ``fraction`` of peers discards their identity: every
    opinion *about* them is erased and replaced per the
    ``newcomer_trust`` policy (the ported
    :class:`repro.attacks.whitewashing.WhitewashingModel` bookkeeping —
    entries are only ever re-granted to *former* observers). The paper's
    zero policy makes the transform strictly non-profitable.

    Dynamically (:meth:`on_epoch`), each churn epoch a seeded sample of
    ``round(fraction * N)`` live identities sheds its identity through
    :meth:`DynamicReputationRuntime.whitewash_peer` — the leaver/joiner
    mass bookkeeping of the runtime, wired to the newcomer policy. The
    cohort is a per-epoch *rate*, not a persistent member list: the
    whole point of whitewashing is that identities do not persist, so
    "the same peers again" is undefined once the ids have been shed.
    The sample draws from the runtime's replayable epoch stream, so
    dynamic runs still replay bit-identically from the trace seed.
    """

    name: ClassVar[str] = "whitewashing"

    fraction: float = 0.1
    newcomer_trust: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_fraction(self.fraction, "fraction")
        check_trust_value(self.newcomer_trust, "newcomer_trust")

    def whitewashers_for(self, num_nodes: int) -> np.ndarray:
        """Seed-determined whitewasher cohort at size ``N``."""
        return select_colluders(num_nodes, self.fraction, rng=self.base_rng())

    def apply(self, trust, overlay=None, *, epoch: int = 0) -> WorldTransform:
        poisoned = trust.copy()
        bookkeeper = WhitewashingModel(newcomer_trust=self.newcomer_trust)
        for node in self.whitewashers_for(trust.num_nodes):
            bookkeeper.whitewash(poisoned, int(node))
        return poisoned, overlay

    def on_epoch(self, runtime, epoch: int, rng: np.random.Generator) -> int:
        pids = runtime.overlay.peer_ids()
        count = min(int(round(self.fraction * pids.shape[0])), pids.shape[0])
        if count == 0:
            return 0
        victims = rng.choice(pids, size=count, replace=False)
        events = 0
        for victim in victims:
            if runtime.overlay.has_peer(int(victim)) and runtime.overlay.num_peers > 3:
                runtime.whitewash_peer(
                    int(victim),
                    rng,
                    epoch=epoch,
                    newcomer_opinion=self.newcomer_trust,
                )
                events += 1
        return events


@dataclass(frozen=True)
class OnOffModel(AttackModel):
    """On–off oscillation: attackers alternate honest and dishonest phases.

    Manoel & Vicente's oscillating raters: an adversary that behaves
    only intermittently evades naive time-averaged detection. Epochs
    cycle with ``period``; the first ``on_epochs`` of each cycle are
    attack phases, the rest are honest. During an attack phase the
    model applies its ``inner`` attack (any other family — attacks
    stack); with no ``inner``, the default oscillator behaviour is
    lone-colluder badmouthing (``G = 1`` rows over a ``fraction`` of
    peers). During an honest phase :meth:`apply` returns a clean copy,
    so under shared-seed measurement the off-phase impact is exactly 0.

    ``inner`` shapes the **static** transform only. The dynamic hook
    (:meth:`on_epoch`) always models oscillating *raters* — inflated
    published opinions on attack phases, fresh honest draws off —
    because matrix-level inner families have no counterpart in the
    runtime's scalar opinion state; ``victim_fraction``-style inner
    parameters do not apply to dynamic runs.
    """

    name: ClassVar[str] = "on-off"

    fraction: float = 0.2
    period: int = 2
    on_epochs: int = 1
    inner: Optional[AttackModel] = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_fraction(self.fraction, "fraction")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not 0 < self.on_epochs <= self.period:
            raise ValueError(
                f"on_epochs must be in 1..period ({self.period}), got {self.on_epochs}"
            )

    @property
    def affects_topology(self) -> bool:  # type: ignore[override]
        """Propagated from the inner family (a duty-cycled sybil flood
        still needs the overlay on its attack phases)."""
        return self.inner.affects_topology if self.inner is not None else False

    def is_on(self, epoch: int) -> bool:
        """Whether ``epoch`` falls in an attack phase of the duty cycle."""
        return (int(epoch) % self.period) < self.on_epochs

    def _default_inner(self) -> AttackModel:
        return CollusionModel(fraction=self.fraction, group_size=1, seed=self.seed)

    def apply(self, trust, overlay=None, *, epoch: int = 0) -> WorldTransform:
        if not self.is_on(epoch):
            return trust.copy(), overlay
        inner = self.inner if self.inner is not None else self._default_inner()
        return inner.apply(trust, overlay, epoch=epoch)

    def on_epoch(self, runtime, epoch: int, rng: np.random.Generator) -> int:
        """Oscillating raters on a live runtime (``inner`` is static-only).

        Membership is the *persistent* seeded cohort
        (:meth:`AttackModel.persistent_members`) — an oscillator is the
        same identity in every phase, which is what makes the duty cycle
        observable: attack phases re-publish the inflated opinion (1.0),
        honest phases re-publish a fresh honest draw **for the same
        identities**, resetting the inflation. (Per-epoch sampling would
        leave previous oscillators stuck at 1.0 through honest phases —
        an attack that never turns off.)
        """
        oscillators = self.persistent_members(runtime.overlay.peer_ids(), self.fraction)
        if oscillators.size == 0:
            return 0
        published = (
            np.ones(oscillators.size)
            if self.is_on(epoch)
            else rng.random(oscillators.size)
        )
        for pid, value in zip(oscillators, published):
            runtime.republish_opinion(int(pid), float(value))
        return int(oscillators.size)


@dataclass(frozen=True)
class SybilFloodModel(AttackModel):
    """Sybil join flood: one operator spawns a swarm of fake identities.

    The swarm (``round(sybil_fraction * N)`` identities, or an explicit
    ``num_sybils``) joins the overlay by preferential attachment, each
    sybil praising the operator (report 1), praising up to
    ``collude_width`` fellow sybils and badmouthing up to
    ``slander_width`` random honest peers — bounded per-sybil fan-out,
    so the poisoned matrix stays sparse at any scale. Honest peers hold
    *no* opinion about the strangers, which is precisely the paper's
    zero-initial-trust defence: sybils dilute the ``"all"`` denominator
    but start from reputation 0 themselves.

    The only built-in family with ``affects_topology = True``:
    :meth:`apply` returns an *enlarged* trust matrix plus an overlay
    copy with the sybils wired in (ids ``N .. N+S-1``).
    """

    name: ClassVar[str] = "sybil"
    affects_topology: ClassVar[bool] = True

    sybil_fraction: float = 0.1
    num_sybils: Optional[int] = None
    attach_m: int = 2
    collude_width: int = 20
    slander_width: int = 20
    flood_epoch: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        check_fraction(self.sybil_fraction, "sybil_fraction")
        if self.num_sybils is not None and self.num_sybils < 1:
            raise ValueError(f"num_sybils must be >= 1, got {self.num_sybils}")
        if self.attach_m < 1:
            raise ValueError(f"attach_m must be >= 1, got {self.attach_m}")
        if self.collude_width < 0 or self.slander_width < 0:
            raise ValueError("collude_width/slander_width must be >= 0")
        if self.flood_epoch < 0:
            raise ValueError(f"flood_epoch must be >= 0, got {self.flood_epoch}")

    def sybil_count(self, num_nodes: int) -> int:
        """Swarm size at honest population ``N``."""
        if self.num_sybils is not None:
            return self.num_sybils
        return max(1, int(round(self.sybil_fraction * num_nodes)))

    def apply(self, trust, overlay=None, *, epoch: int = 0) -> WorldTransform:
        from repro.network.mutable import MutableOverlay  # cycle guard

        n = trust.num_nodes
        if overlay is None:
            raise ValueError(
                "sybil floods grow the topology; pass the overlay (or let "
                "attack_impact wrap the graph) so the swarm has somewhere to join"
            )
        if overlay.max_peer_id + 1 != n:
            raise ValueError(
                f"overlay peer ids (max {overlay.max_peer_id}) must align with the "
                f"trust matrix ({n} nodes); wrap a fresh snapshot via "
                "MutableOverlay.from_graph"
            )
        swarm = self.sybil_count(n)
        rng = self.base_rng()
        operator = int(rng.integers(n))
        poisoned = trust.resized(n + swarm)
        flooded: MutableOverlay = overlay.copy()
        sybil_ids = np.arange(n, n + swarm, dtype=np.int64)
        for sid in sybil_ids:
            pid = flooded.add_peer(m=self.attach_m, rng=rng)
            assert pid == int(sid)  # fresh wrap + contiguous joins
            poisoned.set(int(sid), operator, 1.0)
            if swarm > 1 and self.collude_width > 0:
                # Draw fellow *indices* from range(S-1) and remap around
                # self — materialising the swarm-sized candidate array
                # per sybil would make the wiring O(S^2).
                self_index = int(sid) - n
                width = min(self.collude_width, swarm - 1)
                for draw in rng.choice(swarm - 1, size=width, replace=False):
                    fellow = sybil_ids[draw if draw < self_index else draw + 1]
                    poisoned.set(int(sid), int(fellow), 1.0)
            if self.slander_width > 0:
                width = min(self.slander_width, n)
                for victim in rng.choice(n, size=width, replace=False):
                    if int(victim) != operator:
                        poisoned.set(int(sid), int(victim), 0.0)
        return poisoned, flooded

    def on_epoch(self, runtime, epoch: int, rng: np.random.Generator) -> int:
        """Dynamic flood: the swarm joins the live overlay at
        ``flood_epoch``, each sybil publishing the inflated opinion 1.0.

        A join flood is an *event*, not a per-epoch faucet: sizing a
        fresh swarm against the (already sybil-inflated) population
        every epoch would compound ``(1 + fraction)^epochs`` and the
        trace would blow up instead of modelling one attack wave.
        """
        if epoch != self.flood_epoch:
            return 0
        swarm = self.sybil_count(runtime.overlay.num_peers)
        for _ in range(swarm):
            runtime.join_attacker(1.0, rng, m=self.attach_m)
        return swarm


@dataclass(frozen=True)
class ComposedAttack(AttackModel):
    """Sequential stack of attacks: later members see the earlier poison.

    The composability contract in one object — e.g. a sybil flood
    *plus* slandering of the flood's victims, or an on–off wrapper
    around a collusion ring. ``on_epoch`` fans out to every member.
    """

    name: ClassVar[str] = "composed"

    attacks: Tuple[AttackModel, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.attacks:
            raise ValueError("ComposedAttack needs at least one member attack")

    @property
    def affects_topology(self) -> bool:  # type: ignore[override]
        return any(a.affects_topology for a in self.attacks)

    def apply(self, trust, overlay=None, *, epoch: int = 0) -> WorldTransform:
        for attack in self.attacks:
            trust, overlay = attack.apply(trust, overlay, epoch=epoch)
        return trust, overlay

    def on_epoch(self, runtime, epoch: int, rng: np.random.Generator) -> int:
        return sum(a.on_epoch(runtime, epoch, rng) for a in self.attacks)


def stack_attacks(*attacks: AttackModel) -> ComposedAttack:
    """Convenience constructor for :class:`ComposedAttack`."""
    return ComposedAttack(attacks=tuple(attacks))


# -- registry ----------------------------------------------------------------

AttackFactory = Callable[..., AttackModel]

_ATTACKS: Dict[str, AttackFactory] = {}
_ATTACK_ALIASES: Dict[str, str] = {}


def register_attack(
    name: str,
    factory: AttackFactory,
    *,
    aliases: Tuple[str, ...] = (),
    overwrite: bool = False,
) -> None:
    """Register an attack family under ``name`` (plus optional aliases).

    ``factory`` is any callable building an :class:`AttackModel` from
    keyword parameters (typically the model class itself). After
    registration the family is selectable everywhere an attack kind is
    accepted — :func:`make_attack`, the scenario
    :class:`~repro.scenarios.spec.AttackSpec` axis and the attack
    benchmark sweep.

    Examples
    --------
    >>> register_attack("demo-slander", SlanderingModel, overwrite=True)
    >>> make_attack("demo-slander", fraction=0.1, seed=3).name
    'slandering'
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"attack name must be a non-empty string, got {name!r}")
    if not overwrite:
        # Validate every name before mutating anything, so a conflict
        # never leaves a half-registered family behind.
        if name in _ATTACKS or name in _ATTACK_ALIASES:
            raise ValueError(f"attack {name!r} is already registered (pass overwrite=True)")
        for alias in aliases:
            if alias in _ATTACKS or alias in _ATTACK_ALIASES:
                raise ValueError(f"attack alias {alias!r} is already registered")
    _ATTACKS[name] = factory
    for alias in aliases:
        _ATTACK_ALIASES[alias] = name


def resolve_attack_name(name: str) -> str:
    """Canonical registry name for ``name`` (resolving aliases)."""
    if name in _ATTACKS:
        return name
    if name in _ATTACK_ALIASES:
        return _ATTACK_ALIASES[name]
    catalogue = ", ".join(sorted(_ATTACKS) + sorted(_ATTACK_ALIASES))
    raise UnknownAttackError(f"unknown attack family {name!r}; available: {catalogue}")


def get_attack(name: str) -> AttackFactory:
    """Look up a registered attack factory by name or alias."""
    return _ATTACKS[resolve_attack_name(name)]


def make_attack(name: str, **params) -> AttackModel:
    """Build an attack model from a registered family name (aliases resolve).

    Examples
    --------
    >>> make_attack("bad-mouthing", fraction=0.25, seed=1).fraction
    0.25
    """
    return get_attack(name)(**params)


def available_attacks() -> Tuple[str, ...]:
    """Canonical names of all registered attack families, sorted.

    Examples
    --------
    >>> {"collusion", "slandering", "sybil"} <= set(available_attacks())
    True
    """
    return tuple(sorted(_ATTACKS))


register_attack("collusion", CollusionModel)
register_attack("whitewashing", WhitewashingAttackModel, aliases=("whitewash",))
register_attack("slandering", SlanderingModel, aliases=("bad-mouthing", "badmouthing"))
register_attack(
    "cross-channel-slander", CrossChannelSlanderModel, aliases=("cross-slander",)
)
register_attack("on-off", OnOffModel, aliases=("oscillation", "oscillating"))
register_attack("sybil", SybilFloodModel, aliases=("sybil-flood",))
