"""Adversary models: collusion and whitewashing.

Section 5.2 analyses collusion; Figures 5 and 6 measure it. Section
4.1.2 motivates the zero initial trust value with whitewashing. Both
attacks are implemented as *transformations of the trust matrix* (or of
peer identity, for whitewashing) so that any aggregation algorithm can
be evaluated under attack without modification.
"""

from repro.attacks.collusion import (
    CollusionAttack,
    apply_collusion,
    group_colluders,
    select_colluders,
)
from repro.attacks.evaluate import CollusionImpact, collusion_impact
from repro.attacks.whitewashing import WhitewashingModel

__all__ = [
    "CollusionAttack",
    "CollusionImpact",
    "apply_collusion",
    "collusion_impact",
    "group_colluders",
    "select_colluders",
    "WhitewashingModel",
]
