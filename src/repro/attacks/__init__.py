"""Adversary engine: composable, registered attack families.

Section 5.2 analyses collusion; Figures 5 and 6 measure it. Section
4.1.2 motivates the zero initial trust value with whitewashing. Beyond
the paper's two adversaries, :mod:`repro.attacks.models` registers
slandering/bad-mouthing, on–off oscillation and sybil join floods —
each a seeded, pure transform on ``(TrustMatrix, MutableOverlay,
epoch)``, so attacks stack, replay deterministically, and are
measurable on any registered gossip backend via
:func:`repro.attacks.evaluate.attack_impact` (eq.-18 RMS error, clean
vs poisoned runs under identical seeds).
"""

from repro.attacks.collusion import (
    CollusionAttack,
    apply_collusion,
    group_colluders,
    select_colluders,
)
from repro.attacks.evaluate import (
    AttackImpact,
    CollusionImpact,
    as_attack_model,
    attack_impact,
    attack_impact_series,
    collusion_impact,
)
from repro.attacks.models import (
    AttackModel,
    CollusionModel,
    ComposedAttack,
    CrossChannelSlanderModel,
    OnOffModel,
    SlanderingModel,
    SybilFloodModel,
    UnknownAttackError,
    WhitewashingAttackModel,
    available_attacks,
    get_attack,
    make_attack,
    register_attack,
    resolve_attack_name,
    stack_attacks,
)
from repro.attacks.whitewashing import WhitewashingModel

__all__ = [
    "AttackImpact",
    "AttackModel",
    "CollusionAttack",
    "CollusionImpact",
    "CollusionModel",
    "ComposedAttack",
    "CrossChannelSlanderModel",
    "OnOffModel",
    "SlanderingModel",
    "SybilFloodModel",
    "UnknownAttackError",
    "WhitewashingAttackModel",
    "WhitewashingModel",
    "apply_collusion",
    "as_attack_model",
    "attack_impact",
    "attack_impact_series",
    "available_attacks",
    "collusion_impact",
    "get_attack",
    "group_colluders",
    "make_attack",
    "register_attack",
    "resolve_attack_name",
    "select_colluders",
    "stack_attacks",
]
